"""Table III — the 11 applications, baseline memory intensity, classes.

The benchmark times a fresh baseline-profiling pass over the whole suite on
the reference machine (what a user pays to onboard a new machine); the
emitted table is the paper's Table III regenerated from those profiles.
"""

from repro.harness.baselines import collect_baselines
from repro.harness.experiments import table3_rows
from repro.sim import SimulationEngine
from repro.machine import XEON_E5649
from repro.workloads import all_applications


def test_table3_applications(benchmark, ctx, emit):
    benchmark.pedantic(
        lambda: collect_baselines(SimulationEngine(XEON_E5649), all_applications()),
        rounds=3,
        iterations=1,
    )
    rows = table3_rows(ctx)
    emit(
        "table3_applications",
        render_rows(rows),
    )
    classes = [r[2] for r in rows]
    assert classes == sorted(classes, key=["I", "II", "III", "IV"].index)


def render_rows(rows):
    from repro.reporting.tables import render_table

    return render_table(
        ["Application", "baseline memory intensity", "Class"],
        rows,
        title="Table III: Benchmark Applications (P=PARSEC, N=NAS)",
    )
