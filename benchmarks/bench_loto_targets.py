"""Extension — leave-one-target-out: predicting never-seen applications.

The paper's validation withholds random *rows*; every target application
still contributes 70% of its rows to training.  A resource manager's real
life is harder: a brand-new application arrives, gets one baseline
profiling pass, and the model must predict its co-located behaviour
despite never having trained on it.

Leave-one-target-out cross-validation measures exactly that: for each of
the eleven applications, train the neural/F model on the other ten's
observations and test on all 120 of the held-out application's
co-locations.
"""

import numpy as np

from repro.core.feature_sets import FeatureSet
from repro.core.features import feature_matrix
from repro.core.methodology import ModelKind, make_model
from repro.core.validation import leave_one_group_out
from repro.reporting.tables import render_table
from repro.workloads.suite import intended_class


def test_loto_targets(benchmark, ctx, emit):
    observations = list(ctx.dataset("e5649"))
    X, y = feature_matrix(observations, FeatureSet.F.features)
    groups = [o.target_name for o in observations]

    rng = np.random.default_rng(13)
    result = benchmark.pedantic(
        lambda: leave_one_group_out(
            lambda: make_model(ModelKind.NEURAL, FeatureSet.F, rng=rng),
            X,
            y,
            groups,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, intended_class(name).roman, result.group_test_mpe[name]]
        for name in result.groups
    ]
    rows.sort(key=lambda r: r[2])
    emit(
        "loto_targets",
        render_table(
            ["held-out target", "class", "test MPE (%)"],
            rows,
            title="Extension: leave-one-target-out, neural/F, E5649",
        ),
    )
    # Never-seen targets are predictable, though worse than random splits
    # (1.5%): the mean must stay in the usable band the paper's class-only
    # mode also lives in.
    assert result.mean_test_mpe < 15.0
    # At least 8 of 11 applications stay under 10% when held out.
    good = sum(1 for v in result.group_test_mpe.values() if v < 10.0)
    assert good >= 8
