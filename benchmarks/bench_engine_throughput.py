"""Microbenchmarks — the substrate's hot paths.

Not a paper artifact; guards the property the harness depends on: one
analytic co-location solve must stay in the low-millisecond range so the
full Table V sweep (thousands of runs) completes in seconds.
"""

from repro.workloads.suite import get_application


def test_engine_solo_solve(benchmark, ctx):
    engine = ctx.engine("e5649")
    app = get_application("canneal")
    run = benchmark(lambda: engine.baseline(app))
    assert run.target.execution_time_s > 0


def test_engine_full_colocation_solve(benchmark, ctx):
    engine = ctx.engine("e5-2697v2")
    canneal = get_application("canneal")
    cg = get_application("cg")
    run = benchmark(lambda: engine.run(canneal, [cg] * 11))
    assert len(run.runs) == 12


def test_model_fit_linear(benchmark, ctx):
    from repro.core.feature_sets import FeatureSet
    from repro.core.features import feature_matrix
    from repro.core.linear import LinearModel

    X, y = feature_matrix(list(ctx.dataset("e5649")), FeatureSet.F.features)
    model = benchmark(lambda: LinearModel().fit(X, y))
    assert model.is_fitted


def test_model_fit_neural(benchmark, ctx):
    import numpy as np

    from repro.core.feature_sets import FeatureSet
    from repro.core.features import feature_matrix
    from repro.core.neural import NeuralNetworkModel

    X, y = feature_matrix(list(ctx.dataset("e5649")), FeatureSet.F.features)
    model = benchmark.pedantic(
        lambda: NeuralNetworkModel(hidden_units=20, n_restarts=1).fit(
            X, y, rng=np.random.default_rng(0)
        ),
        rounds=3,
        iterations=1,
    )
    assert model.is_fitted
