"""Microbenchmarks — the substrate's hot paths.

Not a paper artifact; guards the property the harness depends on: one
analytic co-location solve must stay in the low-millisecond range so the
full Table V sweep (thousands of runs) completes in seconds — and, with
the stacked (batched) steady-state solver or a warm
:class:`~repro.sim.solve_cache.SolveCache`, in a small fraction of that.

Each run appends its throughput numbers to ``results/BENCH_engine.json``
(scenarios/s, batched-vs-serial speedup, the bit-identity verdict) so CI
can archive the trajectory alongside the other BENCH files.

Set ``REPRO_SMOKE=1`` for the reduced configuration used by
``make bench-smoke`` (a routine throughput-regression check).
"""

import json
import os
import time

from repro.harness.baselines import collect_baselines
from repro.harness.collection import collect_training_data
from repro.machine import XEON_E5649
from repro.sim import SimulationEngine, SolveCache
from repro.workloads.suite import get_application

_SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

#: Minimum batched-over-serial collection speedup.  The full-shape sweep
#: clears 5x comfortably; the smoke shape has smaller batches (less
#: vectorization to amortize the Python loop against), so CI gets a floor.
MIN_BATCH_SPEEDUP = 2.0 if _SMOKE else 5.0


def _record(results_dir, **values):
    """Merge a measurement into the BENCH_engine.json trajectory."""
    path = results_dir / "BENCH_engine.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(values)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_engine_solo_solve(benchmark, ctx):
    engine = ctx.engine("e5649")
    app = get_application("canneal")
    run = benchmark(lambda: engine.baseline(app))
    assert run.target.execution_time_s > 0


def test_engine_full_colocation_solve(benchmark, ctx):
    engine = ctx.engine("e5-2697v2")
    canneal = get_application("canneal")
    cg = get_application("cg")
    run = benchmark(lambda: engine.run(canneal, [cg] * 11))
    assert len(run.runs) == 12


def test_model_fit_linear(benchmark, ctx):
    from repro.core.feature_sets import FeatureSet
    from repro.core.features import feature_matrix
    from repro.core.linear import LinearModel

    X, y = feature_matrix(list(ctx.dataset("e5649")), FeatureSet.F.features)
    model = benchmark(lambda: LinearModel().fit(X, y))
    assert model.is_fitted


def test_model_fit_neural(benchmark, ctx):
    import numpy as np

    from repro.core.feature_sets import FeatureSet
    from repro.core.features import feature_matrix
    from repro.core.neural import NeuralNetworkModel

    X, y = feature_matrix(list(ctx.dataset("e5649")), FeatureSet.F.features)
    model = benchmark.pedantic(
        lambda: NeuralNetworkModel(hidden_units=20, n_restarts=1).fit(
            X, y, rng=np.random.default_rng(0)
        ),
        rounds=3,
        iterations=1,
    )
    assert model.is_fitted


def _table5_kwargs():
    """A Table V sweep: full-shape by default, reduced under REPRO_SMOKE."""
    target_names = ("canneal", "ep") if _SMOKE else ("canneal", "sp", "fluidanimate", "ep")
    counts = (1, 3) if _SMOKE else (1, 2, 3, 4, 5)
    return dict(
        targets=[get_application(n) for n in target_names],
        co_apps=[get_application(n) for n in ("cg", "ep")],
        counts=counts,
    )


def test_table5_collection_warm_cache_speedup(benchmark):
    """A warm SolveCache must make the Table V collection >= 3x faster,

    and serve *exactly* the dataset a cache-less engine produces (noise is
    applied outside the memoized solve).  Runs the serial per-scenario
    reference path on purpose: this bench guards the cache's speedup,
    which the batched solver's own cold-path speed would mask.
    """
    kwargs = _table5_kwargs()
    kwargs["batch_solve"] = False
    apps = sorted(set(kwargs["targets"] + kwargs["co_apps"]), key=lambda a: a.name)
    cached_engine = SimulationEngine(XEON_E5649, cache=SolveCache())
    baselines = collect_baselines(cached_engine, apps)

    cold_engine = SimulationEngine(XEON_E5649)
    start = time.perf_counter()
    cold = collect_training_data(cold_engine, baselines=baselines, **kwargs)
    cold_s = time.perf_counter() - start

    collect_training_data(cached_engine, baselines=baselines, **kwargs)  # warm up
    start = time.perf_counter()
    warm = collect_training_data(cached_engine, baselines=baselines, **kwargs)
    warm_s = time.perf_counter() - start

    assert [o.actual_time_s for o in warm] == [o.actual_time_s for o in cold]
    assert cached_engine.stats.cache_hit_rate > 0.4  # second sweep all hits
    assert cached_engine.stats.convergence_failures == 0
    assert cold_s >= 3.0 * warm_s, (
        f"warm cache too slow: cold {cold_s * 1e3:.1f} ms vs "
        f"warm {warm_s * 1e3:.1f} ms"
    )
    print(f"\ncold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms "
          f"({cold_s / warm_s:.1f}x)\n" + cached_engine.stats.summary())
    benchmark(
        lambda: collect_training_data(
            cached_engine, baselines=baselines, **kwargs
        )
    )


def test_parallel_collection_matches_serial(benchmark):
    """workers=4 must return the bit-identical dataset, timed as a bench."""
    import numpy as np

    kwargs = _table5_kwargs()
    engine = SimulationEngine(XEON_E5649)
    apps = sorted(set(kwargs["targets"] + kwargs["co_apps"]), key=lambda a: a.name)
    baselines = collect_baselines(engine, apps)
    serial = collect_training_data(
        engine, baselines=baselines, rng=np.random.default_rng(2015), **kwargs
    )
    parallel = benchmark.pedantic(
        lambda: collect_training_data(
            engine, baselines=baselines, rng=np.random.default_rng(2015),
            workers=4, **kwargs
        ),
        rounds=1,
        iterations=1,
    )
    assert [o.actual_time_s for o in parallel] == [
        o.actual_time_s for o in serial
    ]


def test_batched_collection_speedup(benchmark, results_dir):
    """The stacked solver must beat the serial path >= 5x (2x smoke) on a

    full-testbed collection, while producing the bit-identical dataset.
    Both engines start with fresh (cold) SolveCaches so the comparison
    measures the solver, not memoization.  Persists the numbers to
    ``results/BENCH_engine.json``.
    """
    import numpy as np

    kwargs = _table5_kwargs()
    apps = sorted(set(kwargs["targets"] + kwargs["co_apps"]), key=lambda a: a.name)
    baselines = collect_baselines(
        SimulationEngine(XEON_E5649, cache=SolveCache()), apps
    )

    def collect(batch_solve):
        engine = SimulationEngine(XEON_E5649, cache=SolveCache())
        start = time.perf_counter()
        dataset = collect_training_data(
            engine,
            baselines=baselines,
            rng=np.random.default_rng(2015),
            batch_solve=batch_solve,
            **kwargs,
        )
        return engine, dataset, time.perf_counter() - start

    _, serial_ds, serial_s = collect(False)
    engine, batched_ds, batched_s = benchmark.pedantic(
        lambda: collect(True), rounds=1, iterations=1
    )

    serial_times = [o.actual_time_s for o in serial_ds]
    batched_times = [o.actual_time_s for o in batched_ds]
    bit_identical = serial_times == batched_times
    assert bit_identical, "batched collection diverged from serial"
    speedup = serial_s / batched_s
    scenarios = len(batched_times)
    stats = engine.stats
    assert stats.batches > 0 and stats.batched_scenarios >= scenarios
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batched collection only {speedup:.2f}x faster than serial "
        f"(need >= {MIN_BATCH_SPEEDUP}x): serial {serial_s * 1e3:.1f} ms, "
        f"batched {batched_s * 1e3:.1f} ms"
    )
    print(
        f"\nserial {serial_s * 1e3:.1f} ms ({scenarios / serial_s:.0f} "
        f"scenarios/s), batched {batched_s * 1e3:.1f} ms "
        f"({scenarios / batched_s:.0f} scenarios/s), speedup {speedup:.2f}x\n"
        + stats.summary()
    )
    _record(
        results_dir,
        collection_scenarios=scenarios,
        serial_collection_s=serial_s,
        batched_collection_s=batched_s,
        serial_scenarios_per_s=scenarios / serial_s,
        batched_scenarios_per_s=scenarios / batched_s,
        batched_speedup=speedup,
        bit_identical=bit_identical,
        batches=stats.batches,
        batch_dedupe_hits=stats.batch_dedupe_hits,
        frozen_iterations_saved=stats.frozen_iterations_saved,
        smoke=_SMOKE,
    )
