"""Ablation — model accuracy vs training budget (learning curve).

Section IV-B3 motivates the uniform grid as an attempt "to sample the set
of all possible co-locations ... in a uniform way that minimizes the
amount of training data".  This bench measures how the neural/F model's
held-out accuracy degrades as the training set is subsampled, locating the
budget below which the paper's accuracy claim would no longer hold.
"""

import numpy as np

from repro.core.feature_sets import FeatureSet
from repro.core.features import feature_matrix
from repro.core.methodology import ModelKind, make_model
from repro.core.metrics import mpe
from repro.reporting.tables import render_table

FRACTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)


def test_ablation_training_budget(benchmark, ctx, emit):
    observations = list(ctx.dataset("e5649"))
    X, y = feature_matrix(observations, FeatureSet.F.features)
    n = X.shape[0]
    rng = np.random.default_rng(31)
    # One fixed held-out probe set (20%) shared by all budgets.
    perm = rng.permutation(n)
    probe_idx, pool_idx = perm[: n // 5], perm[n // 5:]

    def sweep():
        rows = []
        for fraction in FRACTIONS:
            k = max(int(len(pool_idx) * fraction), 20)
            errors = []
            for rep in range(3):
                sub = rng.choice(pool_idx, size=k, replace=False)
                model = make_model(
                    ModelKind.NEURAL,
                    FeatureSet.F,
                    rng=np.random.default_rng([rep, k]),
                )
                model.fit(X[sub], y[sub])
                errors.append(mpe(model.predict(X[probe_idx]), y[probe_idx]))
            rows.append([k, float(np.mean(errors))])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_training_budget",
        render_table(
            ["training runs", "probe MPE (%)"],
            rows,
            title="Ablation: neural/F accuracy vs training budget, E5649",
        ),
    )
    errors = [r[1] for r in rows]
    # More data never makes things dramatically worse...
    assert errors[-1] <= errors[0] * 1.2
    # ...and the full budget reaches the paper's regime while the
    # smallest budget does not get there.
    assert errors[-1] < 3.0
    assert errors[0] > errors[-1]
