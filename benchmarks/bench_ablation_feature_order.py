"""Ablation — data-driven feature order vs Table II's hand design.

Forward selection on the 6-core dataset produces the order in which
features pay off for a *linear* model, and permutation importance scores
them within the trained *neural/F* model.  Both views are compared with
the Table II progression and with Section V's conclusion that the
co-located applications' cache-use features carry the signal.
"""

from repro.core.feature_sets import FeatureSet
from repro.core.features import Feature
from repro.core.importance import permutation_importance
from repro.core.linear import LinearModel
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.core.selection import forward_selection
from repro.reporting.tables import render_table

CO_APP_FEATURES = {
    Feature.NUM_CO_APP,
    Feature.CO_APP_MEM,
    Feature.CO_APP_CM_CA,
    Feature.CO_APP_CA_INS,
}


def test_ablation_feature_order(benchmark, ctx, emit):
    observations = list(ctx.dataset("e5649"))

    steps = benchmark.pedantic(
        lambda: forward_selection(LinearModel, observations, repetitions=5),
        rounds=1,
        iterations=1,
    )

    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
    predictor.fit(observations)
    importances = permutation_importance(
        predictor._model, observations, FeatureSet.F.features
    )

    rows = []
    imp_by_feature = {fi.feature: fi.mpe_increase for fi in importances}
    for rank, step in enumerate(steps, start=1):
        rows.append(
            [
                rank,
                step.added.value,
                step.test_mpe,
                imp_by_feature[step.added],
            ]
        )
    emit(
        "ablation_feature_order",
        render_table(
            [
                "selection rank",
                "feature (forward selection, linear)",
                "test MPE after adding (%)",
                "neural/F permutation importance (MPE pts)",
            ],
            rows,
            title="Ablation: data-driven feature ordering, E5649",
        ),
    )

    # baseExTime must be picked first (it alone carries the scale).
    assert steps[0].added is Feature.BASE_EX_TIME
    # The first co-location feature selected is a co-app feature, and
    # co-app features dominate the early picks — Section V-D's conclusion.
    non_base = [s.added for s in steps[1:4]]
    assert any(f in CO_APP_FEATURES for f in non_base[:2])
    # The final selected-set error matches the full linear/F model's.
    full_f = [
        e for e in ctx.evaluations("e5649")
        if e.kind is ModelKind.LINEAR and e.feature_set is FeatureSet.F
    ][0]
    assert abs(steps[-1].test_mpe - full_f.result.mean_test_mpe) < 1.0
