"""Microbenchmark — the distributed registry round trip.

Not a paper artifact; guards the properties the registry subsystem
exists for:

* **push -> pull -> serve works end to end**: an artifact pushed over
  HTTP is pulled by a second box (the :class:`HttpBackend`) and served
  with predictions bit-identical to a local load;
* **the content-addressed cache actually short-circuits**: a repeat
  ``get()`` of a pinned, cached version performs **zero** HTTP requests
  (asserted via the backend's ``http_requests`` counter — this is the
  property that lets a serving fleet survive registry outages);
* the cold pull and warm get latencies are reported, and each run
  appends a point to ``results/BENCH_registry.json`` so the numbers form
  a trajectory across sessions (uploaded as a CI artifact).

Set ``REPRO_SMOKE=1`` for the reduced configuration used by
``make bench-smoke`` (a smaller ensemble; the asserted properties are
identical).
"""

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.ensemble import EnsemblePredictor
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind
from repro.core.persistence import artifact_to_dict
from repro.registry import HttpBackend, ModelRegistry, RegistryServerThread

_SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

N_MEMBERS = 16 if _SMOKE else 128  # payload size: ~artifact bytes on the wire
N_WARM_GETS = 50 if _SMOKE else 200


def _record(results_dir, **values):
    """Merge a measurement into the BENCH_registry.json trajectory."""
    path = results_dir / "BENCH_registry.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(values)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_registry_roundtrip(ctx, results_dir, benchmark):
    dataset = list(ctx.dataset("e5649"))
    ensemble = EnsemblePredictor(
        ModelKind.LINEAR, FeatureSet.F, n_members=N_MEMBERS, seed=7
    ).fit(dataset)
    rows = np.array(
        [
            [obs.feature_value(f) for f in FeatureSet.F.features]
            for obs in dataset[:32]
        ]
    )
    expected_means, expected_stds = ensemble.predict_rows(rows)

    with tempfile.TemporaryDirectory() as tmp:
        store = ModelRegistry(Path(tmp) / "store")
        with RegistryServerThread(store, token="bench") as handle:
            remote = HttpBackend(
                f"http://127.0.0.1:{handle.port}",
                Path(tmp) / "cache",
                token="bench",
            )

            # --- push over HTTP
            push_started = time.perf_counter()
            manifest = remote.push("band", ensemble)
            push_s = time.perf_counter() - push_started
            assert manifest.ref == "band@1"

            # --- cold pull: manifest + blob travel once
            pull_started = time.perf_counter()
            artifact, pulled = remote.get("band@1")
            cold_pull_s = time.perf_counter() - pull_started
            requests_after_cold = remote.http_requests

            # The pulled artifact serves bit-identical predictions.
            means, stds = artifact.predict_rows(rows)
            np.testing.assert_array_equal(means, expected_means)
            np.testing.assert_array_equal(stds, expected_stds)
            assert artifact_to_dict(artifact) == artifact_to_dict(ensemble)

            # --- warm gets: the content-addressed cache short-circuits
            warm = benchmark.pedantic(
                lambda: [remote.get("band@1") for _ in range(N_WARM_GETS)],
                rounds=1,
                iterations=1,
            )
            warm_get_s = None
            started = time.perf_counter()
            for _ in range(N_WARM_GETS):
                artifact, _manifest = remote.get("band@1")
            warm_get_s = (time.perf_counter() - started) / N_WARM_GETS
            assert len(warm) == N_WARM_GETS

            assert remote.http_requests == requests_after_cold, (
                f"cached get() went to the network: "
                f"{remote.http_requests - requests_after_cold} extra "
                f"request(s) after the cold pull"
            )

        # --- and the registry server is gone now: cache still serves
        artifact, _manifest = remote.get("band@1")
        assert remote.http_requests == requests_after_cold
        means, _stds = artifact.predict_rows(rows)
        np.testing.assert_array_equal(means, expected_means)

    print(
        f"\npush     {push_s * 1e3:7.2f} ms ({N_MEMBERS} members)\n"
        f"cold pull {cold_pull_s * 1e3:6.2f} ms "
        f"({requests_after_cold} HTTP request(s) total)\n"
        f"warm get {warm_get_s * 1e6:7.1f} us (0 HTTP requests)"
    )
    _record(
        results_dir,
        registry_members=N_MEMBERS,
        registry_push_ms=round(push_s * 1e3, 3),
        registry_cold_pull_ms=round(cold_pull_s * 1e3, 3),
        registry_warm_get_us=round(warm_get_s * 1e6, 2),
        registry_warm_http_requests=0,
        smoke=_SMOKE,
    )
