"""Shared fixtures for the benchmark/reproduction harness.

Running ``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure of the paper at full fidelity (100 random sub-sampling repetitions,
matching Section IV-B4) and writes each one under ``benchmarks/results/``.

Set ``REPRO_REPETITIONS`` to trade fidelity for speed (e.g. 10 for a quick
pass); the qualitative shapes are stable well below 100.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Full-fidelity experiment context shared across all benches."""
    repetitions = int(os.environ.get("REPRO_REPETITIONS", "100"))
    return ExperimentContext(seed=2015, repetitions=repetitions)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def emit(results_dir):
    """Print a reproduced artifact and persist it under results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
