"""Shared fixtures for the benchmark/reproduction harness.

Running ``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure of the paper at full fidelity (100 random sub-sampling repetitions,
matching Section IV-B4) and writes each one under ``benchmarks/results/``.

Set ``REPRO_REPETITIONS`` to trade fidelity for speed (e.g. 10 for a quick
pass); the qualitative shapes are stable well below 100.

The model evaluations run on the fast-fit path: validation sweeps fan out
across ``REPRO_WORKERS`` processes (default: the machine's core count,
capped at 8) and neural fits use batched restarts.  Both paths are
bit-identical to their serial counterparts, so the reported figures are
unchanged by either knob.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Full-fidelity experiment context shared across all benches."""
    repetitions = int(os.environ.get("REPRO_REPETITIONS", "100"))
    workers = int(os.environ.get("REPRO_WORKERS", "0")) or (os.cpu_count() or 1)
    return ExperimentContext(
        seed=2015,
        repetitions=repetitions,
        workers=min(workers, 8),
        batched_restarts=True,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def emit(results_dir):
    """Print a reproduced artifact and persist it under results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
