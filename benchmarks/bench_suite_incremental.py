"""Microbenchmark — incremental suite runs against the artifact store.

Not a paper artifact; guards the property the suite subsystem exists
for: **a re-run with unchanged specs executes zero nodes** and resolves
everything from the content-addressed store.  Asserted directly on the
runner's report, plus a wall-clock floor: the warm run must be at least
5x faster than the cold run (in practice it is orders of magnitude —
the warm path is pure key hashing and manifest reads).

Also asserts the two other acceptance properties end to end:

* editing one case's spec re-runs only that case's chain, everything
  else stays cached;
* a second cold run into a fresh store produces bit-identical artifact
  bytes (the determinism discipline the store's content addressing
  depends on).

Each run appends cold/warm latencies and the speedup to
``results/BENCH_suite.json`` so the numbers form a trajectory across
sessions (uploaded as a CI artifact).

Set ``REPRO_SMOKE=1`` for the reduced configuration used by
``make bench-smoke`` (fewer targets/counts; the asserted properties are
identical).
"""

import copy
import json
import os
import tempfile
import time
from pathlib import Path

from repro.suite import ArtifactStore, SuiteRunner, parse_suite

_SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

SPEC_DOC = {
    "suite": "bench",
    "defaults": {
        "machine": "e5649",
        "repetitions": 2 if _SMOKE else 10,
        "model_kinds": ["linear"] if _SMOKE else ["linear", "neural"],
        "feature_sets": ["F"],
    },
    "cases": [
        {
            "name": "base",
            "targets": ["cg", "sp"] if _SMOKE else ["cg", "sp", "lu", "mg"],
            "co_apps": ["ep", "lu"],
            "counts": [1, 2, 3],
            "frequencies_ghz": [2.53, 1.6],
        },
        {
            "name": "alt-seed",
            "targets": ["cg", "sp"] if _SMOKE else ["cg", "sp", "lu", "mg"],
            "co_apps": ["ep", "lu"],
            "counts": [1, 2, 3],
            "frequencies_ghz": [2.53, 1.6],
            "seed": 7,
        },
    ],
}

MIN_WARM_SPEEDUP = 5.0


def _record(results_dir, **values):
    """Merge a measurement into the BENCH_suite.json trajectory."""
    path = results_dir / "BENCH_suite.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(values)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _blob_map(store: ArtifactStore) -> dict[str, bytes]:
    out = {}
    for key in store.node_keys():
        payload, manifest = store.read_node_payload(key)
        out[manifest.node_id] = payload
    return out


def test_suite_incremental(results_dir):
    suite = parse_suite(SPEC_DOC)
    n_nodes = 2 * (1 + len(SPEC_DOC["defaults"]["model_kinds"]) + 1)

    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(Path(tmp) / "store")

        # --- cold run: every node executes
        cold_started = time.perf_counter()
        cold = SuiteRunner(suite, store).run()
        cold_s = time.perf_counter() - cold_started
        assert cold.ok
        assert cold.executed == n_nodes and cold.skipped == 0

        # --- warm run: the acceptance property — ZERO nodes execute
        warm_started = time.perf_counter()
        warm = SuiteRunner(suite, store).run()
        warm_s = time.perf_counter() - warm_started
        assert warm.ok
        assert warm.executed == 0, (
            f"warm re-run executed {warm.executed} node(s); "
            f"expected 0:\n{warm.summary()}"
        )
        assert warm.skipped == n_nodes
        speedup = cold_s / warm_s
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm run only {speedup:.1f}x faster than cold "
            f"({warm_s * 1e3:.1f} ms vs {cold_s * 1e3:.1f} ms); "
            f"need >= {MIN_WARM_SPEEDUP}x"
        )

        # Snapshot before the edit run adds re-keyed alt-seed artifacts.
        first_blobs = _blob_map(store)

        # --- edit one case: only its chain re-runs
        edited_doc = copy.deepcopy(SPEC_DOC)
        edited_doc["cases"][1]["counts"] = [1, 2]
        edited = SuiteRunner(parse_suite(edited_doc), store).run()
        assert edited.ok
        assert edited.executed == n_nodes // 2
        assert edited.skipped == n_nodes // 2
        untouched = {r.node_id for r in edited.by_status("cached")}
        assert all(node_id.endswith(":base") or ":base:" in node_id
                   for node_id in untouched)

        # --- determinism: a fresh cold run is bit-identical
        other = ArtifactStore(Path(tmp) / "other")
        SuiteRunner(suite, other).run()
        for node_id, payload in _blob_map(other).items():
            assert first_blobs[node_id] == payload, (
                f"{node_id} differs between two cold runs"
            )

    _record(
        results_dir,
        suite_nodes=n_nodes,
        cold_run_s=round(cold_s, 4),
        warm_run_s=round(warm_s, 6),
        warm_speedup=round(speedup, 1),
        warm_nodes_executed=warm.executed,
        smoke=_SMOKE,
    )
    print(
        f"\nsuite incremental: cold {cold_s * 1e3:.1f} ms, "
        f"warm {warm_s * 1e3:.2f} ms ({speedup:.0f}x), "
        f"{n_nodes} nodes, warm executed 0"
    )
