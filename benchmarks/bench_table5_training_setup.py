"""Table V — per-machine P-state frequencies and co-location counts."""

from repro.harness.experiments import table5_rows
from repro.reporting.tables import render_table


def test_table5_training_setup(benchmark, emit):
    rows = benchmark(table5_rows)
    emit(
        "table5_training_setup",
        render_table(
            ["Intel processor", "P-state frequencies (GHz)", "num. of co-locations"],
            rows,
            title="Table V: Training Data Setup",
        ),
    )
    assert len(rows) == 2
