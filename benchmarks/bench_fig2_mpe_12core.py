"""Figure 2 — MPE vs feature set, linear + neural, 12-core Xeon E5-2697v2."""

from _figures import run_figure


def test_fig2_mpe_12core(benchmark, ctx, emit):
    run_figure(
        benchmark,
        emit,
        ctx,
        name="fig2_mpe_12core",
        machine_key="e5-2697v2",
        metric="mpe",
        title="Figure 2: MPE, Xeon E5-2697v2 (12-core)",
    )
