"""Ablation — analytic engine vs trace-driven simulation.

DESIGN.md's two-level simulation claim, quantified: the analytic
steady-state engine and the trace-driven shared-cache simulator agree on
miss ratios under contention, while the analytic engine is orders of
magnitude faster — which is what makes the full Table V sweep tractable.
"""

import numpy as np

from repro.cache.reuse import ReuseProfile
from repro.cache.sharing import CacheCompetitor, solve_shared_cache
from repro.machine.processor import CacheGeometry
from repro.reporting.tables import render_table
from repro.sim.tracesim import TraceCompetitor, simulate_trace_sharing

KB = 1024


def _setup():
    geometry = CacheGeometry(size_bytes=256 * KB, line_bytes=64, associativity=8)
    victim = ReuseProfile.single(64 * KB, compulsory=0.01)
    aggressor = ReuseProfile.single(1024 * KB, compulsory=0.02)
    return geometry, victim, aggressor


def test_ablation_analytic_vs_trace_agreement(benchmark, emit):
    geometry, victim, aggressor = _setup()
    rows = []
    for weight in (0.5, 1.0, 2.0, 4.0):
        rng = np.random.default_rng(17)
        measured = simulate_trace_sharing(
            [
                TraceCompetitor("victim", victim, 1.0),
                TraceCompetitor("aggressor", aggressor, weight),
            ],
            geometry,
            200_000,
            rng,
        )
        analytic = solve_shared_cache(
            [CacheCompetitor(victim, 1.0), CacheCompetitor(aggressor, weight)],
            geometry.size_bytes,
        )
        rows.append(
            [
                weight,
                measured.miss_ratios[0],
                analytic.miss_ratios[0],
                abs(measured.miss_ratios[0] - analytic.miss_ratios[0]),
            ]
        )
    # The timed quantity: one analytic solve (the hot path of data
    # collection) — compare against the trace numbers in the table.
    benchmark(
        lambda: solve_shared_cache(
            [CacheCompetitor(victim, 1.0), CacheCompetitor(aggressor, 2.0)],
            geometry.size_bytes,
        )
    )
    emit(
        "ablation_engine_agreement",
        render_table(
            [
                "aggressor weight",
                "victim miss ratio (trace)",
                "victim miss ratio (analytic)",
                "abs diff",
            ],
            rows,
            title="Ablation: analytic sharing model vs trace-driven ground truth",
        ),
    )
    assert all(r[3] < 0.12 for r in rows)


def test_ablation_trace_sim_cost(benchmark):
    """The trace simulator's per-experiment cost (why it is not the bulk
    data-collection engine)."""
    geometry, victim, aggressor = _setup()

    def run_trace():
        rng = np.random.default_rng(3)
        return simulate_trace_sharing(
            [
                TraceCompetitor("victim", victim, 1.0),
                TraceCompetitor("aggressor", aggressor, 2.0),
            ],
            geometry,
            50_000,
            rng,
        )

    result = benchmark.pedantic(run_trace, rounds=3, iterations=1)
    assert result.total_references == 50_000
