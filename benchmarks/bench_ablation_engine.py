"""Ablation — analytic engine vs trace-driven simulation.

DESIGN.md's two-level simulation claim, quantified: the analytic
steady-state engine (serial and batched, which must agree bit-exactly)
and the trace-driven shared-cache simulator agree on miss ratios under
contention, while the analytic engine is orders of magnitude faster —
which is what makes the full Table V sweep tractable.
"""

import numpy as np

from repro.cache.reuse import ReuseProfile
from repro.cache.sharing import CacheCompetitor, solve_shared_cache
from repro.machine.processor import (
    CacheGeometry,
    DRAMConfig,
    MulticoreProcessor,
)
from repro.machine.pstates import PStateLadder
from repro.reporting.tables import render_table
from repro.sim import SimulationEngine, SolveRequest
from repro.sim.tracesim import TraceCompetitor, simulate_trace_sharing
from repro.workloads.app import ApplicationSpec

KB = 1024


def _setup():
    geometry = CacheGeometry(size_bytes=256 * KB, line_bytes=64, associativity=8)
    victim = ReuseProfile.single(64 * KB, compulsory=0.01)
    aggressor = ReuseProfile.single(1024 * KB, compulsory=0.02)
    return geometry, victim, aggressor


def _engine_for(geometry):
    """A 2-core machine around the ablation's cache geometry."""
    processor = MulticoreProcessor(
        name="ablation-2core",
        num_cores=2,
        llc=geometry,
        dram=DRAMConfig(idle_latency_ns=95.0, peak_bandwidth_gbs=14.0),
        pstates=PStateLadder.from_frequencies([2.5]),
    )
    return SimulationEngine(processor)


def _specs(victim, aggressor, weight):
    """Victim/aggressor pair whose access-rate ratio mirrors ``weight``.

    The trace simulator interleaves references at a *fixed* rate ratio, so
    the engine specs keep memory stalls a small fraction of execution time
    (low accesses-per-instruction, high MLP): both apps then run near
    their base CPI and the engine's realized access-rate ratio stays at
    ``weight`` instead of drifting as the aggressor slows under misses.
    """
    base = 0.002
    return (
        ApplicationSpec("victim", "ablation", 1e9, 1.0, base, victim, mlp=16.0),
        ApplicationSpec(
            "aggressor", "ablation", 1e9, 1.0, base * weight, aggressor, mlp=16.0
        ),
    )


def test_ablation_analytic_vs_trace_agreement(benchmark, emit):
    geometry, victim, aggressor = _setup()
    weights = (0.5, 1.0, 2.0, 4.0)
    engine_serial = _engine_for(geometry)
    engine_batched = _engine_for(geometry)
    serial_states = [
        engine_serial.solve_steady_state(_specs(victim, aggressor, w))
        for w in weights
    ]
    batched_states = engine_batched.solve_steady_state_batched(
        [SolveRequest(apps=_specs(victim, aggressor, w)) for w in weights]
    )
    rows = []
    for weight, serial_state, batched_state in zip(
        weights, serial_states, batched_states
    ):
        rng = np.random.default_rng(17)
        measured = simulate_trace_sharing(
            [
                TraceCompetitor("victim", victim, 1.0),
                TraceCompetitor("aggressor", aggressor, weight),
            ],
            geometry,
            200_000,
            rng,
        )
        analytic = solve_shared_cache(
            [CacheCompetitor(victim, 1.0), CacheCompetitor(aggressor, weight)],
            geometry.size_bytes,
        )
        # The batched engine must not merely agree with the trace — it
        # must reproduce the serial engine bit for bit.
        assert np.array_equal(
            serial_state.miss_ratios, batched_state.miss_ratios
        )
        assert serial_state.iterations == batched_state.iterations
        rows.append(
            [
                weight,
                measured.miss_ratios[0],
                analytic.miss_ratios[0],
                float(serial_state.miss_ratios[0]),
                float(batched_state.miss_ratios[0]),
                abs(measured.miss_ratios[0] - analytic.miss_ratios[0]),
                abs(measured.miss_ratios[0] - float(serial_state.miss_ratios[0])),
            ]
        )
    # The timed quantity: one analytic solve (the hot path of data
    # collection) — compare against the trace numbers in the table.
    benchmark(
        lambda: solve_shared_cache(
            [CacheCompetitor(victim, 1.0), CacheCompetitor(aggressor, 2.0)],
            geometry.size_bytes,
        )
    )
    emit(
        "ablation_engine_agreement",
        render_table(
            [
                "aggressor weight",
                "victim miss ratio (trace)",
                "victim miss ratio (analytic)",
                "victim miss ratio (engine serial)",
                "victim miss ratio (engine batched)",
                "abs diff (analytic)",
                "abs diff (engine)",
            ],
            rows,
            title="Ablation: analytic sharing model vs trace-driven ground truth",
        ),
    )
    assert all(r[5] < 0.12 for r in rows)
    assert all(r[6] < 0.12 for r in rows)
    # Bit-identity across the whole sweep: serial == batched exactly.
    assert all(r[3] == r[4] for r in rows)


def test_ablation_trace_sim_cost(benchmark):
    """The trace simulator's per-experiment cost (why it is not the bulk
    data-collection engine)."""
    geometry, victim, aggressor = _setup()

    def run_trace():
        rng = np.random.default_rng(3)
        return simulate_trace_sharing(
            [
                TraceCompetitor("victim", victim, 1.0),
                TraceCompetitor("aggressor", aggressor, 2.0),
            ],
            geometry,
            50_000,
            rng,
        )

    result = benchmark.pedantic(run_trace, rounds=3, iterations=1)
    assert result.total_references == 50_000
