"""Ablation — uniform (paper) vs random ([DwF12]-style) training sampling.

Section II: "our methodology guarantees a uniform selection of training
data over the possible co-location space ... while [DwF12] selects the
vast majority of its training data at random."  This bench gives both
strategies the same run budget on the 6-core machine and compares the
resulting neural/F model accuracy on a common uniformly-spread probe set.
"""

import numpy as np

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.core.metrics import mpe
from repro.harness.collection import collect_random_training_data, collect_training_data
from repro.reporting.tables import render_table


def _probe_mpe(predictor, probe):
    preds = predictor.predict_observations(list(probe))
    actuals = np.array([o.actual_time_s for o in probe])
    return mpe(preds, actuals)


def test_ablation_sampling_strategy(benchmark, ctx, emit):
    engine = ctx.engine("e5649")
    baselines = ctx.baselines("e5649")
    uniform = ctx.dataset("e5649")
    budget = len(uniform)

    random_ds = benchmark.pedantic(
        lambda: collect_random_training_data(
            engine,
            budget,
            baselines=baselines,
            rng=np.random.default_rng(99),
        ),
        rounds=1,
        iterations=1,
    )

    # Probe set: the uniform loop nest re-measured with a different noise
    # stream (unseen data for both models, evenly spread over the space).
    probe = collect_training_data(
        engine, baselines=baselines, rng=np.random.default_rng(1234)
    )

    rows = []
    for name, dataset in (("uniform (paper)", uniform), ("random (DwF12-style)", random_ds)):
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=5)
        predictor.fit(list(dataset))
        rows.append([name, len(dataset), _probe_mpe(predictor, probe)])

    emit(
        "ablation_sampling",
        render_table(
            ["training selection", "budget (runs)", "probe MPE (%)"],
            rows,
            title="Ablation: uniform vs random training data selection, neural/F, E5649",
        ),
    )
    # Both are usable; uniform coverage must not lose to random selection
    # on the evenly-spread probe.
    assert rows[0][2] <= rows[1][2] * 1.25
    assert rows[0][2] < 5.0
