"""Figure 3 — NRMSE vs feature set, linear + neural, 6-core Xeon E5649."""

from _figures import run_figure


def test_fig3_nrmse_6core(benchmark, ctx, emit):
    run_figure(
        benchmark,
        emit,
        ctx,
        name="fig3_nrmse_6core",
        machine_key="e5649",
        metric="nrmse",
        title="Figure 3: NRMSE, Xeon E5649 (6-core)",
    )
