"""Microbenchmark — micro-batched serving vs one-request-at-a-time.

Not a paper artifact; guards the property the serving layer exists for: a
resource manager fanning placement queries at the service must see
coalescing pay off. Closed-loop worker threads drive two identically
configured servers — one with coalescing disabled (``max_batch=1``), one
micro-batched — and the batched server must sustain at least 3x the
request rate while serving bit-identical predictions (checked separately
in ``tests/serve``).

Set ``REPRO_SMOKE=1`` for the reduced configuration used by
``make bench-smoke`` (fewer workers and requests; the speedup floor drops
to 1.8x because tiny runs are noisy).
"""

import concurrent.futures
import os
import threading
import time

from repro.core.ensemble import EnsemblePredictor
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind
from repro.serve.client import PredictionClient
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServerThread

_SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

N_WORKERS = 8 if _SMOKE else 16
REQUESTS_PER_WORKER = 30 if _SMOKE else 80
MIN_SPEEDUP = 1.8 if _SMOKE else 3.0
N_MEMBERS = 128  # per-request model work must dominate transport cost


def _percentile(sorted_values, p):
    idx = max(0, min(len(sorted_values) - 1, round(p / 100 * len(sorted_values)) - 1))
    return sorted_values[idx]


def _drive(registry, feature_dicts, *, max_batch):
    """Closed-loop load: N_WORKERS threads, each sending its requests
    back-to-back. Returns (req_per_s, latencies_s, metrics_samples)."""
    with ServerThread(
        registry, max_batch=max_batch, max_wait_ms=4.0
    ) as handle:
        barrier = threading.Barrier(N_WORKERS + 1)
        all_latencies = [None] * N_WORKERS

        def worker(w):
            latencies = []
            with PredictionClient("127.0.0.1", handle.port) as client:
                barrier.wait(timeout=30)
                for i in range(REQUESTS_PER_WORKER):
                    row = feature_dicts[(w + i) % len(feature_dicts)]
                    t0 = time.perf_counter()
                    client.predict(row, model="band")
                    latencies.append(time.perf_counter() - t0)
            all_latencies[w] = latencies

        with concurrent.futures.ThreadPoolExecutor(N_WORKERS) as pool:
            futures = [pool.submit(worker, w) for w in range(N_WORKERS)]
            barrier.wait(timeout=30)
            start = time.perf_counter()
            for f in futures:
                f.result(timeout=120)
            elapsed = time.perf_counter() - start

        with PredictionClient("127.0.0.1", handle.port) as client:
            samples = client.metrics()

    total = N_WORKERS * REQUESTS_PER_WORKER
    latencies = sorted(v for per_worker in all_latencies for v in per_worker)
    return total / elapsed, latencies, samples


def test_micro_batching_speedup(ctx, benchmark):
    dataset = list(ctx.dataset("e5649"))
    ensemble = EnsemblePredictor(
        ModelKind.LINEAR, FeatureSet.F, n_members=N_MEMBERS, seed=7
    ).fit(dataset)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.push("band", ensemble)
        names = [f.value for f in FeatureSet.F.features]
        feature_dicts = [
            {
                name: obs.feature_value(feature)
                for name, feature in zip(names, FeatureSet.F.features)
            }
            for obs in dataset[:64]
        ]

        serial_rps, serial_lat, serial_samples = _drive(
            registry, feature_dicts, max_batch=1
        )
        batched_rps, batched_lat, batched_samples = benchmark.pedantic(
            lambda: _drive(registry, feature_dicts, max_batch=N_WORKERS),
            rounds=1,
            iterations=1,
        )

    total = N_WORKERS * REQUESTS_PER_WORKER

    # /metrics must agree exactly with the client-side request count.
    for samples in (serial_samples, batched_samples):
        key = 'repro_serve_requests_total{endpoint="/v1/predict",status="200"}'
        assert samples[key] == total
        assert samples["repro_serve_predictions_total"] == total
        assert samples["repro_serve_request_latency_seconds_count"] == total
        assert samples["repro_serve_batch_size_sum"] == float(total)

    # Coalescing disabled -> every flush carried exactly one row.
    assert serial_samples["repro_serve_batch_size_count"] == total
    # Coalescing enabled -> flushes carried several rows each.
    batched_flushes = batched_samples["repro_serve_batch_size_count"]
    assert batched_flushes < total / 2, (
        f"batching barely coalesced: {batched_flushes} flushes for {total} rows"
    )

    speedup = batched_rps / serial_rps
    print(
        f"\nserial   {serial_rps:8.0f} req/s  "
        f"p50 {_percentile(serial_lat, 50) * 1e3:6.2f} ms  "
        f"p99 {_percentile(serial_lat, 99) * 1e3:6.2f} ms\n"
        f"batched  {batched_rps:8.0f} req/s  "
        f"p50 {_percentile(batched_lat, 50) * 1e3:6.2f} ms  "
        f"p99 {_percentile(batched_lat, 99) * 1e3:6.2f} ms\n"
        f"speedup  {speedup:.2f}x  "
        f"(mean batch {total / batched_flushes:.1f} rows/flush)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batching speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x floor ({serial_rps:.0f} -> {batched_rps:.0f} req/s)"
    )
