"""Microbenchmark — serving throughput: micro-batching and the worker tier.

Not a paper artifact; guards the properties the serving layer exists for.
``test_micro_batching_speedup``: a resource manager fanning placement
queries at the service must see coalescing pay off.  Closed-loop worker
threads drive two identically configured servers — one with coalescing
disabled (``max_batch=1``), one micro-batched — and the batched server
must sustain at least 3x the request rate while serving bit-identical
predictions (checked separately in ``tests/serve``).
``test_worker_tier_scaling``: the multi-process tier (router + 4 shard
workers) must scale request throughput ≥2x over one process while every
prediction stays bit-identical and the shadow-divergence histogram shows
up in the router's single merged ``/metrics`` scrape.

Both tests append their numbers to ``results/BENCH_serve.json``.

Set ``REPRO_SMOKE=1`` for the reduced configuration used by
``make bench-smoke`` (fewer workers and requests; the speedup floor drops
to 1.8x because tiny runs are noisy).
"""

import concurrent.futures
import json
import os
import threading
import time

from repro.core.ensemble import EnsemblePredictor
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind
from repro.serve.client import PredictionClient
from repro.serve.registry import ModelRegistry
from repro.serve.router import ServingTier, parse_shadow
from repro.serve.server import ServerThread

_SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

N_WORKERS = 8 if _SMOKE else 16
REQUESTS_PER_WORKER = 30 if _SMOKE else 80
MIN_SPEEDUP = 1.8 if _SMOKE else 3.0
N_MEMBERS = 128  # per-request model work must dominate transport cost

TIER_WORKERS = 4
#: ``colo-0``..``colo-7`` rendezvous-hash onto all four shards, so the
#: tier's scaling headroom is real, not one hot worker.
MODEL_NAMES = tuple(f"colo-{i}" for i in range(8))
SHADOWED = "colo-5"  # carries two versions; bare requests are shadowed
MIN_TIER_SPEEDUP = 2.0
#: Four worker processes cannot beat one on fewer than four cores; the
#: floor is only asserted where the hardware can express it.
MULTI_CORE = (os.cpu_count() or 1) >= TIER_WORKERS


def _record(results_dir, **values):
    """Merge a measurement into the BENCH_serve.json trajectory."""
    path = results_dir / "BENCH_serve.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(values)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _percentile(sorted_values, p):
    idx = max(0, min(len(sorted_values) - 1, round(p / 100 * len(sorted_values)) - 1))
    return sorted_values[idx]


def _drive(registry, feature_dicts, *, max_batch):
    """Closed-loop load: N_WORKERS threads, each sending its requests
    back-to-back. Returns (req_per_s, latencies_s, metrics_samples)."""
    with ServerThread(
        registry, max_batch=max_batch, max_wait_ms=4.0
    ) as handle:
        barrier = threading.Barrier(N_WORKERS + 1)
        all_latencies = [None] * N_WORKERS

        def worker(w):
            latencies = []
            with PredictionClient("127.0.0.1", handle.port) as client:
                barrier.wait(timeout=30)
                for i in range(REQUESTS_PER_WORKER):
                    row = feature_dicts[(w + i) % len(feature_dicts)]
                    t0 = time.perf_counter()
                    client.predict(row, model="band")
                    latencies.append(time.perf_counter() - t0)
            all_latencies[w] = latencies

        with concurrent.futures.ThreadPoolExecutor(N_WORKERS) as pool:
            futures = [pool.submit(worker, w) for w in range(N_WORKERS)]
            barrier.wait(timeout=30)
            start = time.perf_counter()
            for f in futures:
                f.result(timeout=120)
            elapsed = time.perf_counter() - start

        with PredictionClient("127.0.0.1", handle.port) as client:
            samples = client.metrics()

    total = N_WORKERS * REQUESTS_PER_WORKER
    latencies = sorted(v for per_worker in all_latencies for v in per_worker)
    return total / elapsed, latencies, samples


def test_micro_batching_speedup(ctx, results_dir, benchmark):
    dataset = list(ctx.dataset("e5649"))
    ensemble = EnsemblePredictor(
        ModelKind.LINEAR, FeatureSet.F, n_members=N_MEMBERS, seed=7
    ).fit(dataset)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.push("band", ensemble)
        names = [f.value for f in FeatureSet.F.features]
        feature_dicts = [
            {
                name: obs.feature_value(feature)
                for name, feature in zip(names, FeatureSet.F.features)
            }
            for obs in dataset[:64]
        ]

        serial_rps, serial_lat, serial_samples = _drive(
            registry, feature_dicts, max_batch=1
        )
        batched_rps, batched_lat, batched_samples = benchmark.pedantic(
            lambda: _drive(registry, feature_dicts, max_batch=N_WORKERS),
            rounds=1,
            iterations=1,
        )

    total = N_WORKERS * REQUESTS_PER_WORKER

    # /metrics must agree exactly with the client-side request count.
    for samples in (serial_samples, batched_samples):
        key = 'repro_serve_requests_total{endpoint="/v1/predict",status="200"}'
        assert samples[key] == total
        assert samples["repro_serve_predictions_total"] == total
        assert samples["repro_serve_request_latency_seconds_count"] == total
        assert samples["repro_serve_batch_size_sum"] == float(total)

    # Coalescing disabled -> every flush carried exactly one row.
    assert serial_samples["repro_serve_batch_size_count"] == total
    # Coalescing enabled -> flushes carried several rows each.
    batched_flushes = batched_samples["repro_serve_batch_size_count"]
    assert batched_flushes < total / 2, (
        f"batching barely coalesced: {batched_flushes} flushes for {total} rows"
    )

    speedup = batched_rps / serial_rps
    print(
        f"\nserial   {serial_rps:8.0f} req/s  "
        f"p50 {_percentile(serial_lat, 50) * 1e3:6.2f} ms  "
        f"p99 {_percentile(serial_lat, 99) * 1e3:6.2f} ms\n"
        f"batched  {batched_rps:8.0f} req/s  "
        f"p50 {_percentile(batched_lat, 50) * 1e3:6.2f} ms  "
        f"p99 {_percentile(batched_lat, 99) * 1e3:6.2f} ms\n"
        f"speedup  {speedup:.2f}x  "
        f"(mean batch {total / batched_flushes:.1f} rows/flush)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batching speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x floor ({serial_rps:.0f} -> {batched_rps:.0f} req/s)"
    )
    _record(
        results_dir,
        serial_rps=serial_rps,
        batched_rps=batched_rps,
        batching_speedup=speedup,
    )


def _drive_port(port, feature_dicts):
    """Closed-loop load against any serving port (single server or tier).

    Each of N_WORKERS threads round-robins over MODEL_NAMES and feature
    rows in lockstep, so both serving paths see the identical request
    stream.  Returns (req_per_s, {(model_idx, row_idx): prediction}).
    """
    barrier = threading.Barrier(N_WORKERS + 1)
    per_thread: list[dict | None] = [None] * N_WORKERS

    def worker(w):
        seen = {}
        with PredictionClient("127.0.0.1", port, timeout=60.0) as client:
            barrier.wait(timeout=30)
            for i in range(REQUESTS_PER_WORKER):
                turn = w + i
                model_idx = turn % len(MODEL_NAMES)
                row_idx = turn % len(feature_dicts)
                body = client.predict(
                    feature_dicts[row_idx], model=MODEL_NAMES[model_idx]
                )
                seen[(model_idx, row_idx)] = body["prediction"]
        per_thread[w] = seen

    with concurrent.futures.ThreadPoolExecutor(N_WORKERS) as pool:
        futures = [pool.submit(worker, w) for w in range(N_WORKERS)]
        barrier.wait(timeout=30)
        start = time.perf_counter()
        for f in futures:
            f.result(timeout=300)
        elapsed = time.perf_counter() - start

    predictions: dict = {}
    for seen in per_thread:
        for key, value in seen.items():
            assert predictions.setdefault(key, value) == value, (
                f"same (model, row) produced two different predictions: {key}"
            )
    return (N_WORKERS * REQUESTS_PER_WORKER) / elapsed, predictions


def test_worker_tier_scaling(ctx, results_dir, benchmark):
    dataset = list(ctx.dataset("e5649"))
    primary = EnsemblePredictor(
        ModelKind.LINEAR, FeatureSet.F, n_members=N_MEMBERS, seed=7
    ).fit(dataset)
    # A genuinely different model (other bootstrap seed) so the shadow
    # comparison has real divergence to measure.
    shadow_version = EnsemblePredictor(
        ModelKind.LINEAR, FeatureSet.F, n_members=N_MEMBERS, seed=11
    ).fit(dataset)
    names = [f.value for f in FeatureSet.F.features]
    feature_dicts = [
        {
            name: obs.feature_value(feature)
            for name, feature in zip(names, FeatureSet.F.features)
        }
        for obs in dataset[:64]
    ]

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.push(SHADOWED, shadow_version)  # colo-5@1, the shadow
        for model_name in MODEL_NAMES:
            registry.push(model_name, primary)  # latest everywhere
        # max_batch=1 on both paths: BLAS results differ in the last ulp
        # with the shape of the matrix they were computed in, so predict
        # batches must have identical composition for the bit-identity
        # check.  One row per flush guarantees that; the tier's speedup
        # comes from process parallelism, not coalescing.
        with ServerThread(
            registry, max_batch=1, max_wait_ms=4.0
        ) as handle:
            single_rps, single_predictions = _drive_port(
                handle.port, feature_dicts
            )
        with ServingTier(
            registry,
            workers=TIER_WORKERS,
            shadow=(parse_shadow(f"{SHADOWED}@1"),),
            max_batch=1,
            max_wait_ms=4.0,
        ) as tier:
            tier_rps, tier_predictions = benchmark.pedantic(
                lambda: _drive_port(tier.port, feature_dicts),
                rounds=1,
                iterations=1,
            )
            with PredictionClient("127.0.0.1", tier.port) as client:
                samples = client.metrics()
        assert tier.worker_exitcodes == [0] * TIER_WORKERS

    # Sharded multi-process serving must not change a single bit of any
    # prediction relative to the one-process server.
    assert tier_predictions == single_predictions

    total = N_WORKERS * REQUESTS_PER_WORKER
    # One merged scrape covers the whole tier: shape, per-worker liveness,
    # router counters, and the shadow-divergence histogram.
    assert samples["repro_serve_workers"] == float(TIER_WORKERS)
    for w in range(TIER_WORKERS):
        assert samples[f'repro_serve_worker_up{{worker="{w}"}}'] == 1.0
    key = 'repro_router_requests_total{endpoint="/v1/predict",status="200"}'
    assert samples[key] == float(total)
    divergence_count = samples[
        f'repro_serve_shadow_divergence_count{{model="{SHADOWED}"}}'
    ]
    assert divergence_count > 0
    assert (
        samples[f'repro_serve_shadow_divergence_sum{{model="{SHADOWED}"}}']
        > 0.0
    )

    speedup = tier_rps / single_rps
    print(
        f"\nsingle   {single_rps:8.0f} req/s\n"
        f"tier     {tier_rps:8.0f} req/s  ({TIER_WORKERS} workers)\n"
        f"speedup  {speedup:.2f}x  "
        f"(shadow divergence observations: {divergence_count:.0f})"
    )
    _record(
        results_dir,
        single_process_rps=single_rps,
        tier_rps=tier_rps,
        tier_workers=TIER_WORKERS,
        tier_speedup=speedup,
        shadow_divergence_count=divergence_count,
    )
    if MULTI_CORE:
        assert speedup >= MIN_TIER_SPEEDUP, (
            f"worker-tier speedup {speedup:.2f}x below the "
            f"{MIN_TIER_SPEEDUP}x floor on {TIER_WORKERS} workers "
            f"({single_rps:.0f} -> {tier_rps:.0f} req/s)"
        )
    else:
        print(
            f"only {os.cpu_count()} cpu(s): speedup floor not asserted "
            f"(bit-identity still checked)"
        )
