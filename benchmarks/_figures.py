"""Shared helper for the Figures 1–4 benches."""

from __future__ import annotations

from repro.harness.experiments import ExperimentContext, figure_series
from repro.reporting.figures import render_series

#: Paper shape targets per (machine, metric): the final neural/F testing
#: error must undercut the linear/F testing error, and sit near the paper's
#: headline (~2% MPE, ~1% NRMSE), with slack for the simulated substrate.
NEURAL_F_CEILING = {"mpe": 3.0, "nrmse": 3.0}


def run_figure(
    benchmark,
    emit,
    ctx: ExperimentContext,
    *,
    name: str,
    machine_key: str,
    metric: str,
    title: str,
) -> None:
    """Time the 12-model evaluation (first call) and emit the figure data."""
    labels, series = benchmark.pedantic(
        lambda: figure_series(ctx, machine_key, metric), rounds=1, iterations=1
    )
    emit(
        name,
        render_series(
            labels,
            series,
            title=f"{title} (mean over {ctx.repetitions} random 70/30 partitions)",
            unit="%",
        ),
    )
    nn_test = series["neural test"]
    lin_test = series["linear test"]
    assert nn_test[-1] < lin_test[-1], "neural/F must beat linear/F"
    assert nn_test[-1] < NEURAL_F_CEILING[metric], "neural/F near paper headline"
    assert nn_test[-1] < nn_test[0], "features must help the neural model"
