"""Ablation — the steady-state assumption vs departing co-runners.

The paper's harness keeps co-located pressure constant by restarting
co-runners, which the analytic engine models as steady state.  This bench
quantifies when that abstraction is exact (restart protocol) and how far
it drifts when finished co-runners instead *leave* the machine (a batch
scheduler's reality) — the regime boundary a model user should know.
"""

from repro.reporting.tables import render_table
from repro.sim.timesliced import TimeSlicedSimulator
from repro.workloads.suite import get_application


def test_ablation_steady_state_assumption(benchmark, ctx, emit):
    engine = ctx.engine("e5649")
    sim = TimeSlicedSimulator(engine, slice_s=2.0)
    canneal = get_application("canneal")

    rows = []
    for scale in (1.0, 0.5, 0.25, 0.1):
        short_cg = get_application("cg").scaled(scale)
        steady = engine.run(canneal, [short_cg] * 3).target.execution_time_s
        restart = sim.run(
            canneal, [short_cg] * 3, restart_co_runners=True
        ).execution_time_s
        depart = sim.run(
            canneal, [short_cg] * 3, restart_co_runners=False
        ).execution_time_s
        rows.append(
            [
                scale,
                steady,
                restart,
                depart,
                100.0 * (steady - depart) / depart,
            ]
        )

    benchmark.pedantic(
        lambda: sim.run(canneal, [get_application("cg").scaled(0.25)] * 3,
                        restart_co_runners=False),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_timesliced",
        render_table(
            [
                "co-runner length (x cg)",
                "steady-state (s)",
                "time-sliced restart (s)",
                "time-sliced depart (s)",
                "steady overestimates depart by (%)",
            ],
            rows,
            title="Ablation: steady-state assumption vs co-runner departures (canneal + 3x cg, E5649)",
        ),
    )
    # Restart protocol: steady state is exact at every job length.
    for row in rows:
        assert abs(row[1] - row[2]) / row[1] < 1e-6
    # Departures: the shorter the co-runners, the larger the steady-state
    # overestimate — monotone in job length.
    overestimates = [row[4] for row in rows]
    assert all(a <= b + 1e-9 for a, b in zip(overestimates, overestimates[1:]))
    assert overestimates[0] < 1e-6  # full-length cg outlives canneal
    assert overestimates[-1] > 5.0  # short jobs leave real headroom
