"""Table IV — the multicore processors used for validation."""

from repro.harness.experiments import table4_rows
from repro.reporting.tables import render_table


def test_table4_processors(benchmark, emit):
    rows = benchmark(table4_rows)
    emit(
        "table4_processors",
        render_table(
            ["Intel processor", "num. cores", "L3 cache", "frequency range"],
            rows,
            title="Table IV: Multicore Processors Used for Validation",
        ),
    )
    assert [r[1] for r in rows] == [6, 12]
