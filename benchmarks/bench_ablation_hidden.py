"""Ablation — neural network hidden-layer width (Section III-D's 10–20).

Sweeps the hidden width for the feature-set-F network on the 6-core
dataset, checking the paper's sizing rule sits on the accuracy plateau:
going below ~10 nodes costs accuracy, going above ~20 buys little.
Runs on the fast-fit path (batched restarts, parallel repetitions), which
is bit-identical to the serial loop.
"""

from functools import partial

import numpy as np

from repro.core.feature_sets import FeatureSet
from repro.core.features import feature_matrix
from repro.core.neural import NeuralNetworkModel
from repro.core.validation import repeated_random_subsampling
from repro.reporting.tables import render_table

WIDTHS = (2, 5, 10, 20, 40)


def test_ablation_hidden_width(benchmark, ctx, emit):
    observations = list(ctx.dataset("e5649"))
    X, y = feature_matrix(observations, FeatureSet.F.features)

    def sweep():
        rows = []
        for width in WIDTHS:
            result = repeated_random_subsampling(
                partial(
                    NeuralNetworkModel,
                    hidden_units=width,
                    n_restarts=1,
                    batched_restarts=True,
                ),
                X,
                y,
                repetitions=5,
                rng=np.random.default_rng(width),
                workers=ctx.workers,
            )
            rows.append([width, result.mean_test_mpe, result.mean_test_nrmse])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_hidden_width",
        render_table(
            ["hidden units", "test MPE (%)", "test NRMSE (%)"],
            rows,
            title="Ablation: hidden-layer width, neural/F, E5649",
        ),
    )
    by_width = {r[0]: r[1] for r in rows}
    # Tiny networks underfit relative to the paper's 10-20 band...
    assert by_width[2] > by_width[20]
    # ...and doubling beyond 20 does not change the regime.
    assert by_width[40] > by_width[20] * 0.5
