"""Figure 4 — NRMSE vs feature set, linear + neural, 12-core Xeon E5-2697v2."""

from _figures import run_figure


def test_fig4_nrmse_12core(benchmark, ctx, emit):
    run_figure(
        benchmark,
        emit,
        ctx,
        name="fig4_nrmse_12core",
        machine_key="e5-2697v2",
        metric="nrmse",
        title="Figure 4: NRMSE, Xeon E5-2697v2 (12-core)",
    )
