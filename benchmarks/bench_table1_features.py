"""Table I — model features and the aspect of execution each measures."""

from repro.harness.experiments import table1_rows
from repro.reporting.tables import render_table


def test_table1_features(benchmark, emit):
    rows = benchmark(table1_rows)
    emit(
        "table1_features",
        render_table(
            ["Feature name", "aspect of execution measured"],
            rows,
            title="Table I: Model Features",
        ),
    )
    assert len(rows) == 8
