"""Generalization — beyond the training co-location space.

Section IV-B3: the training data is "designed to be able to both predict
between the training data's gaps in the sample space, and extend beyond
the set of four co-location applications ... and be able to make
predictions about applications that it has not seen previously."

Three probes of increasing distance from the training distribution, all
on the neural/F model trained on the standard homogeneous grid:

1. *gap counts* — homogeneous co-locations at counts the grid skipped,
2. *unseen co-apps* — suite applications never used as co-runners,
3. *heterogeneous mixes* — mixed co-runner sets (training was homogeneous),
4. *generated apps* — synthetic applications outside the suite entirely.
"""

import numpy as np

from repro.core.feature_sets import FeatureSet
from repro.core.features import feature_row
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.core.metrics import mpe
from repro.counters.hpcrun import hpcrun_flat
from repro.reporting.tables import render_table
from repro.workloads.classes import MemoryIntensityClass
from repro.workloads.generator import generate_application
from repro.workloads.suite import get_application


def _predict_and_measure(engine, predictor, baselines, fmax, cases):
    """cases: list of (target_name, [co_names])."""
    preds, actuals = [], []
    for target_name, co_names in cases:
        target_base = baselines.get(target_name, fmax.frequency_ghz)
        co_bases = [baselines.get(n, fmax.frequency_ghz) for n in co_names]
        preds.append(predictor.predict_time(target_base, co_bases))
        run = engine.run(
            get_application(target_name),
            [get_application(n) for n in co_names],
            pstate=fmax,
        )
        actuals.append(run.target.execution_time_s)
    return mpe(np.array(preds), np.array(actuals))


def test_generalization_probes(benchmark, ctx, emit):
    engine = ctx.engine("e5649")
    baselines = ctx.baselines("e5649")
    fmax = engine.processor.pstates.fastest
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=11)
    predictor.fit(list(ctx.dataset("e5649")))

    def run_probes():
        rows = []
        # 1. In-distribution sanity: grid points (training-style cases).
        grid = [("canneal", ["cg"] * 3), ("sp", ["fluidanimate"] * 5),
                ("ep", ["sp"] * 1), ("lu", ["ep"] * 4)]
        rows.append(["grid points (sanity)", _predict_and_measure(
            engine, predictor, baselines, fmax, grid)])
        # 2. Unseen co-apps: canneal/mg/lu never co-ran in training.
        unseen = [("sp", ["canneal"] * 3), ("fluidanimate", ["mg"] * 2),
                  ("ep", ["canneal"] * 4), ("cg", ["lu"] * 5)]
        rows.append(["unseen co-applications", _predict_and_measure(
            engine, predictor, baselines, fmax, unseen)])
        # 3. Heterogeneous mixes (training was homogeneous).
        mixes = [("canneal", ["cg", "sp", "ep"]),
                 ("sp", ["cg", "cg", "fluidanimate", "ep"]),
                 ("fluidanimate", ["cg", "canneal"]),
                 ("ep", ["cg", "sp", "sp", "fluidanimate", "ep"])]
        rows.append(["heterogeneous mixes", _predict_and_measure(
            engine, predictor, baselines, fmax, mixes)])
        # 4. Generated applications outside the suite (as targets).
        rng = np.random.default_rng(42)
        preds, actuals = [], []
        for cls in (MemoryIntensityClass.CLASS_I, MemoryIntensityClass.CLASS_III):
            synth = generate_application(cls, rng)
            synth_base = hpcrun_flat(engine, synth, pstate=fmax)
            cg_base = baselines.get("cg", fmax.frequency_ghz)
            preds.append(predictor.predict_time(synth_base, [cg_base] * 3))
            run = engine.run(synth, [get_application("cg")] * 3, pstate=fmax)
            actuals.append(run.target.execution_time_s)
        rows.append(["generated (out-of-suite) targets",
                     mpe(np.array(preds), np.array(actuals))])
        return rows

    rows = benchmark.pedantic(run_probes, rounds=1, iterations=1)
    emit(
        "generalization",
        render_table(
            ["probe (distance from training distribution)", "MPE (%)"],
            rows,
            title="Generalization: neural/F trained on the homogeneous grid, E5649",
        ),
    )
    by_name = {r[0]: r[1] for r in rows}
    assert by_name["grid points (sanity)"] < 5.0
    assert by_name["unseen co-applications"] < 10.0
    assert by_name["heterogeneous mixes"] < 10.0
    assert by_name["generated (out-of-suite) targets"] < 15.0
