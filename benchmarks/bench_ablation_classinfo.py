"""Ablation — class-level co-runner information (Section IV-B1).

The paper argues a developer knowing only each co-runner's memory
intensity *class* can "still be able to use the model ... with average
values for that application's class".  This bench quantifies the cost of
that degraded mode: predict every probe co-location twice — once from the
co-runners' exact baseline profiles, once knowing only their classes —
and compare MPE against the simulator's ground truth.
"""

import numpy as np

from repro.core.classinfo import ClassProfiles, predict_time_from_classes
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.core.metrics import mpe
from repro.reporting.tables import render_table
from repro.workloads.classes import classify_intensity
from repro.workloads.suite import get_application

PROBES = [
    ("canneal", "cg", 3),
    ("canneal", "sp", 5),
    ("sp", "cg", 2),
    ("fluidanimate", "cg", 4),
    ("fluidanimate", "ep", 5),
    ("ep", "cg", 3),
    ("lu", "sp", 4),
    ("streamcluster", "fluidanimate", 2),
]


def test_ablation_class_information(benchmark, ctx, emit):
    engine = ctx.engine("e5649")
    baselines = ctx.baselines("e5649")
    fmax = engine.processor.pstates.fastest
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=3)
    predictor.fit(list(ctx.dataset("e5649")))
    class_profiles = ClassProfiles.from_profiles(
        [baselines.get(n, fmax.frequency_ghz) for n in baselines.app_names()]
    )

    def run_probe():
        actuals, exact, by_class = [], [], []
        for target_name, co_name, count in PROBES:
            target = baselines.get(target_name, fmax.frequency_ghz)
            co = baselines.get(co_name, fmax.frequency_ghz)
            run = engine.run(
                get_application(target_name),
                [get_application(co_name)] * count,
                pstate=fmax,
            )
            actuals.append(run.target.execution_time_s)
            exact.append(predictor.predict_time(target, [co] * count))
            cls = classify_intensity(co.memory_intensity)
            by_class.append(
                predict_time_from_classes(
                    predictor, class_profiles, target, [cls] * count
                )
            )
        return np.array(actuals), np.array(exact), np.array(by_class)

    actuals, exact, by_class = benchmark.pedantic(run_probe, rounds=1, iterations=1)
    exact_mpe = mpe(exact, actuals)
    class_mpe = mpe(by_class, actuals)
    emit(
        "ablation_classinfo",
        render_table(
            ["co-runner information", "probe MPE (%)"],
            [
                ["exact baseline profiles", exact_mpe],
                ["memory intensity class only", class_mpe],
            ],
            title="Ablation: exact vs class-only co-runner information, neural/F, E5649",
        ),
    )
    # Class-only mode degrades but stays usable — the paper's "good
    # enough predictions" claim.
    assert exact_mpe < class_mpe
    assert class_mpe < 15.0
