"""Section III-B — the PCA feature-ranking experiment.

"The eight features were chosen by performing a principal component
analysis (PCA) on the data collected from multicore processors ... PCA
allows all of the features that were gathered to be ranked according to
variance of their output."

This bench reruns that selection: PCA over everything the harness gathers
per observation — the eight Table I candidates plus the nuisance
observables a collector also has (frequency, a pure-noise column as a
control) — and emits the ranking.  The Table I features must rank above
the noise control.
"""

import numpy as np

from repro.core.features import Feature, feature_matrix
from repro.core.pca import rank_features
from repro.reporting.tables import render_table


def test_pca_feature_ranking(benchmark, ctx, emit):
    observations = list(ctx.dataset("e5649"))
    X, _y = feature_matrix(observations, tuple(Feature))
    freq = np.array([o.frequency_ghz for o in observations])
    rng = np.random.default_rng(8)
    noise = rng.normal(size=len(observations)) * 1e-9
    X_full = np.column_stack([X, freq, noise])
    names = [f.value for f in Feature] + ["frequency", "noise-control"]

    ranking = benchmark.pedantic(
        lambda: rank_features(X_full, names), rounds=3, iterations=1
    )
    emit(
        "pca_feature_ranking",
        render_table(
            ["rank", "observable", "PCA importance"],
            [[i + 1, name, score] for i, (name, score) in enumerate(ranking)],
            title="Section III-B: PCA ranking of gathered observables, E5649",
        ),
    )
    order = [name for name, _score in ranking]
    assert order[-1] == "noise-control"
    # Every Table I feature outranks the noise control.
    for f in Feature:
        assert order.index(f.value) < order.index("noise-control")
