"""Ablation — replacement-policy sensitivity of the contention physics.

The analytic models (and the stack-distance trace construction) assume
true LRU; hardware LLCs use approximations.  This bench measures the
miss-ratio curve of one LRU-friendly synthetic trace under LRU, tree-PLRU,
FIFO, and random replacement, quantifying how much of the substrate's
behaviour actually depends on the exact policy — tree-PLRU (the common
hardware choice) must track LRU closely in the fitting regime the models
operate in.
"""

import numpy as np

from repro.cache.reuse import ReuseProfile
from repro.cache.setassoc import ReplacementPolicy, measure_miss_ratio_curve
from repro.machine.processor import CacheGeometry
from repro.reporting.tables import render_table
from repro.workloads.tracegen import generate_trace

KB = 1024


def test_ablation_replacement_policy(benchmark, emit):
    profile = ReuseProfile.mixture(
        [(8 * KB, 0.6, 3.0), (48 * KB, 0.4, 3.0)], compulsory=0.02
    )
    rng = np.random.default_rng(5)
    trace = generate_trace(profile, 64, 150_000, rng)
    geo = CacheGeometry(size_bytes=64 * KB, line_bytes=64, associativity=8)
    caps = np.array([16, 32, 64, 128]) * float(KB)

    curves = {}
    for policy in ReplacementPolicy:
        curves[policy] = measure_miss_ratio_curve(
            trace, geo, caps, policy=policy, rng=np.random.default_rng(9)
        )

    benchmark.pedantic(
        lambda: measure_miss_ratio_curve(
            trace, geo, caps, policy=ReplacementPolicy.PLRU
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for i, cap in enumerate(caps):
        rows.append(
            [f"{cap / KB:.0f}KB"]
            + [float(curves[p].miss_ratios[i]) for p in ReplacementPolicy]
        )
    emit(
        "ablation_replacement",
        render_table(
            ["capacity"] + [p.value for p in ReplacementPolicy],
            rows,
            title="Ablation: miss ratio vs capacity by replacement policy",
        ),
    )
    lru = curves[ReplacementPolicy.LRU].miss_ratios
    plru = curves[ReplacementPolicy.PLRU].miss_ratios
    # The hardware approximation tracks the modeling assumption.
    np.testing.assert_allclose(plru, lru, atol=0.06)
    # All policies agree once everything fits.
    finals = [float(curves[p].miss_ratios[-1]) for p in ReplacementPolicy]
    assert max(finals) - min(finals) < 0.05
