"""Extension — what would LLC way-partitioning buy?

With a trained interference model in hand, the natural next question for
a resource manager is whether *isolation* (Intel-CAT-style way
partitioning) beats the shared free-for-all the paper measures.  This
bench runs the Table VI scenario (canneal + N cg on the 12-core Xeon)
under three regimes — shared LLC, equal partition, and a
victim-protecting partition — and reports the victim's and the
aggregate's outcomes.
"""

import numpy as np

from repro.cache.partition import equal_partition, protect_target_partition
from repro.reporting.tables import render_table
from repro.workloads.suite import get_application


def test_extension_way_partitioning(benchmark, ctx, emit):
    engine = ctx.engine("e5-2697v2")
    geo = engine.processor.llc
    canneal = get_application("canneal")
    cg = get_application("cg")
    base = engine.baseline(canneal).target.execution_time_s

    def sweep():
        rows = []
        for n in (2, 5, 8, 11):
            shared = engine.run(canneal, [cg] * n)
            equal = engine.run(
                canneal, [cg] * n,
                fixed_occupancies=equal_partition(n + 1, geo).occupancies_bytes(),
            )
            protect = engine.run(
                canneal, [cg] * n,
                fixed_occupancies=protect_target_partition(
                    n, geo, target_fraction=0.4
                ).occupancies_bytes(),
            )
            rows.append(
                [
                    n,
                    shared.target.execution_time_s / base,
                    equal.target.execution_time_s / base,
                    protect.target.execution_time_s / base,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "extension_partitioning",
        render_table(
            [
                "num cg",
                "victim slowdown, shared LLC",
                "victim slowdown, equal partition",
                "victim slowdown, 40% protected",
            ],
            rows,
            title="Extension: way-partitioning vs shared LLC (canneal + N x cg, E5-2697v2)",
        ),
    )
    slowdowns = np.array(rows, dtype=float)
    # Protection must beat sharing for the victim at high pressure, and
    # its benefit must grow with co-runner count.
    assert np.all(slowdowns[2:, 3] < slowdowns[2:, 1])
    gains = slowdowns[:, 1] - slowdowns[:, 3]
    assert gains[-1] > gains[0]
