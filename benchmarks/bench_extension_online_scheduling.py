"""Extension — online interference-aware scheduling of a job stream.

The paper's Section VI vision, end to end: jobs arrive over time at a
small cluster; an online policy that consults the trained co-location
model (baseline profiles only — never the simulator) is compared against
first-fit consolidation and least-loaded spreading on the stream's
measured outcomes.

The workload comes from :func:`repro.sched.queue.job_stream` — the same
pinned-seed arrival stream the scheduler-service bench replays, so the
offline simulator and the online service are exercised on identical
job mixes.
"""

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.machine import XEON_E5649
from repro.reporting.tables import render_table
from repro.sched.cluster import (
    ClusterSimulator,
    JobRequest,
    first_fit_policy,
    least_loaded_policy,
    model_driven_policy,
)
from repro.sched.queue import job_stream
from repro.workloads.suite import all_applications


def make_stream(n_jobs: int, seed: int = 12) -> list[JobRequest]:
    """The shared pinned-seed stream, shaped for the offline simulator."""
    return [
        JobRequest(app=app, arrival_s=round(arrival_s, 3), job_id=i)
        for i, (app, arrival_s) in enumerate(
            job_stream(list(all_applications()), n_jobs, seed=seed)
        )
    ]


def test_extension_online_scheduling(benchmark, ctx, emit):
    engine = ctx.engine("e5649")
    baselines = ctx.baselines("e5649")
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=4)
    predictor.fit(list(ctx.dataset("e5649")))

    names = ["node0", "node1", "node2"]
    engines = {n: engine for n in names}
    tables = {n: baselines for n in names}
    policies = {
        "first-fit (consolidate)": first_fit_policy,
        "least-loaded (spread)": least_loaded_policy,
        "model-driven": model_driven_policy(
            predictors={n: predictor for n in names},
            baselines=tables,
            machines={n: XEON_E5649 for n in names},
        ),
    }
    jobs = make_stream(30, seed=12)

    def sweep():
        rows = []
        for label, policy in policies.items():
            trace = ClusterSimulator(engines, tables, policy).run(jobs)
            rows.append(
                [
                    label,
                    trace.mean_slowdown,
                    trace.mean_response_s,
                    trace.makespan_s,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "extension_online_scheduling",
        render_table(
            ["policy", "mean slowdown", "mean response (s)", "makespan (s)"],
            rows,
            title="Extension: online scheduling of a 30-job stream, 3x E5649",
        ),
    )
    by_label = {r[0]: r for r in rows}
    aware = by_label["model-driven"]
    naive = by_label["first-fit (consolidate)"]
    # The model-driven policy reduces interference stretch on the
    # stream, and the saved stretch compounds into finishing the whole
    # stream earlier.
    assert aware[1] < naive[1]
    assert aware[3] < naive[3]
