"""Table II — the six nested model feature sets."""

from repro.harness.experiments import table2_rows
from repro.reporting.tables import render_table


def test_table2_feature_sets(benchmark, emit):
    rows = benchmark(table2_rows)
    emit(
        "table2_feature_sets",
        render_table(
            ["Set name", "feature groups within set"],
            rows,
            title="Table II: Sets of Model Feature Groups",
        ),
    )
    assert [r[0] for r in rows] == ["A", "B", "C", "D", "E", "F"]
