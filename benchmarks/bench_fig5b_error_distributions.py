"""Figure 5(b) — per-application percent error of the neural/F model."""

import numpy as np

from repro.harness.experiments import figure5b_errors
from repro.reporting.figures import render_distributions, summarize


def test_fig5b_error_distributions(benchmark, ctx, emit):
    ctx.dataset("e5649")
    errors = benchmark.pedantic(
        lambda: figure5b_errors(ctx, repetitions=10), rounds=1, iterations=1
    )
    summaries = [summarize(name, values) for name, values in errors.items()]
    emit(
        "fig5b_error_distributions",
        render_distributions(
            summaries,
            title="Figure 5(b): Neural/F Percent Error Distributions, Xeon E5649",
            unit="%",
        ),
    )
    pooled = np.concatenate(list(errors.values()))
    # Paper: errors centered at zero, majority within +/-2%, nearly all
    # within +/-5%.
    assert abs(float(np.median(pooled))) < 1.0
    within_5 = float(np.mean(np.abs(pooled) <= 5.0))
    assert within_5 > 0.90
