"""Ablation — how much of the residual error is the noise floor?

The testbed injects ~1% multiplicative measurement noise (matching the
paper's tight run-to-run spread).  A model cannot beat the noise on held
out data, so the neural/F "2% MPE" headline is part model error, part
noise floor.  This bench recollects the 6-core dataset at several noise
levels and locates the floor: at zero noise the model's own error is
exposed; at higher noise the test MPE tracks the injected level.
"""

import numpy as np

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, make_model
from repro.core.features import feature_matrix
from repro.core.validation import repeated_random_subsampling
from repro.harness.collection import collect_training_data
from repro.machine import XEON_E5649
from repro.reporting.tables import render_table
from repro.sim import SimulationEngine

SIGMAS = (0.0, 0.005, 0.01, 0.03)


def test_ablation_noise_floor(benchmark, ctx, emit):
    baselines = ctx.baselines("e5649")

    def sweep():
        rows = []
        for sigma in SIGMAS:
            engine = SimulationEngine(XEON_E5649, noise_sigma=sigma)
            dataset = collect_training_data(
                engine,
                baselines=baselines,
                rng=np.random.default_rng(77),
            )
            X, y = feature_matrix(list(dataset), FeatureSet.F.features)
            rng = np.random.default_rng(5)
            result = repeated_random_subsampling(
                lambda: make_model(ModelKind.NEURAL, FeatureSet.F, rng=rng),
                X,
                y,
                repetitions=5,
                rng=rng,
            )
            rows.append([sigma * 100.0, result.mean_test_mpe])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_noise",
        render_table(
            ["injected noise sigma (%)", "neural/F test MPE (%)"],
            rows,
            title="Ablation: measurement-noise floor, neural/F, E5649",
        ),
    )
    errors = {row[0]: row[1] for row in rows}
    # Test error grows with the noise level...
    values = [row[1] for row in rows]
    assert values == sorted(values)
    # ...the noise-free model error is well below the 1%-noise result...
    assert errors[0.0] < errors[1.0]
    # ...and at 3% noise the error is dominated by noise (>= ~2x the 1% case).
    assert errors[3.0] > errors[1.0] * 1.5
