"""Table VI — canneal under increasing cg co-location on the 12-core Xeon.

Reproduces the measured execution times, the normalized execution time
growth (paper: up to ~33% over the 220 s baseline; our simulated testbed
produces the same monotone-saturating shape at a somewhat larger factor),
and the feature-set-F linear vs neural model prediction errors per point —
the neural model tracks every point, the linear model drifts as the
nonlinearity grows.
"""

from repro.harness.experiments import table6_rows
from repro.reporting.tables import render_table


def test_table6_canneal_cg(benchmark, ctx, emit):
    # Warm the context caches outside the timed region: Table VI's cost is
    # the two model-F fits plus eleven scenario solves.
    ctx.dataset("e5-2697v2")
    rows = benchmark.pedantic(lambda: table6_rows(ctx), rounds=1, iterations=1)
    emit(
        "table6_canneal_cg",
        render_table(
            [
                "num cg co-located",
                "exec time (s)",
                "normalized exec time",
                "linear-F MPE (%)",
                "neural-F MPE (%)",
            ],
            rows,
            title="Table VI: canneal Degradation vs cg Co-Location (Xeon E5-2697v2)",
        ),
    )
    norms = [r[2] for r in rows]
    assert norms[-1] > 1.25
    import numpy as np

    assert np.mean([r[4] for r in rows]) < np.mean([r[3] for r in rows])
