"""Microbenchmark — span streaming must never tax the hot path.

Not a paper artifact; guards the contract the trace collector lives by:

* the **streaming-path** per-span cost — serializing a finished span and
  the non-blocking queue hand-off to the sender thread — scaled by the
  spans a traced collection sweep actually records, must stay under 2%
  of the untraced sweep's wall time (the same budget the disabled-path
  guard in ``bench_validation_throughput`` holds);
* at bench scale nothing is shed: every span the sweep streams arrives
  at the collector — sender queue drops, collector ring evictions, and
  fleet-reported drops are all zero.

Each run appends to ``results/BENCH_obs_streaming.json`` and leaves the
streamed multi-process fleet trace as both export formats —
``results/TRACE_collector.json`` (Chrome, Perfetto-loadable) and
``results/OTLP_collector.json`` (OTLP/JSON) — uploaded as CI artifacts.
"""

import json
import os
import time

from repro.harness.parallel import map_scenarios
from repro.machine import XEON_E5649
from repro.obs.collector import CollectorThread
from repro.obs.stream import SpanSender, StreamingTracer
from repro.obs.trace import disable, set_tracer
from repro.sim import SimulationEngine, SolveCache
from repro.workloads.suite import get_application

_SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

APPS = ("cg", "ep") if _SMOKE else ("canneal", "cg", "ep", "sp")
# Floor at 2: the whole point is the cross-process streaming path, and
# map_scenarios falls back to its serial (in-process) path at workers=1,
# which single-core CI runners would otherwise silently trigger.
WORKERS = max(2, min(os.cpu_count() or 1, 4))


def _record(results_dir, **values):
    path = results_dir / "BENCH_obs_streaming.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(values)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _solve_payload(engine, payload):
    app, pstate = payload
    return engine.run(app, (), pstate=pstate).target.execution_time_s


def _payloads(engine):
    apps = [get_application(name) for name in APPS]
    pstates = engine.processor.pstates
    if _SMOKE:
        pstates = pstates[:3]
    return [(app, pstate) for app in apps for pstate in pstates]


def _sweep(engine):
    start = time.perf_counter()
    results = map_scenarios(
        engine, _solve_payload, _payloads(engine), workers=WORKERS
    )
    return results, time.perf_counter() - start


def test_streaming_overhead_guard(results_dir):
    """Streaming spans to a collector must cost <2% of sweep wall time."""
    engine = SimulationEngine(XEON_E5649, cache=SolveCache())
    disable()
    baseline, disabled_s = _sweep(engine)

    collector = CollectorThread().start()
    tracer = StreamingTracer(
        SpanSender(collector.endpoint, resource={"service": "bench-collect"})
    )
    set_tracer(tracer)
    try:
        streamed, _streamed_s = _sweep(SimulationEngine(XEON_E5649, cache=SolveCache()))
        tracer.flush()
        span_count = collector.server.received
        # Streaming must observe the sweep, never perturb it.
        assert streamed == baseline, "streaming changed the sweep results"
        assert span_count > 0, "streamed sweep recorded no spans"
        # Nothing shed anywhere on the path at bench scale.
        assert tracer.sender.dropped == 0, "sender queue shed spans"
        assert tracer.sender.send_errors == 0, "span batches failed to send"
        assert collector.server.dropped == 0, "collector ring evicted spans"
        assert collector.server.client_dropped == 0, (
            "workers reported shedding spans"
        )
        # The fleet trace includes the worker processes' spans.
        services = {
            (record.get("resource") or {}).get("service")
            for record in collector.records()
        }
        assert "bench-collect-worker" in services, (
            f"worker spans missing from the collector (saw {services})"
        )
        chrome = collector.export_chrome(results_dir / "TRACE_collector.json")
        otlp = collector.export_otlp(results_dir / "OTLP_collector.json")
        assert chrome == otlp == len(collector.records())
    finally:
        disable()
        tracer.close()
        collector.stop()

    # A direct A/B wall-time diff drowns in noise at the 2% level, so
    # measure the streaming hot-path cost per span directly — serialize
    # plus the non-blocking enqueue, with a live sender draining to a
    # live collector — and scale it by the spans the sweep records.
    probe_collector = CollectorThread().start()
    probe = StreamingTracer(
        SpanSender(
            probe_collector.endpoint,
            resource={"service": "bench-probe"},
            max_queue=200_000,
        )
    )
    calls = 20_000 if _SMOKE else 50_000
    try:
        start = time.perf_counter()
        for _ in range(calls):
            with probe.span("bench.noop"):
                pass
        per_call_s = (time.perf_counter() - start) / calls
    finally:
        probe.close()
        probe_collector.stop()
    overhead_fraction = per_call_s * span_count / disabled_s

    print(
        f"\nuntraced sweep {disabled_s:6.2f} s   {span_count} spans when "
        f"streamed   streaming span {per_call_s * 1e6:.1f} us/call   "
        f"streaming-path overhead {100.0 * overhead_fraction:.4f}%"
    )
    _record(
        results_dir,
        workers=WORKERS,
        sweep_s=disabled_s,
        streamed_spans=span_count,
        streaming_span_us=per_call_s * 1e6,
        streaming_overhead_fraction=overhead_fraction,
    )
    assert overhead_fraction < 0.02, (
        f"streaming-path instrumentation overhead "
        f"{100.0 * overhead_fraction:.2f}% exceeds the 2% budget"
    )
