"""Quickstart: predict co-location slowdown on a simulated Xeon.

The end-to-end tour of the library in five steps:

1. pick a machine (the paper's 6-core Xeon E5649),
2. watch memory interference degrade a real workload,
3. collect baseline profiles and Table V training data,
4. train the paper's best model (neural network, feature set F), and
5. predict the execution time of placements the model never saw.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import FeatureSet, ModelKind, PerformancePredictor
from repro.harness import collect_baselines, collect_training_data
from repro.machine import XEON_E5649
from repro.sim import SimulationEngine
from repro.workloads import all_applications, get_application


def main() -> None:
    # -- 1. A machine and its simulator ---------------------------------
    engine = SimulationEngine(XEON_E5649)
    print(f"Machine: {engine.processor.name} "
          f"({engine.processor.num_cores} cores, "
          f"{engine.processor.llc.size_mb:.0f} MB shared L3)\n")

    # -- 2. Memory interference, observed --------------------------------
    canneal = get_application("canneal")  # memory-intensive (Class I)
    cg = get_application("cg")            # the most aggressive co-runner
    baseline = engine.baseline(canneal).target.execution_time_s
    print(f"canneal alone:            {baseline:7.1f} s")
    for n in (1, 3, 5):
        run = engine.run(canneal, [cg] * n)
        t = run.target.execution_time_s
        print(f"canneal + {n}x cg:          {t:7.1f} s  "
              f"({t / baseline:.2f}x baseline)")
    print()

    # -- 3. Baselines + training data (the Table V loop nest) -----------
    print("Collecting baselines (11 apps x 6 P-states) and training data...")
    baselines = collect_baselines(engine, all_applications())
    dataset = collect_training_data(
        engine, baselines=baselines, rng=np.random.default_rng(0)
    )
    print(f"  {len(dataset)} co-location observations collected\n")

    # -- 4. Train the paper's best model --------------------------------
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
    predictor.fit(list(dataset))
    print("Trained: neural network, feature set F "
          "(all eight Table I features)\n")

    # -- 5. Predict unseen placements ------------------------------------
    # Counts 2 and 4 are not in the 6-core training grid; 'canneal' was
    # never used as a co-runner.  The model only sees baseline profiles.
    fmax = engine.processor.pstates.fastest
    cases = [
        ("sp", "cg", 2),
        ("fluidanimate", "cg", 4),
        ("ep", "canneal", 3),
        ("streamcluster", "canneal", 5),
    ]
    print(f"{'placement':34s} {'predicted':>10s} {'actual':>10s} {'error':>7s}")
    for target_name, co_name, count in cases:
        target_base = baselines.get(target_name, fmax.frequency_ghz)
        co_base = baselines.get(co_name, fmax.frequency_ghz)
        predicted = predictor.predict_time(target_base, [co_base] * count)
        actual = engine.run(
            get_application(target_name), [get_application(co_name)] * count
        ).target.execution_time_s
        err = 100.0 * abs(predicted - actual) / actual
        label = f"{target_name} + {count}x {co_name}"
        print(f"{label:34s} {predicted:9.1f}s {actual:9.1f}s {err:6.2f}%")


if __name__ == "__main__":
    main()
