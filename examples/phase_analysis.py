"""Phase-level vs aggregate application behaviour.

The paper observes ([SaS13]) that applications move through memory-use
phases, but argues "going into such a level of detail is not necessary to
make accurate predictions".  This example tests that claim directly on
the simulator: a synthetic application with strongly distinct phases
(a memory-thrashing stage and a compute stage) is simulated phase-by-phase
and as its time-averaged aggregate, solo and under increasing co-location
pressure.

Run with:  python examples/phase_analysis.py
"""

from repro.cache import ReuseProfile
from repro.machine import XEON_E5649
from repro.sim import SimulationEngine
from repro.workloads import ApplicationPhase, PhasedApplication, get_application

MB = 1024.0 * 1024.0


def main() -> None:
    engine = SimulationEngine(XEON_E5649)

    # A bursty application: 40% of instructions thrash a 100 MB working
    # set, 60% crunch a cache-resident kernel.
    app = PhasedApplication(
        name="bursty-solver",
        suite="SYNTH",
        instructions=4e11,
        phases=(
            ApplicationPhase(
                fraction=0.4,
                base_cpi=0.9,
                accesses_per_instruction=0.015,
                reuse=ReuseProfile.mixture(
                    [(4 * MB, 0.4), (100 * MB, 0.6, 2.2)], compulsory=0.01
                ),
                mlp=1.6,
            ),
            ApplicationPhase(
                fraction=0.6,
                base_cpi=0.7,
                accesses_per_instruction=0.0008,
                reuse=ReuseProfile.single(0.8 * MB, compulsory=0.0002),
                mlp=1.1,
            ),
        ),
    )
    aggregate = app.aggregate()
    print("Application: bursty-solver (40% memory phase / 60% compute phase)")
    print(f"Aggregate description: CPI={aggregate.base_cpi:.2f}, "
          f"CA/INS={aggregate.accesses_per_instruction:.4f}, "
          f"MLP={aggregate.mlp:.2f}\n")

    cg = get_application("cg")
    print(f"{'scenario':16s} {'phase-accurate':>15s} {'aggregate':>11s} {'gap':>7s}")
    worst_gap = 0.0
    for n in (0, 1, 3, 5):
        exact = engine.run(app, [cg] * n).target.execution_time_s
        approx = engine.run(aggregate, [cg] * n).target.execution_time_s
        gap = 100.0 * abs(approx - exact) / exact
        worst_gap = max(worst_gap, gap)
        label = "solo" if n == 0 else f"+ {n}x cg"
        print(f"{label:16s} {exact:14.1f}s {approx:10.1f}s {gap:6.2f}%")

    print(f"\nWorst aggregate-vs-phase gap: {worst_gap:.2f}% — consistent "
          f"with the paper's finding that time-averaged counters are "
          f"sufficient input for co-location models.")


if __name__ == "__main__":
    main()
