"""Interference-aware scheduling: the paper's motivating application.

Section I: accurate co-location degradation predictions "may lead to
system performance improvement by more fully utilizing hardware and
thereby increasing opportunities for server consolidation".

This example schedules a batch of twelve jobs onto two 6-core Xeons with
four policies — naive packing, round-robin, an intensity heuristic, and
the model-driven interference-aware scheduler — then measures each
placement's *true* outcome on the simulator.

Run with:  python examples/interference_scheduler.py
"""

import numpy as np

from repro.core import FeatureSet, ModelKind, PerformancePredictor
from repro.harness import collect_baselines, collect_training_data
from repro.machine import XEON_E5649
from repro.sched import (
    evaluate_placement,
    interference_aware,
    pack_first,
    round_robin,
    spread_by_intensity,
)
from repro.sim import SimulationEngine
from repro.workloads import all_applications, get_application


def main() -> None:
    machine = XEON_E5649
    engine = SimulationEngine(machine)
    print(f"Cluster: 2x {machine.name} ({2 * machine.num_cores} cores total)\n")

    # One predictor per machine type, trained once from its Table V data.
    print("Training the co-location performance model...")
    baselines = collect_baselines(engine, all_applications())
    dataset = collect_training_data(
        engine, baselines=baselines, rng=np.random.default_rng(0)
    )
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
    predictor.fit(list(dataset))
    print(f"  trained on {len(dataset)} observations\n")

    # A mixed batch with a little slack (9 jobs on 12 cores): memory hogs,
    # middleweights, and CPU-bound jobs.
    job_names = [
        "cg", "canneal", "mg",            # Class I
        "sp",                             # Class II
        "fluidanimate", "lu",             # Class III
        "ep", "blackscholes", "bodytrack",  # Class IV
    ]
    jobs = [get_application(n) for n in job_names]
    print(f"Batch: {len(jobs)} jobs: {', '.join(job_names)}\n")

    machines = (machine, machine)
    engines = {machine.name: engine}
    tables = {machine.name: baselines}
    predictors = {machine.name: predictor}

    policies = {
        "pack-first (consolidate)": lambda: pack_first(jobs, machines),
        "round-robin": lambda: round_robin(jobs, machines),
        "spread-by-intensity": lambda: spread_by_intensity(jobs, machines),
        "interference-aware (model)": lambda: interference_aware(
            jobs, machines, predictors, tables
        ),
    }

    print(f"{'policy':28s} {'mean slowdown':>14s} {'worst':>7s} {'makespan':>10s}")
    results = {}
    for name, place in policies.items():
        outcome = evaluate_placement(place(), engines, tables)
        results[name] = outcome
        print(
            f"{name:28s} {outcome.mean_slowdown:13.3f}x "
            f"{outcome.worst_slowdown:6.2f}x {outcome.makespan_s:9.1f}s"
        )

    aware = results["interference-aware (model)"]
    packed = results["pack-first (consolidate)"]
    gain = (packed.mean_slowdown - aware.mean_slowdown) / packed.mean_slowdown
    print(
        f"\nModel-driven placement cuts mean slowdown by "
        f"{100 * gain:.1f}% versus naive consolidation."
    )


if __name__ == "__main__":
    main()
