"""Acting on predictions: uncertainty bands and a DVFS governor.

Two capabilities a production resource manager needs on top of the paper's
point predictions:

1. **Trust calibration** — a bootstrap ensemble reports how much the
   models *disagree* about each placement; disagreement spikes for
   placements far from the training distribution, flagging predictions
   that deserve a conservative fallback.
2. **Frequency selection** — the model-driven DVFS governor picks the
   P-state minimizing predicted energy (or EDP) under a deadline, pricing
   in both the DVFS stretch and the interference stretch.

Run with:  python examples/uncertainty_and_governor.py
"""

import numpy as np

from repro.core import EnsemblePredictor, FeatureSet, ModelKind, PerformancePredictor
from repro.counters import hpcrun_flat
from repro.energy import PowerModel
from repro.harness import collect_baselines, collect_training_data
from repro.machine import XEON_E5649
from repro.sched import GovernorObjective, select_pstate
from repro.sim import SimulationEngine
from repro.workloads import (
    MemoryIntensityClass,
    all_applications,
    generate_application,
)


def main() -> None:
    engine = SimulationEngine(XEON_E5649)
    print(f"Machine: {engine.processor.name}\n")

    print("Training the predictor and a 5-member bootstrap ensemble...")
    baselines = collect_baselines(engine, all_applications())
    dataset = collect_training_data(
        engine, baselines=baselines, rng=np.random.default_rng(0)
    )
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
    predictor.fit(list(dataset))
    ensemble = EnsemblePredictor(
        ModelKind.NEURAL, FeatureSet.F, n_members=5, seed=0
    )
    ensemble.fit(list(dataset))
    print(f"  trained on {len(dataset)} observations\n")

    # ---- 1. Uncertainty: familiar vs exotic placements -----------------
    fmax = engine.processor.pstates.fastest
    cg_base = baselines.get("cg", fmax.frequency_ghz)
    familiar = ensemble.predict_interval(
        baselines.get("canneal", fmax.frequency_ghz), [cg_base] * 3
    )
    synth = generate_application(
        MemoryIntensityClass.CLASS_I, np.random.default_rng(7),
        name="mystery-app",
    )
    synth_base = hpcrun_flat(engine, synth, pstate=fmax)
    exotic = ensemble.predict_interval(synth_base, [cg_base] * 5)

    print("Ensemble disagreement (trust signal):")
    for label, pi in (("canneal + 3x cg (familiar)", familiar),
                      ("mystery-app + 5x cg (never seen)", exotic)):
        lo, hi = pi.interval(2.0)
        print(f"  {label:34s} {pi.mean_s:6.1f}s  ±2σ=[{lo:6.1f}, {hi:6.1f}]  "
              f"spread={100 * pi.relative_spread:.2f}%")
    print(f"  -> the unseen placement carries "
          f"{exotic.relative_spread / familiar.relative_spread:.1f}x the "
          f"relative disagreement.\n")

    # ---- 2. The DVFS governor -------------------------------------------
    power = PowerModel(XEON_E5649)
    placement = ("canneal", ["cg"] * 3)
    print(f"Governor choices for canneal + 3x cg:")
    print(f"{'objective':26s} {'P-state':>8s} {'pred. time':>11s} "
          f"{'energy':>9s}")
    for objective in GovernorObjective:
        best, _ = select_pstate(
            predictor, power, baselines, placement[0], placement[1],
            objective=objective,
        )
        print(f"minimize {objective.value:17s} {best.pstate.frequency_ghz:7.2f}G "
              f"{best.predicted_time_s:10.1f}s "
              f"{best.predicted_energy_j / 3600.0:8.2f}Wh")

    deadline = 420.0
    best, _ = select_pstate(
        predictor, power, baselines, placement[0], placement[1],
        objective=GovernorObjective.ENERGY, deadline_s=deadline,
    )
    print(f"minimize energy, deadline {deadline:.0f}s -> "
          f"{best.pstate.frequency_ghz:.2f} GHz, "
          f"{best.predicted_time_s:.1f}s, "
          f"{best.predicted_energy_j / 3600.0:.2f}Wh")
    print("\nThe governor throttles as far as the deadline allows — the "
          "interference stretch is part of the prediction, so the same "
          "job gets a different frequency under different co-location.")


if __name__ == "__main__":
    main()
