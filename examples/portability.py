"""Portability: applying the methodology to a machine outside the catalog.

The paper's stated design goal (Section IV-A1) is a methodology "that
could be applied to a wide variety of computing systems".  This example
defines a machine the library has never seen — a hypothetical 10-core
part with a 20 MB LLC and a four-step DVFS ladder — and walks the whole
pipeline on it: baseline profiling, Table V-style collection (the harness
picks a sensible co-location grid automatically), the 12-model evaluation,
and a per-model accuracy report.

Run with:  python examples/portability.py
"""

import numpy as np

from repro.core import evaluate_models
from repro.harness import collect_baselines, collect_training_data, setup_for
from repro.machine import CacheGeometry, DRAMConfig, MulticoreProcessor, PStateLadder
from repro.reporting import render_table
from repro.sim import SimulationEngine
from repro.workloads import all_applications


def main() -> None:
    # ---- A machine the library has never seen --------------------------
    machine = MulticoreProcessor(
        name="Hypothetical 10-core",
        num_cores=10,
        llc=CacheGeometry(
            size_bytes=20 * 1024 * 1024, associativity=20, hit_latency_ns=16.0
        ),
        dram=DRAMConfig(idle_latency_ns=88.0, peak_bandwidth_gbs=24.0),
        pstates=PStateLadder.from_frequencies([3.0, 2.5, 2.0, 1.5]),
    )
    engine = SimulationEngine(machine)
    setup = setup_for(machine)
    print(f"Machine: {machine.name} ({machine.num_cores} cores, "
          f"{machine.llc.size_mb:.0f} MB LLC, "
          f"{len(machine.pstates)} P-states)")
    print(f"Auto-selected co-location counts: {setup.co_location_counts}\n")

    # ---- The same pipeline, untouched -----------------------------------
    print("Collecting baselines and training data...")
    baselines = collect_baselines(engine, all_applications())
    dataset = collect_training_data(
        engine, baselines=baselines, rng=np.random.default_rng(0)
    )
    print(f"  {len(dataset)} observations "
          f"({len(machine.pstates)} P-states x 11 targets x 4 co-apps x "
          f"{len(setup.co_location_counts)} counts)\n")

    print("Evaluating all 12 models (25 random 70/30 partitions each)...")
    evaluations = evaluate_models(list(dataset), repetitions=25, seed=0)

    rows = [
        [e.kind.value, e.feature_set.value,
         e.result.mean_test_mpe, e.result.mean_test_nrmse]
        for e in evaluations
    ]
    print()
    print(render_table(
        ["technique", "feature set", "test MPE (%)", "test NRMSE (%)"],
        rows,
        title=f"Model accuracy on {machine.name}",
    ))

    best = min(evaluations, key=lambda e: e.result.mean_test_mpe)
    print(f"\nBest model: {best.label} at "
          f"{best.result.mean_test_mpe:.2f}% MPE — the paper's conclusion "
          f"(neural + full features) ports to the new machine unchanged.")


if __name__ == "__main__":
    main()
