"""Energy modeling: the paper's Section VI extension, implemented.

"Having this methodology ... allows this work to lend itself very well to
being able to also include the ability to estimate the energy used by the
system ... as well as the increase in energy use that is caused by memory
interference."

This example trains the execution-time predictor, attaches a first-order
P-state power model, and answers two questions a resource manager faces:

* how much energy will this placement consume, and
* does DVFS throttling save energy once interference-stretched runtimes
  are accounted for?

Run with:  python examples/energy_modeling.py
"""

import numpy as np

from repro.core import FeatureSet, ModelKind, PerformancePredictor
from repro.energy import EnergyEstimate, PowerModel, interference_energy_cost
from repro.harness import collect_baselines, collect_training_data
from repro.machine import XEON_E5_2697V2
from repro.sim import SimulationEngine
from repro.workloads import all_applications, get_application


def main() -> None:
    machine = XEON_E5_2697V2
    engine = SimulationEngine(machine)
    power = PowerModel(machine)
    print(f"Machine: {machine.name}; power model: "
          f"{power.static_w_per_core:.1f} W leakage/core, "
          f"{power.uncore_w:.1f} W uncore\n")

    print("Training the execution-time predictor...")
    baselines = collect_baselines(engine, all_applications())
    dataset = collect_training_data(
        engine, baselines=baselines, rng=np.random.default_rng(0)
    )
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
    predictor.fit(list(dataset))
    print(f"  trained on {len(dataset)} observations\n")

    # ---- Predicted energy of co-located placements ---------------------
    target, co_app = "canneal", "cg"
    fmax = machine.pstates.fastest
    target_base = baselines.get(target, fmax.frequency_ghz)
    co_base = baselines.get(co_app, fmax.frequency_ghz)

    print(f"Energy of '{target}' placements at {fmax.frequency_ghz:.2f} GHz:")
    print(f"{'placement':22s} {'pred. time':>10s} {'chip power':>11s} "
          f"{'energy':>9s} {'interference cost':>18s}")
    for n in (0, 2, 4, 8, 11):
        active = 1 + n
        if n == 0:
            time_s = target_base.wall_time_s
        else:
            time_s = predictor.predict_time(target_base, [co_base] * n)
        chip_w = power.chip_power_w(fmax, active)
        est = EnergyEstimate(execution_time_s=time_s, chip_power_w=chip_w)
        cost = interference_energy_cost(
            power, fmax, target_base.wall_time_s, max(time_s, target_base.wall_time_s),
            active,
        )
        label = "solo" if n == 0 else f"+ {n}x {co_app}"
        print(f"{label:22s} {time_s:9.1f}s {chip_w:10.1f}W "
              f"{est.energy_wh:8.2f}Wh {cost / 3600.0:17.2f}Wh")

    # ---- DVFS: does throttling save energy under interference? ---------
    print("\nDVFS sweep for 'canneal' + 4x cg (predicted energy per P-state):")
    print(f"{'P-state':>8s} {'pred. time':>11s} {'chip power':>11s} {'energy':>9s}")
    best = None
    for pstate in machine.pstates:
        tb = baselines.get(target, pstate.frequency_ghz)
        cb = baselines.get(co_app, pstate.frequency_ghz)
        time_s = predictor.predict_time(tb, [cb] * 4)
        chip_w = power.chip_power_w(pstate, 5)
        est = EnergyEstimate(execution_time_s=time_s, chip_power_w=chip_w)
        marker = ""
        if best is None or est.energy_j < best[1].energy_j:
            best = (pstate, est)
        print(f"{pstate.frequency_ghz:7.2f}G {time_s:10.1f}s "
              f"{chip_w:10.1f}W {est.energy_wh:8.2f}Wh")
    pstate, est = best
    print(f"\nMinimum-energy P-state: {pstate.frequency_ghz:.2f} GHz "
          f"({est.energy_wh:.2f} Wh) — the time stretch from both DVFS and "
          f"interference is priced in by the model.")


if __name__ == "__main__":
    main()
