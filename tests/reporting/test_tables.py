"""Tests for ASCII table rendering."""

import pytest

from repro.reporting.tables import format_cell, render_table


class TestFormatCell:
    def test_int(self):
        assert format_cell(42) == "42"

    def test_float_normal(self):
        assert format_cell(2.5) == "2.500"

    def test_float_small_scientific(self):
        assert format_cell(5.1e-3) == "5.100e-03"

    def test_float_large_scientific(self):
        assert format_cell(3.2e9) == "3.200e+09"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_string_passthrough(self):
        assert format_cell("canneal (P)") == "canneal (P)"

    def test_bool_not_treated_as_int(self):
        assert format_cell(True) == "True"

    def test_precision(self):
        assert format_cell(1.23456, precision=1) == "1.2"


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["name", "n"], [["cg", 1], ["canneal", 12]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert lines[2].startswith("cg")
        # Columns aligned: header and rows share the separator position.
        sep = lines[0].index("|")
        assert lines[2].index("|") == sep

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_empty_rows_ok(self):
        out = render_table(["a", "b"], [])
        assert len(out.splitlines()) == 2

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(["a", "b"], [[1]])

    def test_no_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_doctest_example(self):
        out = render_table(["a", "b"], [[1, 2.5]])
        assert out == "a | b\n--+------\n1 | 2.500"
