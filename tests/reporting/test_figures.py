"""Tests for text figure rendering."""

import numpy as np
import pytest

from repro.reporting.figures import (
    render_distributions,
    render_series,
    summarize,
)


class TestRenderSeries:
    def test_basic(self):
        out = render_series(
            ["A", "B", "C"],
            {"linear test": np.array([8.0, 7.5, 6.5])},
            title="Fig 1",
        )
        lines = out.splitlines()
        assert lines[0] == "Fig 1"
        assert "A" in lines[1] and "C" in lines[1]
        assert "linear test" in lines[2]
        assert "8.00" in lines[2]

    def test_sparkbar_present(self):
        out = render_series(["A", "B"], {"s": np.array([1.0, 2.0])})
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_constant_series(self):
        out = render_series(["A", "B"], {"s": np.array([3.0, 3.0])})
        assert "3.00" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            render_series(["A"], {"s": np.array([1.0, 2.0])})

    def test_empty_inputs(self):
        with pytest.raises(ValueError):
            render_series([], {"s": np.array([])})
        with pytest.raises(ValueError):
            render_series(["A"], {})


class TestSummarize:
    def test_five_numbers(self):
        s = summarize("x", np.arange(1, 101, dtype=float))
        assert s.minimum == 1.0
        assert s.maximum == 100.0
        assert s.median == pytest.approx(50.5)
        assert s.q1 == pytest.approx(25.75)
        assert s.q3 == pytest.approx(75.25)
        assert s.count == 100

    def test_single_value(self):
        s = summarize("x", np.array([7.0]))
        assert s.minimum == s.median == s.maximum == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize("x", np.array([]))


class TestRenderDistributions:
    def test_layout(self, rng):
        summaries = [
            summarize("canneal", rng.normal(250, 20, 100)),
            summarize("ep", rng.normal(180, 5, 100)),
        ]
        out = render_distributions(summaries, title="Fig 5a", unit="s")
        lines = out.splitlines()
        assert lines[0] == "Fig 5a"
        assert "canneal" in out and "ep" in out
        assert "med=" in out and "IQR=" in out
        # Box characters rendered.
        assert "=" in out and "|" in out

    def test_degenerate_distribution(self):
        out = render_distributions([summarize("x", np.array([5.0, 5.0]))])
        assert "med=" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_distributions([])
