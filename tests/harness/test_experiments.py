"""Tests for the per-table/figure experiment drivers.

These use a low-repetition context: the drivers' correctness (shapes,
metadata, caching) is independent of the statistical repetition count; the
full-fidelity runs live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.harness.experiments import (
    ExperimentContext,
    figure5a_distributions,
    figure5b_errors,
    figure_series,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    table6_rows,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=1, repetitions=3)


class TestContext:
    def test_engine_cached(self, ctx):
        assert ctx.engine("e5649") is ctx.engine("e5649")

    def test_unknown_machine(self, ctx):
        with pytest.raises(KeyError, match="unknown machine"):
            ctx.engine("i7")

    def test_dataset_cached_and_sized(self, ctx):
        ds = ctx.dataset("e5649")
        assert ds is ctx.dataset("e5649")
        assert len(ds) == 1320


class TestStaticTables:
    def test_table1(self):
        rows = table1_rows()
        assert len(rows) == 8
        assert rows[0][0] == "baseExTime"

    def test_table2(self):
        rows = table2_rows()
        assert len(rows) == 6
        assert rows[0] == ["A", "baseExTime"]
        assert "targetCM/CA" in rows[5][1]

    def test_table4(self):
        rows = table4_rows()
        assert len(rows) == 2
        assert rows[0][1] == 6 and rows[1][1] == 12

    def test_table5(self):
        rows = table5_rows()
        assert len(rows) == 2
        assert "1, 2, 3, 4, 5" in rows[0][2]
        assert "1, 3, 5, 7, 9, 11" in rows[1][2]


class TestTable3(object):
    def test_rows(self, ctx):
        rows = table3_rows(ctx)
        assert len(rows) == 11
        names = [r[0] for r in rows]
        assert "cg (N)" in names and "canneal (P)" in names
        intensities = [r[1] for r in rows]
        assert max(intensities) / min(intensities) > 100.0
        classes = {r[2] for r in rows}
        assert classes == {"I", "II", "III", "IV"}


class TestTable6:
    def test_rows(self, ctx):
        rows = table6_rows(ctx)
        assert len(rows) == 11  # 1..11 cg co-runners
        counts = [r[0] for r in rows]
        assert counts == list(range(1, 12))
        norms = [r[2] for r in rows]
        # Degradation grows (allowing noise jitter) and is significant.
        assert norms[-1] > norms[0]
        assert norms[-1] > 1.2
        # The neural model-F beats the linear model-F on average.
        lin = np.mean([r[3] for r in rows])
        nn = np.mean([r[4] for r in rows])
        assert nn < lin


class TestFigureSeries:
    def test_series_layout(self, ctx):
        labels, series = figure_series(ctx, "e5649", "mpe")
        assert labels == [fs.value for fs in FeatureSet]
        assert set(series) == {
            "linear train",
            "linear test",
            "neural train",
            "neural test",
        }
        for vals in series.values():
            assert vals.shape == (6,)
            assert np.all(vals >= 0.0)

    def test_metric_validation(self, ctx):
        with pytest.raises(ValueError, match="metric"):
            figure_series(ctx, "e5649", "mape")

    def test_neural_f_beats_linear_f(self, ctx):
        _labels, series = figure_series(ctx, "e5649", "mpe")
        assert series["neural test"][-1] < series["linear test"][-1]


class TestFigure5:
    def test_5a_distributions(self, ctx):
        dists = figure5a_distributions(ctx)
        assert len(dists) == 11
        for values in dists.values():
            # 6 pstates x 4 co-apps x 5 counts per target
            assert values.size == 120
            assert np.all(values > 0.0)

    def test_5b_errors_centered(self, ctx):
        errors = figure5b_errors(ctx, repetitions=2)
        assert len(errors) == 11
        pooled = np.concatenate(list(errors.values()))
        assert abs(np.median(pooled)) < 5.0
