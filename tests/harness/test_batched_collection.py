"""Batched collection: datasets identical for any batching/worker setting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.baselines import collect_baselines
from repro.harness.collection import (
    collect_random_training_data,
    collect_training_data,
)
from repro.harness.parallel import map_scenario_batches
from repro.machine import XEON_E5649
from repro.sim import SimulationEngine, SolveCache
from repro.workloads import get_application

TARGETS = ("canneal", "sp", "ep")
CO_APPS = ("cg", "ep")


def _collect(batch_solve: bool, workers: int = 1):
    engine = SimulationEngine(XEON_E5649, cache=SolveCache())
    dataset = collect_training_data(
        engine,
        targets=[get_application(n) for n in TARGETS],
        co_apps=[get_application(n) for n in CO_APPS],
        counts=(1, 3),
        rng=np.random.default_rng(11),
        workers=workers,
        batch_solve=batch_solve,
    )
    return engine, [o.actual_time_s for o in dataset.observations]


def test_batched_collection_bit_identical_to_serial():
    _, serial = _collect(batch_solve=False)
    engine, batched = _collect(batch_solve=True)
    assert serial == batched
    assert engine.stats.batches > 0
    assert engine.stats.batched_scenarios >= len(batched)


def test_batched_collection_bit_identical_across_workers():
    _, one = _collect(batch_solve=True, workers=1)
    _, four = _collect(batch_solve=True, workers=4)
    assert one == four


def test_random_collection_bit_identical_batched_vs_serial():
    def rnd(batch_solve):
        engine = SimulationEngine(XEON_E5649, cache=SolveCache())
        dataset = collect_random_training_data(
            engine,
            30,
            targets=[get_application(n) for n in TARGETS],
            co_apps=[get_application(n) for n in CO_APPS],
            rng=np.random.default_rng(7),
            batch_solve=batch_solve,
        )
        return [o.actual_time_s for o in dataset.observations]

    assert rnd(False) == rnd(True)


def test_baselines_bit_identical_batched_vs_serial():
    apps = [get_application(n) for n in ("cg", "canneal", "ep")]
    serial = collect_baselines(
        SimulationEngine(XEON_E5649), apps, batch_solve=False
    )
    batched = collect_baselines(
        SimulationEngine(XEON_E5649), apps, batch_solve=True
    )
    assert serial.profiles.keys() == batched.profiles.keys()
    for key, profile in serial.profiles.items():
        other = batched.profiles[key]
        assert profile.wall_time_s == other.wall_time_s
        assert profile.counts == other.counts


def test_warm_cache_collection_does_zero_solves():
    """A cache-warm second collection is pure lookups: no fixed point runs."""
    engine = SimulationEngine(XEON_E5649, cache=SolveCache())
    kwargs = dict(
        targets=[get_application(n) for n in TARGETS],
        co_apps=[get_application(n) for n in CO_APPS],
        counts=(1, 3),
    )
    first = collect_training_data(
        engine, rng=np.random.default_rng(11), **kwargs
    )
    solves = engine.stats.solves
    iteration_counts = dict(engine.stats.iteration_counts)
    second = collect_training_data(
        engine, rng=np.random.default_rng(11), **kwargs
    )
    assert engine.stats.solves == solves
    assert engine.stats.iteration_counts == iteration_counts
    times_first = [o.actual_time_s for o in first.observations]
    times_second = [o.actual_time_s for o in second.observations]
    assert times_first == times_second


def test_map_scenario_batches_orders_and_chunks():
    engine = SimulationEngine(XEON_E5649)

    def double_all(_engine, payloads):
        return [2 * p for p in payloads]

    payloads = list(range(23))
    assert map_scenario_batches(engine, double_all, payloads) == [
        2 * p for p in payloads
    ]
    assert map_scenario_batches(engine, double_all, []) == []
    with pytest.raises(ValueError, match="workers"):
        map_scenario_batches(engine, double_all, payloads, workers=0)
