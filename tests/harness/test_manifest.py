"""Tests for dataset provenance manifests."""

import pytest

from repro.harness.manifest import (
    DatasetManifest,
    manifest_path_for,
    read_manifest,
    write_manifest,
)


class TestDescribe:
    def test_contents_summarized(self, small_dataset):
        manifest = DatasetManifest.describe(small_dataset, seed=7)
        assert manifest.processor_name == "Xeon E5649"
        assert manifest.num_observations == len(small_dataset)
        assert manifest.seed == 7
        assert set(manifest.targets) == {"canneal", "sp", "fluidanimate", "ep"}
        assert set(manifest.co_apps) == {"cg", "ep"}
        assert manifest.co_location_counts == (1, 3, 5)
        assert len(manifest.frequencies_ghz) == 6
        assert manifest.library_version

    def test_digest_matches_dataset(self, small_dataset):
        manifest = DatasetManifest.describe(small_dataset)
        assert manifest.matches(small_dataset)

    def test_digest_detects_drift(self, small_dataset):
        import dataclasses

        manifest = DatasetManifest.describe(small_dataset)
        from repro.harness.datasets import ObservationDataset

        tampered = ObservationDataset(
            small_dataset.processor_name,
            [
                dataclasses.replace(
                    small_dataset.observations[0], actual_time_s=999.0
                )
            ]
            + small_dataset.observations[1:],
        )
        assert not manifest.matches(tampered)


class TestSerialization:
    def test_json_roundtrip(self, small_dataset):
        manifest = DatasetManifest.describe(small_dataset, seed=3, notes="test")
        restored = DatasetManifest.from_json(manifest.to_json())
        assert restored == manifest

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            DatasetManifest.from_json("{")

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            DatasetManifest.from_json('{"processor_name": "x"}')

    def test_null_seed_roundtrips(self, small_dataset):
        manifest = DatasetManifest.describe(small_dataset)  # seed=None
        restored = DatasetManifest.from_json(manifest.to_json())
        assert restored.seed is None


class TestSidecars:
    def test_path_convention(self):
        assert manifest_path_for("/x/data.csv").name == "data.manifest.json"

    def test_write_read_roundtrip(self, small_dataset, tmp_path):
        csv_path = tmp_path / "train.csv"
        small_dataset.to_csv(csv_path)
        written = write_manifest(small_dataset, csv_path, seed=11)
        restored = read_manifest(csv_path)
        assert restored == written
        assert restored.matches(small_dataset)

    def test_missing_sidecar(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_manifest(tmp_path / "absent.csv")

    def test_end_to_end_verification(self, small_dataset, tmp_path):
        """The intended workflow: write CSV + manifest, reload, verify."""
        from repro.harness.datasets import ObservationDataset

        csv_path = tmp_path / "train.csv"
        small_dataset.to_csv(csv_path)
        write_manifest(small_dataset, csv_path, seed=0)
        reloaded = ObservationDataset.from_csv(csv_path)
        manifest = read_manifest(csv_path)
        assert manifest.matches(reloaded)
