"""Provenance verification on dataset load (check + CLI policy flag)."""

import pytest

from repro.cli import main
from repro.harness.datasets import ObservationDataset
from repro.harness.manifest import (
    check_dataset_manifest,
    manifest_path_for,
    write_manifest,
)


@pytest.fixture
def csv_with_manifest(tmp_path, small_dataset):
    path = tmp_path / "data.csv"
    small_dataset.to_csv(path)
    write_manifest(small_dataset, path, seed=42)
    return path


class TestCheckDatasetManifest:
    def test_clean_dataset_has_no_problems(self, csv_with_manifest):
        dataset = ObservationDataset.from_csv(csv_with_manifest)
        assert check_dataset_manifest(dataset, csv_with_manifest) == []

    def test_missing_sidecar(self, tmp_path, small_dataset):
        path = tmp_path / "bare.csv"
        small_dataset.to_csv(path)
        dataset = ObservationDataset.from_csv(path)
        problems = check_dataset_manifest(dataset, path)
        assert len(problems) == 1
        assert "no provenance manifest" in problems[0]

    def test_malformed_sidecar(self, csv_with_manifest):
        manifest_path_for(csv_with_manifest).write_text("{broken")
        dataset = ObservationDataset.from_csv(csv_with_manifest)
        problems = check_dataset_manifest(dataset, csv_with_manifest)
        assert len(problems) == 1
        assert "unreadable" in problems[0]

    def test_content_mismatch_detected(self, csv_with_manifest):
        # Tamper with one observation's time field.
        lines = csv_with_manifest.read_text().splitlines()
        cols = lines[1].split(",")
        cols[-1] = repr(float(cols[-1]) * 2)
        lines[1] = ",".join(cols)
        csv_with_manifest.write_text("\n".join(lines) + "\n")
        dataset = ObservationDataset.from_csv(csv_with_manifest)
        problems = check_dataset_manifest(dataset, csv_with_manifest)
        assert any("does not match its manifest" in p for p in problems)

    def test_truncation_detected(self, csv_with_manifest):
        lines = csv_with_manifest.read_text().splitlines()
        csv_with_manifest.write_text("\n".join(lines[:-1]) + "\n")
        dataset = ObservationDataset.from_csv(csv_with_manifest)
        problems = check_dataset_manifest(dataset, csv_with_manifest)
        assert any("observations" in p for p in problems)


class TestCLIVerifyPolicy:
    def _train_args(self, csv_path, tmp_path, mode=None):
        args = [
            "train", "--data", str(csv_path), "--model", "linear",
            "-o", str(tmp_path / "model.json"),
        ]
        if mode:
            args += ["--verify-manifest", mode]
        return args

    def test_clean_dataset_trains_silently(
        self, csv_with_manifest, tmp_path, capsys
    ):
        assert main(self._train_args(csv_with_manifest, tmp_path)) == 0
        assert "warning" not in capsys.readouterr().err

    def test_warn_is_default(self, tmp_path, small_dataset, capsys):
        path = tmp_path / "bare.csv"
        small_dataset.to_csv(path)
        assert main(self._train_args(path, tmp_path)) == 0
        err = capsys.readouterr().err
        assert "warning" in err and "no provenance manifest" in err

    def test_strict_fails_on_problems(self, tmp_path, small_dataset):
        path = tmp_path / "bare.csv"
        small_dataset.to_csv(path)
        with pytest.raises(SystemExit, match="verification failed"):
            main(self._train_args(path, tmp_path, mode="strict"))

    def test_strict_passes_clean_dataset(self, csv_with_manifest, tmp_path):
        assert main(
            self._train_args(csv_with_manifest, tmp_path, mode="strict")
        ) == 0

    def test_skip_suppresses_warnings(self, tmp_path, small_dataset, capsys):
        path = tmp_path / "bare.csv"
        small_dataset.to_csv(path)
        assert main(self._train_args(path, tmp_path, mode="skip")) == 0
        assert "warning" not in capsys.readouterr().err

    def test_evaluate_strict_fails_on_tampered_data(
        self, csv_with_manifest, tmp_path
    ):
        lines = csv_with_manifest.read_text().splitlines()
        cols = lines[1].split(",")
        cols[-1] = repr(float(cols[-1]) * 2)
        lines[1] = ",".join(cols)
        csv_with_manifest.write_text("\n".join(lines) + "\n")
        with pytest.raises(SystemExit, match="verification failed"):
            main([
                "evaluate", "--data", str(csv_with_manifest),
                "--repetitions", "1", "--verify-manifest", "strict",
            ])

    def test_evaluate_warn_still_runs(
        self, csv_with_manifest, tmp_path, capsys
    ):
        manifest_path_for(csv_with_manifest).unlink()
        assert main([
            "evaluate", "--data", str(csv_with_manifest),
            "--repetitions", "1",
        ]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "Model accuracy" in captured.out
