"""Tests for the deterministic process-pool collection scaffolding."""

import numpy as np
import pytest

from repro.harness.parallel import map_scenarios, spawn_streams
from repro.machine import XEON_E5649
from repro.sim import SimulationEngine, SolveCache
from repro.workloads.suite import get_application


class _LegacyRng:
    """A generator stand-in whose bit generator cannot spawn children."""

    def __init__(self, seed):
        self._rng = np.random.default_rng(seed)

    def spawn(self, n):
        raise TypeError("underlying bit generator has no seed sequence")

    def integers(self, *args, **kwargs):
        return self._rng.integers(*args, **kwargs)


class TestSpawnStreams:
    def test_children_keyed_by_index_not_draw_position(self):
        """Drawing from the root must not shift the children."""
        undisturbed = spawn_streams(np.random.default_rng(11), 3)
        root = np.random.default_rng(11)
        root.normal(size=100)  # draws advance state, not the spawn counter
        disturbed = spawn_streams(root, 3)
        for a, b in zip(undisturbed, disturbed):
            assert a.normal() == b.normal()

    def test_children_mutually_independent(self):
        a, b = spawn_streams(np.random.default_rng(0), 2)
        assert a.normal() != b.normal()

    def test_seed_sequence_fallback(self):
        first = spawn_streams(_LegacyRng(3), 2)
        second = spawn_streams(_LegacyRng(3), 2)
        for a, b in zip(first, second):
            assert a.normal() == b.normal()

    def test_validation_and_empty(self):
        assert spawn_streams(np.random.default_rng(0), 0) == []
        with pytest.raises(ValueError, match="negative"):
            spawn_streams(np.random.default_rng(0), -1)


def _solve_payload(engine, payload):
    app, pstate = payload
    return engine.run(app, (), pstate=pstate).target.execution_time_s


class TestMapScenarios:
    def payloads(self, engine):
        apps = [get_application(n) for n in ("canneal", "cg", "ep", "sp")]
        return [(app, pstate) for app in apps for pstate in engine.processor.pstates]

    def test_results_in_payload_order(self, engine_6core):
        payloads = self.payloads(engine_6core)
        serial = map_scenarios(engine_6core, _solve_payload, payloads)
        parallel = map_scenarios(
            engine_6core, _solve_payload, payloads, workers=3
        )
        assert serial == parallel

    def test_worker_stats_merged_back(self):
        engine = SimulationEngine(XEON_E5649, cache=SolveCache())
        payloads = self.payloads(engine)
        map_scenarios(engine, _solve_payload, payloads, workers=2)
        assert engine.stats.requests == len(payloads)

    def test_workers_validated(self, engine_6core):
        with pytest.raises(ValueError, match="workers"):
            map_scenarios(engine_6core, _solve_payload, [], workers=0)
