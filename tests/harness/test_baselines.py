"""Tests for baseline collection."""

import numpy as np
import pytest

from repro.harness.baselines import BaselineTable, collect_baselines
from repro.workloads.suite import all_applications, get_application


class TestBaselineTable:
    def test_collects_all_apps_all_pstates(self, baselines_6core, engine_6core):
        n_apps = len(all_applications())
        n_pstates = len(engine_6core.processor.pstates)
        assert len(baselines_6core.profiles) == n_apps * n_pstates

    def test_get(self, baselines_6core):
        profile = baselines_6core.get("canneal", 2.53)
        assert profile.app_name == "canneal"
        assert profile.frequency_ghz == pytest.approx(2.53)

    def test_get_missing_app(self, baselines_6core):
        with pytest.raises(KeyError, match="no baseline"):
            baselines_6core.get("doom", 2.53)

    def test_get_missing_frequency(self, baselines_6core):
        with pytest.raises(KeyError, match="no baseline"):
            baselines_6core.get("canneal", 9.99)

    def test_base_ex_times_all_pstates(self, baselines_6core, engine_6core):
        """Table I: baseline execution time at all P-states."""
        times = baselines_6core.base_ex_times("canneal")
        freqs = list(times)
        assert freqs == sorted(freqs, reverse=True)
        assert len(times) == len(engine_6core.processor.pstates)
        # Slower P-state, longer time.
        values = list(times.values())
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_base_ex_times_unknown_app(self, baselines_6core):
        with pytest.raises(KeyError):
            baselines_6core.base_ex_times("doom")

    def test_app_names(self, baselines_6core):
        assert baselines_6core.app_names() == sorted(
            a.name for a in all_applications()
        )

    def test_duplicate_rejected(self, engine_6core):
        table = collect_baselines(engine_6core, [get_application("ep")])
        from repro.counters.hpcrun import hpcrun_flat

        dup = hpcrun_flat(engine_6core, get_application("ep"))
        with pytest.raises(ValueError, match="duplicate"):
            table.add(dup)

    def test_wrong_machine_rejected(self, engine_12core, baselines_6core):
        from repro.counters.hpcrun import hpcrun_flat

        other = hpcrun_flat(engine_12core, get_application("ep"))
        with pytest.raises(ValueError, match="table"):
            baselines_6core.add(other)

    def test_baselines_are_noise_free_by_default(self, engine_6core):
        t1 = collect_baselines(engine_6core, [get_application("lu")])
        t2 = collect_baselines(engine_6core, [get_application("lu")])
        assert (
            t1.get("lu", 2.53).wall_time_s == t2.get("lu", 2.53).wall_time_s
        )


class TestParallelBaselines:
    def test_parallel_table_identical(self, engine_6core):
        apps = [get_application(n) for n in ("canneal", "cg", "ep")]
        serial = collect_baselines(engine_6core, apps)
        parallel = collect_baselines(engine_6core, apps, workers=2)
        assert serial.profiles.keys() == parallel.profiles.keys()
        for key in serial.profiles:
            assert (
                serial.profiles[key].wall_time_s
                == parallel.profiles[key].wall_time_s
            )

    def test_parallel_noisy_table_identical(self, engine_6core):
        apps = [get_application(n) for n in ("canneal", "cg")]
        serial = collect_baselines(
            engine_6core, apps, rng=np.random.default_rng(4)
        )
        parallel = collect_baselines(
            engine_6core, apps, rng=np.random.default_rng(4), workers=2
        )
        for key in serial.profiles:
            assert (
                serial.profiles[key].wall_time_s
                == parallel.profiles[key].wall_time_s
            )
