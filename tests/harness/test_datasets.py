"""Tests for observation datasets and CSV persistence."""

import numpy as np
import pytest

from repro.core.features import CoLocationObservation
from repro.harness.datasets import ObservationDataset


def make_obs(processor="M", target="canneal", co_app="cg", freq=2.53, n=2, t=250.0):
    return CoLocationObservation(
        processor_name=processor,
        frequency_ghz=freq,
        target_name=target,
        co_app_name=co_app if n else None,
        base_ex_time_s=200.0,
        num_co_app=n,
        co_app_mem=0.01 * n,
        target_mem=0.005,
        co_app_cm_ca=0.8 * n,
        co_app_ca_ins=0.02 * n,
        target_cm_ca=0.6,
        target_ca_ins=0.0085,
        actual_time_s=t,
    )


class TestDataset:
    def test_add_and_len(self):
        ds = ObservationDataset("M")
        ds.add(make_obs())
        ds.extend([make_obs(t=260.0), make_obs(t=270.0)])
        assert len(ds) == 3

    def test_machine_tag_enforced(self):
        ds = ObservationDataset("M")
        with pytest.raises(ValueError, match="dataset"):
            ds.add(make_obs(processor="other"))

    def test_constructor_checks_tags(self):
        with pytest.raises(ValueError):
            ObservationDataset("M", [make_obs(processor="other")])

    def test_iteration(self):
        obs = [make_obs(t=250.0 + i) for i in range(3)]
        ds = ObservationDataset("M", obs)
        assert list(ds) == obs

    def test_actual_times(self):
        ds = ObservationDataset("M", [make_obs(t=100.0), make_obs(t=300.0)])
        np.testing.assert_allclose(ds.actual_times(), [100.0, 300.0])

    def test_target_names_first_seen_order(self):
        ds = ObservationDataset(
            "M",
            [make_obs(target="b"), make_obs(target="a"), make_obs(target="b")],
        )
        assert ds.target_names() == ["b", "a"]


class TestFilter:
    @pytest.fixture
    def dataset(self):
        return ObservationDataset(
            "M",
            [
                make_obs(target="canneal", co_app="cg", freq=2.53, n=1),
                make_obs(target="canneal", co_app="cg", freq=2.53, n=3),
                make_obs(target="canneal", co_app="ep", freq=2.53, n=1),
                make_obs(target="sp", co_app="cg", freq=1.60, n=1),
            ],
        )

    def test_filter_by_target(self, dataset):
        assert len(dataset.filter(target_name="canneal")) == 3

    def test_filter_by_co_app(self, dataset):
        assert len(dataset.filter(co_app_name="ep")) == 1

    def test_filter_by_frequency(self, dataset):
        assert len(dataset.filter(frequency_ghz=1.60)) == 1

    def test_filter_by_count(self, dataset):
        assert len(dataset.filter(num_co_app=1)) == 3

    def test_combined_filters(self, dataset):
        sub = dataset.filter(target_name="canneal", co_app_name="cg", num_co_app=3)
        assert len(sub) == 1

    def test_filter_returns_dataset(self, dataset):
        sub = dataset.filter(target_name="sp")
        assert isinstance(sub, ObservationDataset)
        assert sub.processor_name == "M"


class TestCSVRoundtrip:
    def test_roundtrip_string(self):
        ds = ObservationDataset(
            "M", [make_obs(t=251.5), make_obs(n=0, co_app=None, t=200.0)]
        )
        restored = ObservationDataset.from_csv_string(ds.to_csv_string())
        assert restored.processor_name == "M"
        assert list(restored) == list(ds)

    def test_roundtrip_file(self, tmp_path):
        ds = ObservationDataset("M", [make_obs(t=260.25)])
        path = tmp_path / "data.csv"
        ds.to_csv(path)
        restored = ObservationDataset.from_csv(path)
        assert list(restored) == list(ds)

    def test_float_precision_preserved(self):
        ds = ObservationDataset("M", [make_obs(t=1.0 / 3.0 * 700)])
        restored = ObservationDataset.from_csv_string(ds.to_csv_string())
        assert restored.observations[0].actual_time_s == ds.observations[0].actual_time_s

    def test_empty_csv_rejected(self):
        header_only = (
            "processor_name,frequency_ghz,target_name,co_app_name,"
            "base_ex_time_s,num_co_app,co_app_mem,target_mem,co_app_cm_ca,"
            "co_app_ca_ins,target_cm_ca,target_ca_ins,actual_time_s\n"
        )
        with pytest.raises(ValueError, match="no observations"):
            ObservationDataset.from_csv_string(header_only)

    def test_bad_columns_rejected(self):
        with pytest.raises(ValueError, match="unexpected CSV columns"):
            ObservationDataset.from_csv_string("a,b,c\n1,2,3\n")
