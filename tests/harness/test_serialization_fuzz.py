"""Property-based fuzzing of the serialization boundaries.

The CSV dataset format, the JSON model format, and the manifest format are
the library's interchange points with the outside world; hypothesis
generates adversarial-ish content to check that round trips are exact and
that malformed input always fails with the documented exception types
(never an uncontrolled crash or silent corruption).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.features import CoLocationObservation
from repro.core.persistence import PersistenceError, predictor_from_dict
from repro.harness.datasets import ObservationDataset
from repro.harness.manifest import DatasetManifest

finite_positive = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)
finite_ratio = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
safe_name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-_."),
    min_size=1,
    max_size=24,
)


@st.composite
def observations(draw):
    n_co = draw(st.integers(min_value=0, max_value=11))
    return CoLocationObservation(
        processor_name=draw(safe_name),
        frequency_ghz=draw(finite_positive),
        target_name=draw(safe_name),
        co_app_name=draw(safe_name) if n_co else None,
        base_ex_time_s=draw(finite_positive),
        num_co_app=n_co,
        co_app_mem=draw(finite_ratio),
        target_mem=draw(finite_ratio),
        co_app_cm_ca=draw(finite_ratio),
        co_app_ca_ins=draw(finite_ratio),
        target_cm_ca=draw(finite_ratio),
        target_ca_ins=draw(finite_ratio),
        actual_time_s=draw(finite_positive),
    )


class TestCSVFuzz:
    @given(obs_list=st.lists(observations(), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_csv_roundtrip_exact(self, obs_list):
        machine = obs_list[0].processor_name
        import dataclasses

        aligned = [
            dataclasses.replace(o, processor_name=machine) for o in obs_list
        ]
        ds = ObservationDataset(machine, aligned)
        restored = ObservationDataset.from_csv_string(ds.to_csv_string())
        assert list(restored) == aligned

    @given(obs=observations())
    @settings(max_examples=40, deadline=None)
    def test_manifest_roundtrip_and_digest(self, obs):
        ds = ObservationDataset(obs.processor_name, [obs])
        manifest = DatasetManifest.describe(ds, seed=1)
        restored = DatasetManifest.from_json(manifest.to_json())
        assert restored == manifest
        assert restored.matches(ds)

    @given(garbage=st.text(max_size=200))
    @settings(max_examples=40)
    def test_csv_garbage_never_crashes_uncontrolled(self, garbage):
        try:
            ObservationDataset.from_csv_string(garbage)
        except ValueError:
            pass  # the documented failure mode

    @given(garbage=st.text(max_size=200))
    @settings(max_examples=40)
    def test_manifest_garbage_raises_value_error(self, garbage):
        try:
            DatasetManifest.from_json(garbage)
        except ValueError:
            pass


class TestModelPayloadFuzz:
    @given(
        payload=st.dictionaries(
            st.sampled_from(
                ["format_version", "kind", "feature_set", "model",
                 "processor_name", "extra"]
            ),
            st.one_of(
                st.none(),
                st.integers(min_value=-5, max_value=5),
                st.text(max_size=8),
                st.dictionaries(st.text(max_size=5), st.integers(), max_size=3),
            ),
            max_size=6,
        )
    )
    @settings(max_examples=60)
    def test_arbitrary_dicts_raise_persistence_error(self, payload):
        """No generated payload may load successfully or crash with
        anything other than PersistenceError."""
        with pytest.raises(PersistenceError):
            predictor_from_dict(payload)

    def test_nearly_valid_payload_with_nan_weights(self, small_dataset):
        """NaN weights survive JSON as null -> must be rejected, not
        silently loaded."""
        from repro.core.feature_sets import FeatureSet
        from repro.core.methodology import ModelKind, PerformancePredictor
        from repro.core.persistence import predictor_to_dict

        predictor = PerformancePredictor(ModelKind.LINEAR, FeatureSet.B)
        predictor.fit(list(small_dataset))
        data = predictor_to_dict(predictor)
        data["model"]["weights"] = [None, None]
        text = json.dumps(data)  # stays valid JSON
        loaded = json.loads(text)
        restored = predictor_from_dict(loaded)
        # numpy turns None into nan; predictions must not silently look
        # plausible — they are nan, which predict_observations exposes.
        preds = restored.predict_observations(list(small_dataset))
        assert np.all(np.isnan(preds))
