"""Tests for training data collection (Table V loop nest)."""

import numpy as np
import pytest

from repro.harness.collection import (
    TRAINING_SETUPS,
    TrainingSetup,
    collect_random_training_data,
    collect_training_data,
    setup_for,
)
from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.machine.processor import CacheGeometry, DRAMConfig, MulticoreProcessor
from repro.machine.pstates import PStateLadder
from repro.workloads.suite import get_application


class TestTrainingSetup:
    def test_table5_entries(self):
        assert TRAINING_SETUPS["e5649"].co_location_counts == (1, 2, 3, 4, 5)
        assert TRAINING_SETUPS["e5-2697v2"].co_location_counts == (1, 3, 5, 7, 9, 11)

    def test_counts_fit_machines(self):
        assert max(TRAINING_SETUPS["e5649"].co_location_counts) <= XEON_E5649.max_co_located
        assert (
            max(TRAINING_SETUPS["e5-2697v2"].co_location_counts)
            <= XEON_E5_2697V2.max_co_located
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingSetup("x", ())
        with pytest.raises(ValueError):
            TrainingSetup("x", (0, 1))
        with pytest.raises(ValueError):
            TrainingSetup("x", (3, 1))

    def test_setup_for_catalog_machines(self):
        assert setup_for(XEON_E5649) is TRAINING_SETUPS["e5649"]
        assert setup_for(XEON_E5_2697V2) is TRAINING_SETUPS["e5-2697v2"]

    def test_setup_for_unknown_machine(self):
        custom = MulticoreProcessor(
            name="Custom 4-core",
            num_cores=4,
            llc=CacheGeometry(size_bytes=8 * 1024 * 1024),
            dram=DRAMConfig(),
            pstates=PStateLadder.from_frequencies([2.0, 1.0]),
        )
        setup = setup_for(custom)
        assert setup.co_location_counts == (1, 2, 3)

    def test_setup_for_many_core_machine_subsamples(self):
        big = MulticoreProcessor(
            name="Custom 32-core",
            num_cores=32,
            llc=CacheGeometry(size_bytes=64 * 1024 * 1024),
            dram=DRAMConfig(),
            pstates=PStateLadder.from_frequencies([2.0]),
        )
        setup = setup_for(big)
        assert len(setup.co_location_counts) == 8
        assert setup.co_location_counts[0] == 1
        assert setup.co_location_counts[-1] == 31


class TestCollectTrainingData:
    def test_loop_nest_size(self, engine_6core, baselines_6core):
        targets = [get_application(n) for n in ("canneal", "ep")]
        co_apps = [get_application("cg")]
        ds = collect_training_data(
            engine_6core,
            baselines=baselines_6core,
            targets=targets,
            co_apps=co_apps,
            counts=(1, 3),
        )
        # 6 pstates x 2 targets x 1 co-app x 2 counts
        assert len(ds) == 24

    def test_full_default_size_6core(self, engine_6core, baselines_6core):
        ds = collect_training_data(engine_6core, baselines=baselines_6core)
        # 6 pstates x 11 targets x 4 co-apps x 5 counts = 1320 (Section IV-B3)
        assert len(ds) == 1320

    def test_observations_reference_baselines(self, small_dataset, baselines_6core):
        obs = small_dataset.observations[0]
        base = baselines_6core.get(obs.target_name, obs.frequency_ghz)
        assert obs.base_ex_time_s == base.wall_time_s
        assert obs.target_mem == pytest.approx(base.memory_intensity)

    def test_observed_slowdowns_physical(self, small_dataset):
        slowdowns = np.array([o.slowdown for o in small_dataset])
        # Noise can dip marginally below 1; contention pushes well above.
        assert slowdowns.min() > 0.9
        assert slowdowns.max() < 4.0
        assert slowdowns.max() > 1.2

    def test_counts_validated(self, engine_6core, baselines_6core):
        with pytest.raises(ValueError, match="at most 5"):
            collect_training_data(
                engine_6core, baselines=baselines_6core, counts=(1, 6)
            )

    def test_frequency_subset_restricts_sweep(
        self, engine_6core, baselines_6core
    ):
        ds = collect_training_data(
            engine_6core,
            baselines=baselines_6core,
            targets=[get_application("ep")],
            co_apps=[get_application("cg")],
            counts=(1,),
            frequencies_ghz=(2.53, 1.6),
        )
        # 2 pstates x 1 target x 1 co-app x 1 count
        assert len(ds) == 2
        assert {o.frequency_ghz for o in ds} == {2.53, 1.6}

    def test_frequency_subset_validated(self, engine_6core, baselines_6core):
        with pytest.raises(ValueError, match="no P-state"):
            collect_training_data(
                engine_6core,
                baselines=baselines_6core,
                frequencies_ghz=(9.99,),
            )
        with pytest.raises(ValueError, match="at least one"):
            collect_training_data(
                engine_6core,
                baselines=baselines_6core,
                frequencies_ghz=(),
            )

    def test_deterministic_with_seed(self, engine_6core, baselines_6core):
        kwargs = dict(
            baselines=baselines_6core,
            targets=[get_application("sp")],
            co_apps=[get_application("cg")],
            counts=(1,),
        )
        d1 = collect_training_data(
            engine_6core, rng=np.random.default_rng(5), **kwargs
        )
        d2 = collect_training_data(
            engine_6core, rng=np.random.default_rng(5), **kwargs
        )
        assert [o.actual_time_s for o in d1] == [o.actual_time_s for o in d2]


class TestCollectRandomTrainingData:
    def test_budget_respected(self, engine_6core, baselines_6core):
        ds = collect_random_training_data(
            engine_6core, 30, baselines=baselines_6core
        )
        assert len(ds) == 30

    def test_counts_within_machine_limits(self, engine_6core, baselines_6core):
        ds = collect_random_training_data(
            engine_6core, 50, baselines=baselines_6core
        )
        counts = {o.num_co_app for o in ds}
        assert max(counts) <= engine_6core.processor.max_co_located
        assert min(counts) >= 1

    def test_random_selection_varies(self, engine_6core, baselines_6core):
        ds = collect_random_training_data(
            engine_6core, 50, baselines=baselines_6core,
            rng=np.random.default_rng(0),
        )
        assert len({o.target_name for o in ds}) > 3
        assert len({o.frequency_ghz for o in ds}) > 2

    def test_budget_validation(self, engine_6core, baselines_6core):
        with pytest.raises(ValueError, match="budget"):
            collect_random_training_data(
                engine_6core, 0, baselines=baselines_6core
            )


class TestDeterministicParallelCollection:
    KW = dict(counts=(1, 3))

    def _kwargs(self, baselines):
        return dict(
            baselines=baselines,
            targets=[get_application(n) for n in ("canneal", "sp")],
            co_apps=[get_application("cg")],
            **self.KW,
        )

    def test_parallel_dataset_bit_identical(self, engine_6core, baselines_6core):
        kwargs = self._kwargs(baselines_6core)
        serial = collect_training_data(
            engine_6core, rng=np.random.default_rng(9), **kwargs
        )
        parallel = collect_training_data(
            engine_6core, rng=np.random.default_rng(9), workers=3, **kwargs
        )
        assert [o.actual_time_s for o in serial] == [
            o.actual_time_s for o in parallel
        ]

    def test_random_parallel_dataset_bit_identical(
        self, engine_6core, baselines_6core
    ):
        kwargs = dict(
            baselines=baselines_6core,
            targets=[get_application(n) for n in ("canneal", "sp")],
            co_apps=[get_application("cg")],
        )
        serial = collect_random_training_data(
            engine_6core, 20, rng=np.random.default_rng(9), **kwargs
        )
        parallel = collect_random_training_data(
            engine_6core, 20, rng=np.random.default_rng(9), workers=2, **kwargs
        )
        assert [o.actual_time_s for o in serial] == [
            o.actual_time_s for o in parallel
        ]
        assert [o.target_name for o in serial] == [
            o.target_name for o in parallel
        ]

    def test_noise_independent_of_sibling_scenarios(
        self, engine_6core, baselines_6core
    ):
        """Per-scenario RNGs: a scenario's noise is a function of its index,

        so the first scenario's draw cannot be perturbed by how many draws
        later scenarios consume (the old shared-generator failure mode).
        """
        kwargs = self._kwargs(baselines_6core)
        full = collect_training_data(
            engine_6core, rng=np.random.default_rng(9), **kwargs
        )
        trimmed_kwargs = dict(kwargs, counts=(1,))
        trimmed = collect_training_data(
            engine_6core, rng=np.random.default_rng(9), **trimmed_kwargs
        )
        # Scenario 0 is (fastest pstate, canneal, cg, count 1) in both sweeps.
        assert full.observations[0].actual_time_s == trimmed.observations[0].actual_time_s

    def test_workers_validated(self, engine_6core, baselines_6core):
        with pytest.raises(ValueError, match="workers"):
            collect_training_data(
                engine_6core, baselines=baselines_6core, workers=0
            )
