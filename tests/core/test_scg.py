"""Tests for the scaled conjugate gradient optimizer (Møller 1993)."""

import numpy as np
import pytest

from repro.core.scg import minimize_scg, minimize_scg_batched


def rowwise(f):
    """Lift a serial objective to the batched (R, n) -> ((R,), (R, n)) form.

    Evaluating row by row with the serial objective keeps each member's
    arithmetic identical to a standalone ``minimize_scg`` run, which is the
    contract the bit-identity tests exercise.
    """

    def batched(P):
        vals, grads = zip(*(f(row) for row in P))
        return np.array(vals), np.array(grads)

    return batched


def quadratic(A, b):
    """0.5 x'Ax - b'x with its gradient."""

    def f(x):
        return 0.5 * float(x @ A @ x) - float(b @ x), A @ x - b

    return f


class TestQuadratics:
    def test_identity_quadratic(self):
        n = 5
        f = quadratic(np.eye(n), np.ones(n))
        result = minimize_scg(f, np.zeros(n))
        assert result.converged
        np.testing.assert_allclose(result.x, np.ones(n), atol=1e-5)

    def test_ill_conditioned_quadratic(self, rng):
        n = 8
        eigs = np.geomspace(1.0, 1e4, n)
        Q, _ = np.linalg.qr(rng.normal(size=(n, n)))
        A = Q @ np.diag(eigs) @ Q.T
        b = rng.normal(size=n)
        f = quadratic(A, b)
        result = minimize_scg(f, np.zeros(n), max_iterations=2000)
        expected = np.linalg.solve(A, b)
        np.testing.assert_allclose(result.x, expected, atol=1e-3)

    def test_quadratic_converges_fast(self):
        """CG-family methods solve an n-D strictly convex quadratic quickly."""
        n = 10
        f = quadratic(np.diag(np.arange(1.0, n + 1.0)), np.ones(n))
        result = minimize_scg(f, np.zeros(n))
        assert result.converged
        assert result.iterations <= 5 * n


class TestRosenbrock:
    def test_rosenbrock_2d(self):
        def f(x):
            a, b = 1.0, 100.0
            val = (a - x[0]) ** 2 + b * (x[1] - x[0] ** 2) ** 2
            grad = np.array(
                [
                    -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] ** 2),
                    2.0 * b * (x[1] - x[0] ** 2),
                ]
            )
            return float(val), grad

        result = minimize_scg(f, np.array([-1.2, 1.0]), max_iterations=5000,
                              grad_tolerance=1e-8)
        np.testing.assert_allclose(result.x, [1.0, 1.0], atol=1e-3)


class TestBehaviour:
    def test_monotone_nonincreasing_objective(self):
        """SCG never accepts a step that increases the objective."""
        history = []

        def f(x):
            val = float(np.sum(x**4) + np.sum(x**2))
            history.append(val)
            return val, 4.0 * x**3 + 2.0 * x

        result = minimize_scg(f, np.full(4, 2.0))
        assert result.fun <= history[0]
        assert result.converged

    def test_starts_at_minimum(self):
        f = quadratic(np.eye(3), np.zeros(3))
        result = minimize_scg(f, np.zeros(3))
        assert result.converged
        assert result.iterations <= 1
        np.testing.assert_allclose(result.x, np.zeros(3))

    def test_result_bookkeeping(self):
        f = quadratic(np.eye(2), np.ones(2))
        result = minimize_scg(f, np.zeros(2))
        assert result.function_evals == result.gradient_evals
        assert result.function_evals >= result.iterations
        assert isinstance(result.message, str)

    def test_max_iterations_respected(self):
        def f(x):
            return float(np.sum(x**2)), 2.0 * x

        result = minimize_scg(f, np.full(3, 100.0), max_iterations=2,
                              grad_tolerance=1e-300)
        assert result.iterations <= 2

    def test_zero_dimensional_rejected(self):
        with pytest.raises(ValueError):
            minimize_scg(lambda x: (0.0, x), np.array([]))

    def test_deterministic(self):
        f = quadratic(np.diag([1.0, 10.0]), np.ones(2))
        r1 = minimize_scg(f, np.array([5.0, -3.0]))
        r2 = minimize_scg(f, np.array([5.0, -3.0]))
        np.testing.assert_array_equal(r1.x, r2.x)
        assert r1.iterations == r2.iterations


class TestBatched:
    def test_quadratic_members_match_serial_bitwise(self, rng):
        n = 6
        f = quadratic(np.diag(np.arange(1.0, n + 1.0)), np.ones(n))
        starts = rng.normal(size=(5, n))

        batched = minimize_scg_batched(rowwise(f), starts)
        assert batched.n_members == 5
        for i, x0 in enumerate(starts):
            serial = minimize_scg(f, x0)
            np.testing.assert_array_equal(batched.x[i], serial.x)
            assert batched.fun[i] == serial.fun
            assert batched.grad_norm[i] == serial.grad_norm
            assert batched.iterations[i] == serial.iterations
            assert bool(batched.converged[i]) == serial.converged

    def test_rosenbrock_members_match_serial_bitwise(self):
        def f(x):
            a, b = 1.0, 100.0
            val = (a - x[0]) ** 2 + b * (x[1] - x[0] ** 2) ** 2
            grad = np.array(
                [
                    -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] ** 2),
                    2.0 * b * (x[1] - x[0] ** 2),
                ]
            )
            return float(val), grad

        starts = np.array([[-1.2, 1.0], [0.0, 0.0], [2.0, -1.0]])
        batched = minimize_scg_batched(rowwise(f), starts,
                                       max_iterations=5000,
                                       grad_tolerance=1e-8)
        for i, x0 in enumerate(starts):
            serial = minimize_scg(f, x0, max_iterations=5000,
                                  grad_tolerance=1e-8)
            np.testing.assert_array_equal(batched.x[i], serial.x)
            assert batched.fun[i] == serial.fun
            assert batched.iterations[i] == serial.iterations

    def test_members_freeze_independently(self):
        """A member starting at the minimum stops while others continue."""
        f = quadratic(np.eye(3), np.zeros(3))
        starts = np.vstack([np.zeros(3), np.full(3, 10.0)])
        result = minimize_scg_batched(rowwise(f), starts)
        assert result.converged.all()
        assert result.iterations[0] <= 1
        assert result.iterations[1] >= result.iterations[0]
        np.testing.assert_allclose(result.x, np.zeros((2, 3)), atol=1e-5)

    def test_eval_bookkeeping_counts_members(self):
        f = quadratic(np.eye(2), np.ones(2))
        result = minimize_scg_batched(rowwise(f), np.zeros((3, 2)))
        assert result.function_evals == result.gradient_evals
        # The initial joint evaluation alone costs one eval per member.
        assert result.function_evals >= 3

    def test_rejects_flat_x0(self):
        with pytest.raises(ValueError, match="stack"):
            minimize_scg_batched(lambda P: (P.sum(axis=1), P), np.zeros(4))

    def test_rejects_empty_stack(self):
        with pytest.raises(ValueError, match="empty"):
            minimize_scg_batched(
                lambda P: (P.sum(axis=1), P), np.empty((0, 4))
            )
