"""Tests for the bootstrap ensemble predictor."""

import numpy as np
import pytest

from repro.core.ensemble import EnsemblePredictor, PredictionInterval
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind
from repro.counters.hpcrun import hpcrun_flat
from repro.workloads.suite import get_application


@pytest.fixture(scope="module")
def ensemble(small_dataset):
    ens = EnsemblePredictor(
        ModelKind.NEURAL, FeatureSet.F, n_members=4, seed=1
    )
    ens.fit(list(small_dataset))
    return ens


class TestPredictionInterval:
    def test_interval_band(self):
        pi = PredictionInterval(mean_s=300.0, std_s=10.0, member_predictions=(290.0, 310.0))
        assert pi.interval(2.0) == (280.0, 320.0)
        assert pi.relative_spread == pytest.approx(10.0 / 300.0)


class TestEnsemblePredictor:
    def test_members_trained(self, ensemble):
        assert ensemble.is_fitted
        assert len(ensemble._members) == 4

    def test_interval_contains_truth_in_distribution(
        self, ensemble, engine_6core, baselines_6core
    ):
        fmax = 2.53
        target = baselines_6core.get("canneal", fmax)
        co = [baselines_6core.get("cg", fmax)] * 3
        pi = ensemble.predict_interval(target, co)
        actual = engine_6core.run(
            get_application("canneal"), [get_application("cg")] * 3
        ).target.execution_time_s
        lo, hi = pi.interval(3.0)
        assert lo < actual < hi or abs(pi.mean_s - actual) / actual < 0.05

    def test_members_disagree(self, ensemble, baselines_6core):
        target = baselines_6core.get("sp", 2.53)
        co = [baselines_6core.get("cg", 2.53)] * 2
        pi = ensemble.predict_interval(target, co)
        assert pi.std_s > 0.0
        assert len(set(pi.member_predictions)) > 1

    def test_spread_grows_off_distribution(self, ensemble, baselines_6core, engine_6core):
        """The alarm signal: disagreement rises for exotic placements."""
        from repro.workloads.classes import MemoryIntensityClass
        from repro.workloads.generator import generate_application

        fmax = 2.53
        # In-distribution: a training-grid-style placement.
        easy = ensemble.predict_interval(
            baselines_6core.get("canneal", fmax),
            [baselines_6core.get("cg", fmax)] * 3,
        )
        # Off-distribution: synthetic extreme target at a rare count.
        synth = generate_application(
            MemoryIntensityClass.CLASS_I, np.random.default_rng(123)
        )
        synth_base = hpcrun_flat(engine_6core, synth)
        hard = ensemble.predict_interval(
            synth_base, [baselines_6core.get("cg", fmax)] * 5
        )
        assert hard.relative_spread > easy.relative_spread

    def test_predict_observations_shapes(self, ensemble, small_dataset):
        means, stds = ensemble.predict_observations(list(small_dataset))
        assert means.shape == stds.shape == (len(small_dataset),)
        assert np.all(stds >= 0.0)

    def test_deterministic_given_seed(self, small_dataset, baselines_6core):
        def build():
            ens = EnsemblePredictor(
                ModelKind.LINEAR, FeatureSet.C, n_members=3, seed=9
            )
            return ens.fit(list(small_dataset))

        target = baselines_6core.get("ep", 2.53)
        co = [baselines_6core.get("cg", 2.53)]
        p1 = build().predict_interval(target, co)
        p2 = build().predict_interval(target, co)
        assert p1.member_predictions == p2.member_predictions

    def test_validation(self, small_dataset, baselines_6core, engine_12core):
        with pytest.raises(ValueError, match="two members"):
            EnsemblePredictor(n_members=1)
        with pytest.raises(ValueError, match="workers"):
            EnsemblePredictor(n_members=2, workers=0)
        ens = EnsemblePredictor(ModelKind.LINEAR, FeatureSet.B, n_members=2)
        with pytest.raises(RuntimeError, match="not fitted"):
            ens.predict_interval(baselines_6core.get("ep", 2.53), [])
        ens.fit(list(small_dataset))
        foreign = hpcrun_flat(engine_12core, get_application("ep"))
        with pytest.raises(ValueError, match="trained on"):
            ens.predict_interval(foreign, [])


class TestParallelFit:
    def test_workers_train_the_identical_ensemble(
        self, small_dataset, baselines_6core
    ):
        """Resamples and member streams are pre-drawn from the ensemble
        seed, so pool-trained members equal serially trained ones."""

        def build(workers):
            ens = EnsemblePredictor(
                ModelKind.NEURAL, FeatureSet.C, n_members=3, seed=4,
                workers=workers, batched_restarts=True,
            )
            return ens.fit(list(small_dataset))

        target = baselines_6core.get("sp", 2.53)
        co = [baselines_6core.get("cg", 2.53)] * 2
        serial = build(1).predict_interval(target, co)
        parallel = build(3).predict_interval(target, co)
        assert serial.member_predictions == parallel.member_predictions
        assert serial.mean_s == parallel.mean_s

    def test_fit_stats_aggregated_over_members(self, ensemble):
        stats = ensemble.fit_stats_
        assert stats.fits == 4
        assert stats.restarts >= 4
        assert stats.scg_iterations > 0
