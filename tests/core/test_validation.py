"""Tests for repeated random sub-sampling validation."""

from functools import partial

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.fitstats import FitStats
from repro.core.linear import LinearModel
from repro.core.methodology import ModelKind, make_model
from repro.core.validation import (
    ValidationResult,
    leave_one_group_out,
    repeated_random_subsampling,
)


@pytest.fixture
def linear_data(rng):
    X = rng.normal(size=(200, 2))
    y = X @ np.array([2.0, 1.0]) + 100.0 + rng.normal(scale=0.5, size=200)
    return X, y


@pytest.fixture
def golden_data():
    """The fixed dataset behind the golden-seed regression values."""
    rng = np.random.default_rng(1234)
    X = rng.normal(size=(60, 3))
    y = X @ np.array([1.5, -2.0, 0.5]) + 30.0 + rng.normal(scale=0.3, size=60)
    return X, y


class TestRepeatedRandomSubsampling:
    def test_result_shapes(self, linear_data, rng):
        X, y = linear_data
        res = repeated_random_subsampling(
            LinearModel, X, y, repetitions=10, rng=rng
        )
        assert res.repetitions == 10
        assert res.train_mpe.shape == (10,)
        assert res.test_nrmse.shape == (10,)

    def test_linear_model_on_linear_data_is_accurate(self, linear_data, rng):
        X, y = linear_data
        res = repeated_random_subsampling(
            LinearModel, X, y, repetitions=20, rng=rng
        )
        assert res.mean_test_mpe < 2.0
        assert res.mean_train_mpe < 2.0

    def test_test_error_tracks_train_error(self, linear_data, rng):
        X, y = linear_data
        res = repeated_random_subsampling(
            LinearModel, X, y, repetitions=20, rng=rng
        )
        assert res.mean_test_mpe == pytest.approx(res.mean_train_mpe, rel=0.5)

    def test_split_sizes(self, rng):
        """Each repetition trains on 70% and tests on 30%."""
        sizes = []

        class SpyModel(LinearModel):
            def fit(self, X, y):
                sizes.append(len(y))
                return super().fit(X, y)

        X = rng.normal(size=(100, 1))
        y = X[:, 0] * 2.0 + rng.normal(size=100)
        repeated_random_subsampling(SpyModel, X, y, repetitions=5, rng=rng)
        assert sizes == [70] * 5

    def test_different_partitions_each_repetition(self, rng):
        """Model sees different training data across repetitions."""
        first_rows = []

        class SpyModel(LinearModel):
            def fit(self, X, y):
                first_rows.append(tuple(np.sort(y)[:3]))
                return super().fit(X, y)

        X = rng.normal(size=(50, 1))
        y = np.arange(50, dtype=float) + 1.0
        repeated_random_subsampling(SpyModel, X, y, repetitions=8, rng=rng)
        assert len(set(first_rows)) > 1

    def test_deterministic_given_rng(self, linear_data):
        X, y = linear_data
        r1 = repeated_random_subsampling(
            LinearModel, X, y, repetitions=5, rng=np.random.default_rng(1)
        )
        r2 = repeated_random_subsampling(
            LinearModel, X, y, repetitions=5, rng=np.random.default_rng(1)
        )
        np.testing.assert_array_equal(r1.test_mpe, r2.test_mpe)

    def test_validation_errors(self, rng):
        X = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        with pytest.raises(ValueError, match="test fraction"):
            repeated_random_subsampling(LinearModel, X, y, test_fraction=0.0)
        with pytest.raises(ValueError, match="repetition"):
            repeated_random_subsampling(LinearModel, X, y, repetitions=0)
        with pytest.raises(ValueError, match="four samples"):
            repeated_random_subsampling(LinearModel, X[:3], y[:3])
        with pytest.raises(ValueError, match="X must be"):
            repeated_random_subsampling(LinearModel, X, y[:5])
        with pytest.raises(ValueError, match="workers"):
            repeated_random_subsampling(LinearModel, X, y, workers=0)


class TestGoldenSplitStream:
    """Pin the split RNG stream: the parallel refactor must not move it.

    The expected arrays were captured from the pre-refactor serial loop
    (which drew one permutation per repetition, in repetition order).  If
    any of these values shift, historical results stop being reproducible.
    """

    TRAIN_MPE = [0.8292938706974152, 0.8292009753302093, 0.772245905922028,
                 0.7778607611543853, 0.8202198370526028, 0.7567068749671088]
    TEST_MPE = [0.8147893748964959, 0.7193494220954807, 0.8916283117433994,
                0.8492490815776694, 0.7600453244207703, 0.9984920347789276]
    TRAIN_NRMSE = [2.4141224682608153, 2.2476552896373536, 2.5437253655927443,
                   2.1823304236238625, 2.2588751949001584, 2.2473506893553266]
    TEST_NRMSE = [2.651345675015839, 5.012900225586206, 3.459959535627479,
                  3.835364104327846, 3.780327229911179, 3.7983198748998896]

    def test_serial_matches_pre_refactor_values(self, golden_data):
        X, y = golden_data
        res = repeated_random_subsampling(
            LinearModel, X, y, repetitions=6, rng=np.random.default_rng(77)
        )
        np.testing.assert_array_equal(res.train_mpe, self.TRAIN_MPE)
        np.testing.assert_array_equal(res.test_mpe, self.TEST_MPE)
        np.testing.assert_array_equal(res.train_nrmse, self.TRAIN_NRMSE)
        np.testing.assert_array_equal(res.test_nrmse, self.TEST_NRMSE)

    def test_parallel_matches_pre_refactor_values(self, golden_data):
        X, y = golden_data
        res = repeated_random_subsampling(
            LinearModel, X, y, repetitions=6,
            rng=np.random.default_rng(77), workers=2,
        )
        np.testing.assert_array_equal(res.train_mpe, self.TRAIN_MPE)
        np.testing.assert_array_equal(res.test_mpe, self.TEST_MPE)
        np.testing.assert_array_equal(res.train_nrmse, self.TRAIN_NRMSE)
        np.testing.assert_array_equal(res.test_nrmse, self.TEST_NRMSE)


class TestWorkersBitIdentity:
    def test_linear_workers_equal(self, golden_data):
        X, y = golden_data
        results = [
            repeated_random_subsampling(
                LinearModel, X, y, repetitions=8,
                rng=np.random.default_rng(5), workers=workers,
            )
            for workers in (1, 4)
        ]
        serial, parallel = results
        np.testing.assert_array_equal(serial.train_mpe, parallel.train_mpe)
        np.testing.assert_array_equal(serial.test_mpe, parallel.test_mpe)
        np.testing.assert_array_equal(serial.train_nrmse, parallel.train_nrmse)
        np.testing.assert_array_equal(serial.test_nrmse, parallel.test_nrmse)

    def test_neural_workers_equal(self, golden_data):
        """Neural fits draw per-repetition spawned streams, so the parallel
        pool reproduces the serial loop bit-for-bit — including the SCG
        trajectory counts."""
        X, y = golden_data
        factory = partial(
            make_model, ModelKind.NEURAL, FeatureSet.C, batched_restarts=True
        )
        results = [
            repeated_random_subsampling(
                factory, X, y, repetitions=4,
                rng=np.random.default_rng(11), workers=workers,
            )
            for workers in (1, 4)
        ]
        serial, parallel = results
        np.testing.assert_array_equal(serial.train_mpe, parallel.train_mpe)
        np.testing.assert_array_equal(serial.test_mpe, parallel.test_mpe)
        np.testing.assert_array_equal(serial.test_nrmse, parallel.test_nrmse)
        assert (
            serial.fit_stats.scg_iterations
            == parallel.fit_stats.scg_iterations
        )
        assert serial.fit_stats.restarts == parallel.fit_stats.restarts

    def test_logo_workers_equal(self, rng):
        X = rng.normal(size=(60, 2))
        y = X @ np.array([1.0, -1.0]) + 20.0 + rng.normal(scale=0.1, size=60)
        groups = [f"g{i % 3}" for i in range(60)]
        serial = leave_one_group_out(LinearModel, X, y, groups, workers=1)
        parallel = leave_one_group_out(LinearModel, X, y, groups, workers=3)
        assert serial.group_test_mpe == parallel.group_test_mpe
        assert serial.group_test_nrmse == parallel.group_test_nrmse

    def test_logo_workers_validation(self, rng):
        X = rng.normal(size=(8, 1))
        y = X[:, 0] + rng.normal(scale=0.01, size=8)
        groups = ["a"] * 4 + ["b"] * 4
        with pytest.raises(ValueError, match="workers"):
            leave_one_group_out(LinearModel, X, y, groups, workers=0)


class TestFitStatsAggregation:
    def test_result_carries_fit_stats(self, golden_data):
        X, y = golden_data
        res = repeated_random_subsampling(
            LinearModel, X, y, repetitions=5, rng=np.random.default_rng(2)
        )
        assert res.fit_stats is not None
        assert res.fit_stats.fits == 5
        assert res.fit_stats.wall_time_s > 0.0

    def test_shared_stats_merge(self, golden_data):
        X, y = golden_data
        shared = FitStats()
        repeated_random_subsampling(
            LinearModel, X, y, repetitions=3,
            rng=np.random.default_rng(2), stats=shared,
        )
        repeated_random_subsampling(
            LinearModel, X, y, repetitions=4,
            rng=np.random.default_rng(3), stats=shared,
        )
        assert shared.fits == 7

    def test_counts_worker_independent(self, golden_data):
        X, y = golden_data
        factory = partial(
            make_model, ModelKind.NEURAL, FeatureSet.C, batched_restarts=True
        )
        counts = []
        for workers in (1, 3):
            res = repeated_random_subsampling(
                factory, X, y, repetitions=3,
                rng=np.random.default_rng(9), workers=workers,
            )
            counts.append(
                (res.fit_stats.fits, res.fit_stats.restarts,
                 res.fit_stats.scg_iterations, res.fit_stats.gradient_evals)
            )
        assert counts[0] == counts[1]


class TestValidationResult:
    def test_summary_statistics(self):
        res = ValidationResult(
            train_mpe=np.array([1.0, 2.0]),
            test_mpe=np.array([2.0, 4.0]),
            train_nrmse=np.array([0.5, 1.5]),
            test_nrmse=np.array([1.0, 3.0]),
        )
        assert res.mean_train_mpe == pytest.approx(1.5)
        assert res.mean_test_mpe == pytest.approx(3.0)
        assert res.mean_train_nrmse == pytest.approx(1.0)
        assert res.mean_test_nrmse == pytest.approx(2.0)
        assert res.test_mpe_std == pytest.approx(1.0)
        assert res.repetitions == 2


class TestDegenerateSplits:
    def test_tiny_dataset_never_gets_one_sample_test_split(self, rng):
        """Regression: round(7 * 0.2) == 1 used to crash inside nrmse

        ("actual values have zero range") because a single-row test
        partition always has zero range.  The split floor is now two rows.
        """
        X = rng.normal(size=(7, 2))
        y = X @ np.array([1.0, 2.0]) + 3.0 + rng.normal(scale=0.01, size=7)
        res = repeated_random_subsampling(
            LinearModel, X, y, test_fraction=0.2, repetitions=10, rng=rng
        )
        assert res.repetitions == 10
        assert np.isfinite(res.test_nrmse).all()

    def test_extreme_fractions_stay_clamped(self, rng):
        X = rng.normal(size=(8, 1))
        y = X[:, 0] * 2.0 + 1.0 + rng.normal(scale=0.01, size=8)
        for fraction in (0.01, 0.99):
            res = repeated_random_subsampling(
                LinearModel, X, y, test_fraction=fraction, repetitions=3, rng=rng
            )
            assert np.isfinite(res.test_nrmse).all()
            assert np.isfinite(res.train_nrmse).all()
