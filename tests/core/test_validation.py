"""Tests for repeated random sub-sampling validation."""

import numpy as np
import pytest

from repro.core.linear import LinearModel
from repro.core.validation import ValidationResult, repeated_random_subsampling


@pytest.fixture
def linear_data(rng):
    X = rng.normal(size=(200, 2))
    y = X @ np.array([2.0, 1.0]) + 100.0 + rng.normal(scale=0.5, size=200)
    return X, y


class TestRepeatedRandomSubsampling:
    def test_result_shapes(self, linear_data, rng):
        X, y = linear_data
        res = repeated_random_subsampling(
            LinearModel, X, y, repetitions=10, rng=rng
        )
        assert res.repetitions == 10
        assert res.train_mpe.shape == (10,)
        assert res.test_nrmse.shape == (10,)

    def test_linear_model_on_linear_data_is_accurate(self, linear_data, rng):
        X, y = linear_data
        res = repeated_random_subsampling(
            LinearModel, X, y, repetitions=20, rng=rng
        )
        assert res.mean_test_mpe < 2.0
        assert res.mean_train_mpe < 2.0

    def test_test_error_tracks_train_error(self, linear_data, rng):
        X, y = linear_data
        res = repeated_random_subsampling(
            LinearModel, X, y, repetitions=20, rng=rng
        )
        assert res.mean_test_mpe == pytest.approx(res.mean_train_mpe, rel=0.5)

    def test_split_sizes(self, rng):
        """Each repetition trains on 70% and tests on 30%."""
        sizes = []

        class SpyModel(LinearModel):
            def fit(self, X, y):
                sizes.append(len(y))
                return super().fit(X, y)

        X = rng.normal(size=(100, 1))
        y = X[:, 0] * 2.0 + rng.normal(size=100)
        repeated_random_subsampling(SpyModel, X, y, repetitions=5, rng=rng)
        assert sizes == [70] * 5

    def test_different_partitions_each_repetition(self, rng):
        """Model sees different training data across repetitions."""
        first_rows = []

        class SpyModel(LinearModel):
            def fit(self, X, y):
                first_rows.append(tuple(np.sort(y)[:3]))
                return super().fit(X, y)

        X = rng.normal(size=(50, 1))
        y = np.arange(50, dtype=float) + 1.0
        repeated_random_subsampling(SpyModel, X, y, repetitions=8, rng=rng)
        assert len(set(first_rows)) > 1

    def test_deterministic_given_rng(self, linear_data):
        X, y = linear_data
        r1 = repeated_random_subsampling(
            LinearModel, X, y, repetitions=5, rng=np.random.default_rng(1)
        )
        r2 = repeated_random_subsampling(
            LinearModel, X, y, repetitions=5, rng=np.random.default_rng(1)
        )
        np.testing.assert_array_equal(r1.test_mpe, r2.test_mpe)

    def test_validation_errors(self, rng):
        X = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        with pytest.raises(ValueError, match="test fraction"):
            repeated_random_subsampling(LinearModel, X, y, test_fraction=0.0)
        with pytest.raises(ValueError, match="repetition"):
            repeated_random_subsampling(LinearModel, X, y, repetitions=0)
        with pytest.raises(ValueError, match="four samples"):
            repeated_random_subsampling(LinearModel, X[:3], y[:3])
        with pytest.raises(ValueError, match="X must be"):
            repeated_random_subsampling(LinearModel, X, y[:5])


class TestValidationResult:
    def test_summary_statistics(self):
        res = ValidationResult(
            train_mpe=np.array([1.0, 2.0]),
            test_mpe=np.array([2.0, 4.0]),
            train_nrmse=np.array([0.5, 1.5]),
            test_nrmse=np.array([1.0, 3.0]),
        )
        assert res.mean_train_mpe == pytest.approx(1.5)
        assert res.mean_test_mpe == pytest.approx(3.0)
        assert res.mean_train_nrmse == pytest.approx(1.0)
        assert res.mean_test_nrmse == pytest.approx(2.0)
        assert res.test_mpe_std == pytest.approx(1.0)
        assert res.repetitions == 2


class TestDegenerateSplits:
    def test_tiny_dataset_never_gets_one_sample_test_split(self, rng):
        """Regression: round(7 * 0.2) == 1 used to crash inside nrmse

        ("actual values have zero range") because a single-row test
        partition always has zero range.  The split floor is now two rows.
        """
        X = rng.normal(size=(7, 2))
        y = X @ np.array([1.0, 2.0]) + 3.0 + rng.normal(scale=0.01, size=7)
        res = repeated_random_subsampling(
            LinearModel, X, y, test_fraction=0.2, repetitions=10, rng=rng
        )
        assert res.repetitions == 10
        assert np.isfinite(res.test_nrmse).all()

    def test_extreme_fractions_stay_clamped(self, rng):
        X = rng.normal(size=(8, 1))
        y = X[:, 0] * 2.0 + 1.0 + rng.normal(scale=0.01, size=8)
        for fraction in (0.01, 0.99):
            res = repeated_random_subsampling(
                LinearModel, X, y, test_fraction=fraction, repetitions=3, rng=rng
            )
            assert np.isfinite(res.test_nrmse).all()
            assert np.isfinite(res.train_nrmse).all()
