"""Tests for model persistence (JSON save/load)."""

import json

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    load_predictor,
    predictor_from_dict,
    predictor_to_dict,
    save_predictor,
)


@pytest.fixture(scope="module", params=[ModelKind.LINEAR, ModelKind.NEURAL])
def fitted_predictor(request, small_dataset):
    predictor = PerformancePredictor(request.param, FeatureSet.D, seed=1)
    predictor.fit(list(small_dataset))
    return predictor


class TestRoundtrip:
    def test_dict_roundtrip_preserves_predictions(self, fitted_predictor, small_dataset):
        restored = predictor_from_dict(predictor_to_dict(fitted_predictor))
        original = fitted_predictor.predict_observations(list(small_dataset))
        recovered = restored.predict_observations(list(small_dataset))
        np.testing.assert_allclose(recovered, original, rtol=1e-12)

    def test_file_roundtrip(self, fitted_predictor, small_dataset, tmp_path):
        path = tmp_path / "model.json"
        save_predictor(fitted_predictor, path)
        restored = load_predictor(path)
        np.testing.assert_allclose(
            restored.predict_observations(list(small_dataset)),
            fitted_predictor.predict_observations(list(small_dataset)),
            rtol=1e-12,
        )

    def test_metadata_preserved(self, fitted_predictor):
        restored = predictor_from_dict(predictor_to_dict(fitted_predictor))
        assert restored.kind is fitted_predictor.kind
        assert restored.feature_set is fitted_predictor.feature_set
        assert restored.is_fitted

    def test_payload_is_plain_json(self, fitted_predictor):
        text = json.dumps(predictor_to_dict(fitted_predictor))
        assert "format_version" in text


class TestValidation:
    def test_unfitted_rejected(self):
        with pytest.raises(PersistenceError, match="unfitted"):
            predictor_to_dict(PerformancePredictor())

    def test_wrong_version_rejected(self, fitted_predictor):
        data = predictor_to_dict(fitted_predictor)
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(PersistenceError, match="unsupported format version"):
            predictor_from_dict(data)

    def test_missing_version_rejected(self):
        with pytest.raises(PersistenceError, match="format_version"):
            predictor_from_dict({"kind": "linear"})

    def test_unknown_kind_rejected(self, fitted_predictor):
        data = predictor_to_dict(fitted_predictor)
        data["kind"] = "forest"
        with pytest.raises(PersistenceError, match="malformed"):
            predictor_from_dict(data)

    def test_unknown_feature_set_rejected(self, fitted_predictor):
        data = predictor_to_dict(fitted_predictor)
        data["feature_set"] = "Z"
        with pytest.raises(PersistenceError, match="malformed"):
            predictor_from_dict(data)

    def test_corrupt_weights_rejected(self, fitted_predictor):
        data = predictor_to_dict(fitted_predictor)
        key = "weights" if fitted_predictor.kind is ModelKind.LINEAR else "params"
        data["model"][key] = ["not", "numbers"]
        with pytest.raises(PersistenceError):
            predictor_from_dict(data)

    def test_truncated_neural_params_rejected(self, small_dataset):
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.B, seed=0)
        predictor.fit(list(small_dataset))
        data = predictor_to_dict(predictor)
        data["model"]["params"] = data["model"]["params"][:-3]
        with pytest.raises(PersistenceError, match="parameter vector"):
            predictor_from_dict(data)

    def test_feature_count_mismatch_rejected(self, small_dataset):
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.B, seed=0)
        predictor.fit(list(small_dataset))
        data = predictor_to_dict(predictor)
        data["feature_set"] = "F"  # 8 features vs a 2-input network
        with pytest.raises(PersistenceError, match="inputs"):
            predictor_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_predictor(path)
