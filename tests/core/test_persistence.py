"""Tests for model persistence (JSON save/load)."""

import json

import numpy as np
import pytest

from repro.core.ensemble import EnsemblePredictor
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.core.persistence import (
    FORMAT_VERSION,
    READABLE_VERSIONS,
    PersistenceError,
    artifact_from_dict,
    artifact_to_dict,
    ensemble_from_dict,
    ensemble_to_dict,
    load_artifact,
    load_ensemble,
    load_predictor,
    predictor_from_dict,
    predictor_to_dict,
    save_artifact,
    save_ensemble,
    save_predictor,
)


@pytest.fixture(scope="module", params=[ModelKind.LINEAR, ModelKind.NEURAL])
def fitted_predictor(request, small_dataset):
    predictor = PerformancePredictor(request.param, FeatureSet.D, seed=1)
    predictor.fit(list(small_dataset))
    return predictor


class TestRoundtrip:
    def test_dict_roundtrip_preserves_predictions(self, fitted_predictor, small_dataset):
        restored = predictor_from_dict(predictor_to_dict(fitted_predictor))
        original = fitted_predictor.predict_observations(list(small_dataset))
        recovered = restored.predict_observations(list(small_dataset))
        np.testing.assert_allclose(recovered, original, rtol=1e-12)

    def test_file_roundtrip(self, fitted_predictor, small_dataset, tmp_path):
        path = tmp_path / "model.json"
        save_predictor(fitted_predictor, path)
        restored = load_predictor(path)
        np.testing.assert_allclose(
            restored.predict_observations(list(small_dataset)),
            fitted_predictor.predict_observations(list(small_dataset)),
            rtol=1e-12,
        )

    def test_metadata_preserved(self, fitted_predictor):
        restored = predictor_from_dict(predictor_to_dict(fitted_predictor))
        assert restored.kind is fitted_predictor.kind
        assert restored.feature_set is fitted_predictor.feature_set
        assert restored.is_fitted

    def test_payload_is_plain_json(self, fitted_predictor):
        text = json.dumps(predictor_to_dict(fitted_predictor))
        assert "format_version" in text


class TestValidation:
    def test_unfitted_rejected(self):
        with pytest.raises(PersistenceError, match="unfitted"):
            predictor_to_dict(PerformancePredictor())

    def test_wrong_version_rejected(self, fitted_predictor):
        data = predictor_to_dict(fitted_predictor)
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(PersistenceError, match="unsupported format version"):
            predictor_from_dict(data)

    def test_missing_version_rejected(self):
        with pytest.raises(PersistenceError, match="format_version"):
            predictor_from_dict({"kind": "linear"})

    def test_unknown_kind_rejected(self, fitted_predictor):
        data = predictor_to_dict(fitted_predictor)
        data["kind"] = "forest"
        with pytest.raises(PersistenceError, match="malformed"):
            predictor_from_dict(data)

    def test_unknown_feature_set_rejected(self, fitted_predictor):
        data = predictor_to_dict(fitted_predictor)
        data["feature_set"] = "Z"
        with pytest.raises(PersistenceError, match="malformed"):
            predictor_from_dict(data)

    def test_corrupt_weights_rejected(self, fitted_predictor):
        data = predictor_to_dict(fitted_predictor)
        key = "weights" if fitted_predictor.kind is ModelKind.LINEAR else "params"
        data["model"][key] = ["not", "numbers"]
        with pytest.raises(PersistenceError):
            predictor_from_dict(data)

    def test_truncated_neural_params_rejected(self, small_dataset):
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.B, seed=0)
        predictor.fit(list(small_dataset))
        data = predictor_to_dict(predictor)
        data["model"]["params"] = data["model"]["params"][:-3]
        with pytest.raises(PersistenceError, match="parameter vector"):
            predictor_from_dict(data)

    def test_feature_count_mismatch_rejected(self, small_dataset):
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.B, seed=0)
        predictor.fit(list(small_dataset))
        data = predictor_to_dict(predictor)
        data["feature_set"] = "F"  # 8 features vs a 2-input network
        with pytest.raises(PersistenceError, match="inputs"):
            predictor_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_predictor(path)


@pytest.fixture(scope="module")
def fitted_ensemble(small_dataset):
    ensemble = EnsemblePredictor(
        ModelKind.LINEAR, FeatureSet.D, n_members=3, seed=5
    )
    ensemble.fit(list(small_dataset))
    return ensemble


class TestEnsemblePersistence:
    def test_roundtrip_bit_identical(self, fitted_ensemble, small_dataset):
        restored = ensemble_from_dict(ensemble_to_dict(fitted_ensemble))
        obs = list(small_dataset)
        means0, stds0 = fitted_ensemble.predict_observations(obs)
        means1, stds1 = restored.predict_observations(obs)
        np.testing.assert_array_equal(means1, means0)
        np.testing.assert_array_equal(stds1, stds0)

    def test_file_roundtrip(self, fitted_ensemble, tmp_path):
        path = tmp_path / "ensemble.json"
        save_ensemble(fitted_ensemble, path)
        restored = load_ensemble(path)
        assert restored.n_members == fitted_ensemble.n_members
        assert restored.kind is fitted_ensemble.kind
        assert restored.feature_set is fitted_ensemble.feature_set

    def test_metadata_preserved(self, fitted_ensemble):
        data = ensemble_to_dict(fitted_ensemble)
        assert data["artifact"] == "ensemble"
        assert data["format_version"] == FORMAT_VERSION
        restored = ensemble_from_dict(data)
        assert restored.processor_name == fitted_ensemble.processor_name
        assert restored.train_size == fitted_ensemble.train_size

    def test_unfitted_rejected(self):
        with pytest.raises(PersistenceError, match="unfitted"):
            ensemble_to_dict(EnsemblePredictor(n_members=3))

    def test_single_member_payload_rejected(self, fitted_ensemble):
        data = ensemble_to_dict(fitted_ensemble)
        data["members"] = data["members"][:1]
        with pytest.raises(PersistenceError, match="at least two"):
            ensemble_from_dict(data)

    def test_cross_loading_rejected(self, fitted_ensemble, fitted_predictor):
        with pytest.raises(PersistenceError, match="not a single predictor"):
            predictor_from_dict(ensemble_to_dict(fitted_ensemble))
        with pytest.raises(PersistenceError, match="not an ensemble"):
            ensemble_from_dict(predictor_to_dict(fitted_predictor))


class TestArtifactDispatch:
    def test_dispatch_on_type(self, fitted_predictor, fitted_ensemble):
        assert artifact_to_dict(fitted_predictor)["artifact"] == "predictor"
        assert artifact_to_dict(fitted_ensemble)["artifact"] == "ensemble"

    def test_dispatch_on_payload(self, fitted_predictor, fitted_ensemble):
        restored = artifact_from_dict(artifact_to_dict(fitted_predictor))
        assert isinstance(restored, PerformancePredictor)
        restored = artifact_from_dict(artifact_to_dict(fitted_ensemble))
        assert isinstance(restored, EnsemblePredictor)

    def test_file_dispatch(self, fitted_predictor, fitted_ensemble, tmp_path):
        p_path, e_path = tmp_path / "p.json", tmp_path / "e.json"
        save_artifact(fitted_predictor, p_path)
        save_artifact(fitted_ensemble, e_path)
        assert isinstance(load_artifact(p_path), PerformancePredictor)
        assert isinstance(load_artifact(e_path), EnsemblePredictor)

    def test_foreign_type_rejected(self):
        with pytest.raises(PersistenceError, match="cannot serialize"):
            artifact_to_dict(object())


class TestFormatVersions:
    def test_writers_emit_current_version(self, fitted_predictor):
        assert predictor_to_dict(fitted_predictor)["format_version"] == 2

    def test_v1_payload_still_loads(self, fitted_predictor, small_dataset):
        """A pre-registry artifact (no 'artifact' key) must keep loading."""
        data = predictor_to_dict(fitted_predictor)
        data["format_version"] = 1
        del data["artifact"]
        del data["train_size"]
        restored = predictor_from_dict(data)
        obs = list(small_dataset)
        np.testing.assert_array_equal(
            restored.predict_observations(obs),
            fitted_predictor.predict_observations(obs),
        )
        assert restored.train_size is None

    def test_v2_requires_artifact_key(self, fitted_predictor):
        data = predictor_to_dict(fitted_predictor)
        del data["artifact"]
        with pytest.raises(PersistenceError, match="unknown artifact kind"):
            predictor_from_dict(data)

    def test_readable_versions_contract(self):
        assert FORMAT_VERSION in READABLE_VERSIONS
        assert 1 in READABLE_VERSIONS
