"""Tests for PCA feature ranking."""

import numpy as np
import pytest

from repro.core.pca import PCA, rank_features


@pytest.fixture
def correlated_data(rng):
    n = 500
    latent = rng.normal(size=n)
    X = np.column_stack(
        [
            latent + 0.1 * rng.normal(size=n),       # strong loading
            2.0 * latent + 0.1 * rng.normal(size=n),  # strong loading
            rng.normal(size=n) * 0.05,                # weak noise feature
        ]
    )
    return X


class TestPCA:
    def test_explained_variance_ordered(self, correlated_data):
        pca = PCA().fit(correlated_data)
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-12)

    def test_variance_ratio_sums_to_one(self, correlated_data):
        pca = PCA().fit(correlated_data)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_first_component_captures_latent(self, correlated_data):
        pca = PCA().fit(correlated_data)
        assert pca.explained_variance_ratio_[0] > 0.6

    def test_components_orthonormal(self, correlated_data):
        pca = PCA().fit(correlated_data)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(gram.shape[0]), atol=1e-10)

    def test_transform_shape(self, correlated_data):
        pca = PCA(n_components=2).fit(correlated_data)
        scores = pca.transform(correlated_data)
        assert scores.shape == (correlated_data.shape[0], 2)

    def test_transform_decorrelates(self, correlated_data):
        scores = PCA().fit_transform(correlated_data)
        cov = np.cov(scores, rowvar=False)
        off = cov - np.diag(np.diag(cov))
        assert np.abs(off).max() < 1e-8

    def test_inverse_transform_roundtrip(self, correlated_data):
        pca = PCA().fit(correlated_data)  # all components kept
        scores = pca.transform(correlated_data)
        back = pca.inverse_transform(scores)
        np.testing.assert_allclose(back, correlated_data, atol=1e-8)

    def test_constant_feature_handled(self, rng):
        X = np.column_stack([rng.normal(size=100), np.full(100, 7.0)])
        pca = PCA().fit(X)
        assert np.all(np.isfinite(pca.components_))
        assert pca.explained_variance_ratio_[0] == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            PCA().transform(np.zeros((3, 2)))

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            PCA().fit(np.zeros(5))
        with pytest.raises(ValueError, match="two samples"):
            PCA().fit(np.zeros((1, 3)))
        with pytest.raises(ValueError, match="n_components"):
            PCA(n_components=5).fit(rng.normal(size=(10, 3)))


class TestFeatureImportance:
    def test_importance_sums_to_one(self, correlated_data):
        imp = PCA().fit(correlated_data).feature_importance()
        assert imp.sum() == pytest.approx(1.0)

    def test_noise_feature_ranked_last(self, correlated_data):
        ranking = rank_features(correlated_data, ["a", "b", "noise"])
        assert ranking[-1][0] == "noise"

    def test_rank_features_sorted(self, correlated_data):
        ranking = rank_features(correlated_data, ["a", "b", "c"])
        scores = [s for _n, s in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_rank_features_validation(self, correlated_data):
        with pytest.raises(ValueError, match="names must match"):
            rank_features(correlated_data, ["only", "two"])
