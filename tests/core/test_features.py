"""Tests for Table I features and co-location observations."""

import numpy as np
import pytest

from repro.core.features import (
    FEATURE_DESCRIPTIONS,
    CoLocationObservation,
    Feature,
    feature_matrix,
    feature_row,
    observation_from_profiles,
)
from repro.counters.hpcrun import hpcrun_flat
from repro.workloads.suite import get_application


def make_observation(**overrides):
    defaults = dict(
        processor_name="Xeon E5649",
        frequency_ghz=2.53,
        target_name="canneal",
        co_app_name="cg",
        base_ex_time_s=220.0,
        num_co_app=3,
        co_app_mem=0.024,
        target_mem=0.005,
        co_app_cm_ca=2.4,
        co_app_ca_ins=0.06,
        target_cm_ca=0.6,
        target_ca_ins=0.0085,
        actual_time_s=290.0,
    )
    defaults.update(overrides)
    return CoLocationObservation(**defaults)


class TestFeatureEnum:
    def test_eight_features(self):
        assert len(Feature) == 8

    def test_descriptions_complete(self):
        assert set(FEATURE_DESCRIPTIONS) == set(Feature)

    def test_table1_names(self):
        assert Feature.BASE_EX_TIME.value == "baseExTime"
        assert Feature.CO_APP_CM_CA.value == "coAppCM/CA"


class TestCoLocationObservation:
    def test_feature_values(self):
        obs = make_observation()
        assert obs.feature_value(Feature.BASE_EX_TIME) == 220.0
        assert obs.feature_value(Feature.NUM_CO_APP) == 3.0
        assert obs.feature_value(Feature.CO_APP_MEM) == 0.024
        assert obs.feature_value(Feature.TARGET_CA_INS) == 0.0085

    def test_slowdown(self):
        obs = make_observation()
        assert obs.slowdown == pytest.approx(290.0 / 220.0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"base_ex_time_s": 0.0},
            {"actual_time_s": -1.0},
            {"num_co_app": -1},
            {"co_app_mem": -0.1},
            {"target_cm_ca": -0.5},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            make_observation(**overrides)


class TestObservationFromProfiles:
    def test_sums_over_co_apps(self, engine_6core):
        target = hpcrun_flat(engine_6core, get_application("canneal"))
        co = hpcrun_flat(engine_6core, get_application("cg"))
        obs = observation_from_profiles(target, [co, co, co], 300.0)
        assert obs.num_co_app == 3
        assert obs.co_app_mem == pytest.approx(3 * co.memory_intensity)
        assert obs.co_app_cm_ca == pytest.approx(3 * co.cm_per_ca)
        assert obs.co_app_ca_ins == pytest.approx(3 * co.ca_per_ins)

    def test_target_fields(self, engine_6core):
        target = hpcrun_flat(engine_6core, get_application("sp"))
        obs = observation_from_profiles(target, [], target.wall_time_s)
        assert obs.target_name == "sp"
        assert obs.base_ex_time_s == target.wall_time_s
        assert obs.target_mem == pytest.approx(target.memory_intensity)
        assert obs.co_app_name is None
        assert obs.num_co_app == 0

    def test_co_app_name_inference(self, engine_6core):
        target = hpcrun_flat(engine_6core, get_application("sp"))
        cg = hpcrun_flat(engine_6core, get_application("cg"))
        ep = hpcrun_flat(engine_6core, get_application("ep"))
        homog = observation_from_profiles(target, [cg, cg], 200.0)
        assert homog.co_app_name == "cg"
        mixed = observation_from_profiles(target, [cg, ep], 200.0)
        assert mixed.co_app_name == "cg+ep"


class TestFeatureMatrix:
    def test_shape_and_order(self):
        observations = [make_observation(actual_time_s=250.0 + i) for i in range(5)]
        feats = (Feature.BASE_EX_TIME, Feature.NUM_CO_APP)
        X, y = feature_matrix(observations, feats)
        assert X.shape == (5, 2)
        np.testing.assert_allclose(X[:, 0], 220.0)
        np.testing.assert_allclose(X[:, 1], 3.0)
        np.testing.assert_allclose(y, 250.0 + np.arange(5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            feature_matrix([], (Feature.BASE_EX_TIME,))
        with pytest.raises(ValueError):
            feature_matrix([make_observation()], ())


class TestFeatureRow:
    def test_matches_observation_path(self, engine_6core):
        target = hpcrun_flat(engine_6core, get_application("canneal"))
        co = hpcrun_flat(engine_6core, get_application("cg"))
        feats = tuple(Feature)
        row = feature_row(target, [co, co], feats)
        obs = observation_from_profiles(target, [co, co], 1.0)
        expected = np.array([obs.feature_value(f) for f in feats])
        np.testing.assert_allclose(row, expected)
