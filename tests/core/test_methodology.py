"""Tests for the end-to-end methodology and predictor API."""

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.linear import LinearModel
from repro.core.methodology import (
    ModelKind,
    PerformancePredictor,
    evaluate_models,
    make_model,
)
from repro.core.neural import NeuralNetworkModel, default_hidden_units
from repro.counters.hpcrun import hpcrun_flat
from repro.workloads.suite import get_application


class TestMakeModel:
    def test_linear(self):
        model = make_model(ModelKind.LINEAR, FeatureSet.A)
        assert isinstance(model, LinearModel)

    def test_neural_hidden_size_follows_feature_count(self):
        for fs in FeatureSet:
            model = make_model(ModelKind.NEURAL, fs)
            assert isinstance(model, NeuralNetworkModel)
            assert model.hidden_units == default_hidden_units(len(fs.features))

    def test_neural_rng_binding(self, small_dataset, rng):
        from repro.core.features import feature_matrix

        X, y = feature_matrix(list(small_dataset), FeatureSet.C.features)
        m1 = make_model(ModelKind.NEURAL, FeatureSet.C, rng=np.random.default_rng(5))
        m2 = make_model(ModelKind.NEURAL, FeatureSet.C, rng=np.random.default_rng(5))
        m1.fit(X, y)
        m2.fit(X, y)
        np.testing.assert_array_equal(m1.predict(X), m2.predict(X))


class TestEvaluateModels:
    def test_twelve_models_by_default(self, small_dataset):
        evals = evaluate_models(list(small_dataset), repetitions=2)
        assert len(evals) == 12
        labels = {e.label for e in evals}
        assert "linear/A" in labels and "neural/F" in labels

    def test_restricted_grid(self, small_dataset):
        evals = evaluate_models(
            list(small_dataset),
            kinds=(ModelKind.LINEAR,),
            feature_sets=(FeatureSet.A, FeatureSet.F),
            repetitions=2,
        )
        assert len(evals) == 2

    def test_deterministic_given_seed(self, small_dataset):
        e1 = evaluate_models(
            list(small_dataset),
            kinds=(ModelKind.LINEAR,),
            repetitions=3,
            seed=9,
        )
        e2 = evaluate_models(
            list(small_dataset),
            kinds=(ModelKind.LINEAR,),
            repetitions=3,
            seed=9,
        )
        for a, b in zip(e1, e2):
            np.testing.assert_array_equal(a.result.test_mpe, b.result.test_mpe)

    def test_errors_are_finite_percentages(self, small_dataset):
        evals = evaluate_models(
            list(small_dataset), kinds=(ModelKind.LINEAR,), repetitions=2
        )
        for e in evals:
            assert 0.0 <= e.result.mean_test_mpe < 100.0
            assert 0.0 <= e.result.mean_test_nrmse < 100.0

    def test_workers_do_not_change_results(self, small_dataset):
        def run(workers):
            return evaluate_models(
                list(small_dataset),
                kinds=(ModelKind.NEURAL,),
                feature_sets=(FeatureSet.C,),
                repetitions=3,
                seed=9,
                workers=workers,
                batched_restarts=True,
            )

        serial, parallel = run(1), run(2)
        for a, b in zip(serial, parallel):
            np.testing.assert_array_equal(a.result.test_mpe, b.result.test_mpe)
            np.testing.assert_array_equal(
                a.result.test_nrmse, b.result.test_nrmse
            )

    def test_shared_stats_accumulate(self, small_dataset):
        from repro.core.fitstats import FitStats

        stats = FitStats()
        evals = evaluate_models(
            list(small_dataset),
            kinds=(ModelKind.LINEAR,),
            feature_sets=(FeatureSet.A, FeatureSet.B),
            repetitions=2,
            stats=stats,
        )
        assert stats.fits == sum(e.result.repetitions for e in evals) == 4


class TestPerformancePredictor:
    def test_fit_predict_time(self, small_dataset, engine_6core, baselines_6core):
        predictor = PerformancePredictor(ModelKind.LINEAR, FeatureSet.D)
        predictor.fit(list(small_dataset))
        fmax = engine_6core.processor.pstates.fastest.frequency_ghz
        target = baselines_6core.get("canneal", fmax)
        co = [baselines_6core.get("cg", fmax)] * 3
        t = predictor.predict_time(target, co)
        assert 100.0 < t < 1000.0

    def test_neural_predictor_tracks_simulator(
        self, small_dataset, engine_6core, baselines_6core
    ):
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F)
        predictor.fit(list(small_dataset))
        fmax = engine_6core.processor.pstates.fastest.frequency_ghz
        target = baselines_6core.get("canneal", fmax)
        co = [baselines_6core.get("cg", fmax)] * 3
        predicted = predictor.predict_time(target, co)
        actual = engine_6core.run(
            get_application("canneal"), [get_application("cg")] * 3
        ).target.execution_time_s
        assert predicted == pytest.approx(actual, rel=0.10)

    def test_predict_slowdown(self, small_dataset, baselines_6core, engine_6core):
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F)
        predictor.fit(list(small_dataset))
        fmax = engine_6core.processor.pstates.fastest.frequency_ghz
        target = baselines_6core.get("canneal", fmax)
        co = [baselines_6core.get("cg", fmax)] * 4
        slowdown = predictor.predict_slowdown(target, co)
        assert slowdown > 1.05

    def test_predict_observations(self, small_dataset):
        predictor = PerformancePredictor(ModelKind.LINEAR, FeatureSet.B)
        predictor.fit(list(small_dataset))
        preds = predictor.predict_observations(list(small_dataset))
        assert preds.shape == (len(small_dataset),)
        assert np.all(np.isfinite(preds))

    def test_unfitted_raises(self, baselines_6core):
        predictor = PerformancePredictor()
        assert not predictor.is_fitted
        target = baselines_6core.get("canneal", 2.53)
        with pytest.raises(RuntimeError, match="not fitted"):
            predictor.predict_time(target, [])

    def test_seed_reproducibility(self, small_dataset, baselines_6core):
        target = baselines_6core.get("sp", 2.53)
        co = [baselines_6core.get("cg", 2.53)] * 2
        p1 = PerformancePredictor(ModelKind.NEURAL, FeatureSet.E, seed=3)
        p1.fit(list(small_dataset))
        p2 = PerformancePredictor(ModelKind.NEURAL, FeatureSet.E, seed=3)
        p2.fit(list(small_dataset))
        assert p1.predict_time(target, co) == p2.predict_time(target, co)


class TestMachineConsistency:
    def test_processor_name_recorded(self, small_dataset):
        predictor = PerformancePredictor(ModelKind.LINEAR, FeatureSet.B)
        assert predictor.processor_name is None
        predictor.fit(list(small_dataset))
        assert predictor.processor_name == "Xeon E5649"

    def test_mixed_machine_training_rejected(self, small_dataset, engine_12core):
        import dataclasses

        alien = dataclasses.replace(
            small_dataset.observations[0], processor_name="Xeon E5-2697v2"
        )
        with pytest.raises(ValueError, match="mixes machines"):
            PerformancePredictor(ModelKind.LINEAR, FeatureSet.B).fit(
                list(small_dataset) + [alien]
            )

    def test_cross_machine_prediction_rejected(
        self, small_dataset, engine_12core
    ):
        from repro.counters.hpcrun import hpcrun_flat

        predictor = PerformancePredictor(ModelKind.LINEAR, FeatureSet.B)
        predictor.fit(list(small_dataset))
        foreign = hpcrun_flat(engine_12core, get_application("canneal"))
        with pytest.raises(ValueError, match="trained on"):
            predictor.predict_time(foreign, [])

    def test_persistence_preserves_provenance(
        self, small_dataset, baselines_6core, engine_12core
    ):
        """Saved models remember their machine and keep enforcing it."""
        from repro.core.persistence import predictor_from_dict, predictor_to_dict

        predictor = PerformancePredictor(ModelKind.LINEAR, FeatureSet.B)
        predictor.fit(list(small_dataset))
        loaded = predictor_from_dict(predictor_to_dict(predictor))
        assert loaded.processor_name == "Xeon E5649"
        target = baselines_6core.get("canneal", 2.53)
        assert loaded.predict_time(target, []) > 0
        foreign = hpcrun_flat(engine_12core, get_application("canneal"))
        with pytest.raises(ValueError, match="trained on"):
            loaded.predict_time(foreign, [])

    def test_legacy_payload_without_provenance_accepted(self, small_dataset):
        """Payloads missing processor_name load with enforcement off."""
        from repro.core.persistence import predictor_from_dict, predictor_to_dict

        predictor = PerformancePredictor(ModelKind.LINEAR, FeatureSet.B)
        predictor.fit(list(small_dataset))
        data = predictor_to_dict(predictor)
        del data["processor_name"]
        loaded = predictor_from_dict(data)
        assert loaded.processor_name is None
