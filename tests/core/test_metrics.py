"""Tests for MPE (Eq. 2) and NRMSE (Eq. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import mae, mpe, nrmse, percent_errors, rmse


class TestPercentErrors:
    def test_signed(self):
        errs = percent_errors(np.array([110.0, 90.0]), np.array([100.0, 100.0]))
        np.testing.assert_allclose(errs, [10.0, -10.0])

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError, match="nonzero"):
            percent_errors(np.array([1.0]), np.array([0.0]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            percent_errors(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            percent_errors(np.array([]), np.array([]))


class TestMPE:
    def test_perfect_prediction(self):
        y = np.array([150.0, 400.0, 1000.0])
        assert mpe(y, y) == 0.0

    def test_known_value(self):
        assert mpe(np.array([110.0, 95.0]), np.array([100.0, 100.0])) == pytest.approx(7.5)

    def test_magnitude_independent(self):
        """The paper's motivation: same relative error, any scale."""
        a = mpe(np.array([1.05]), np.array([1.0]))
        b = mpe(np.array([1050.0]), np.array([1000.0]))
        assert a == pytest.approx(b)

    def test_symmetric_in_sign_of_error(self):
        assert mpe(np.array([110.0]), np.array([100.0])) == pytest.approx(
            mpe(np.array([90.0]), np.array([100.0]))
        )


class TestNRMSE:
    def test_perfect_prediction(self):
        y = np.array([100.0, 200.0])
        assert nrmse(y, y) == 0.0

    def test_known_value(self):
        pred = np.array([110.0, 200.0])
        actual = np.array([100.0, 200.0])
        # RMSE = sqrt(100/2), range = 100.
        assert nrmse(pred, actual) == pytest.approx(100.0 * np.sqrt(50.0) / 100.0)

    def test_zero_range_rejected(self):
        with pytest.raises(ValueError, match="zero range"):
            nrmse(np.array([1.0, 2.0]), np.array([5.0, 5.0]))

    def test_scale_invariant(self):
        pred = np.array([1.1, 2.0, 2.9])
        actual = np.array([1.0, 2.0, 3.0])
        assert nrmse(pred, actual) == pytest.approx(nrmse(pred * 10, actual * 10))


class TestRMSEAndMAE:
    def test_rmse(self):
        assert rmse(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(5.0)
        )

    def test_mae(self):
        assert mae(np.array([1.0, -3.0]), np.array([0.0, 0.0])) == pytest.approx(2.0)

    def test_rmse_dominates_mae(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=100)
        actual = rng.normal(size=100)
        assert rmse(pred, actual) >= mae(pred, actual)


@given(
    actual=st.lists(
        st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=50
    ),
    scale=st.floats(min_value=0.5, max_value=2.0),
)
@settings(max_examples=50)
def test_property_mpe_of_scaled_predictions(actual, scale):
    """Predicting k*actual gives MPE exactly 100*|k-1|."""
    y = np.array(actual)
    assert mpe(y * scale, y) == pytest.approx(100.0 * abs(scale - 1.0), rel=1e-9)
