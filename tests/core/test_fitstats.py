"""Tests for the fit-statistics observability counters."""

from repro.core.fitstats import FitStats


class TestRecording:
    def test_starts_at_zero(self):
        stats = FitStats()
        assert stats.fits == 0
        assert stats.restarts == 0
        assert stats.scg_iterations == 0
        assert stats.wall_time_s == 0.0

    def test_record_fit_accumulates(self):
        stats = FitStats()
        stats.record_fit(restarts=2, scg_iterations=100, gradient_evals=180,
                         function_evals=180, wall_time_s=0.5)
        stats.record_fit(restarts=2, scg_iterations=50, gradient_evals=90,
                         function_evals=90, wall_time_s=0.25)
        assert stats.fits == 2
        assert stats.restarts == 4
        assert stats.scg_iterations == 150
        assert stats.gradient_evals == 270
        assert stats.wall_time_s == 0.75

    def test_record_fit_defaults_count_one_fit(self):
        stats = FitStats()
        stats.record_fit()
        assert stats.fits == 1
        assert stats.restarts == 1
        assert stats.scg_iterations == 0

    def test_merge(self):
        a, b = FitStats(), FitStats()
        a.record_fit(restarts=3, scg_iterations=30)
        b.record_fit(restarts=1, scg_iterations=10, wall_time_s=1.0)
        a.merge(b)
        assert a.fits == 2
        assert a.restarts == 4
        assert a.scg_iterations == 40
        assert a.wall_time_s == 1.0
        assert b.fits == 1  # merge does not mutate the source

    def test_reset(self):
        stats = FitStats()
        stats.record_fit(restarts=5, scg_iterations=500, wall_time_s=2.0)
        stats.reset()
        assert stats == FitStats()


class TestDerived:
    def test_rates_idle_are_zero(self):
        stats = FitStats()
        assert stats.iterations_per_fit == 0.0
        assert stats.fits_per_second == 0.0

    def test_rates(self):
        stats = FitStats()
        stats.record_fit(scg_iterations=300, wall_time_s=0.5)
        stats.record_fit(scg_iterations=100, wall_time_s=0.5)
        assert stats.iterations_per_fit == 200.0
        assert stats.fits_per_second == 2.0

    def test_summary_mentions_counts(self):
        stats = FitStats()
        stats.record_fit(restarts=2, scg_iterations=120, gradient_evals=200,
                         wall_time_s=0.5)
        text = stats.summary()
        assert "1 fits" in text
        assert "2 restarts" in text
        assert "120 SCG iterations" in text
        assert "fits/s" in text

    def test_summary_idle_omits_wall_time_line(self):
        assert "wall time" not in FitStats().summary()
