"""Tests for Table II feature sets."""

import pytest

from repro.core.feature_sets import FEATURE_SETS, FeatureSet, features_for
from repro.core.features import Feature


class TestFeatureSets:
    def test_six_sets(self):
        assert len(FeatureSet) == 6
        assert [fs.value for fs in FeatureSet] == ["A", "B", "C", "D", "E", "F"]

    def test_nested(self):
        """Each set strictly extends the previous (Table II structure)."""
        sets = [set(FEATURE_SETS[fs]) for fs in FeatureSet]
        for smaller, larger in zip(sets, sets[1:]):
            assert smaller < larger

    def test_set_a_is_baseline_only(self):
        assert FEATURE_SETS[FeatureSet.A] == (Feature.BASE_EX_TIME,)

    def test_set_f_uses_all_features(self):
        assert set(FEATURE_SETS[FeatureSet.F]) == set(Feature)

    def test_table2_increments(self):
        """The specific feature added at each step matches Table II."""
        diffs = []
        sets = list(FeatureSet)
        for prev, cur in zip(sets, sets[1:]):
            added = set(FEATURE_SETS[cur]) - set(FEATURE_SETS[prev])
            diffs.append(added)
        assert diffs[0] == {Feature.NUM_CO_APP}                      # B
        assert diffs[1] == {Feature.CO_APP_MEM}                      # C
        assert diffs[2] == {Feature.TARGET_MEM}                      # D
        assert diffs[3] == {Feature.CO_APP_CM_CA, Feature.CO_APP_CA_INS}  # E
        assert diffs[4] == {Feature.TARGET_CM_CA, Feature.TARGET_CA_INS}  # F

    def test_features_property(self):
        assert FeatureSet.C.features == FEATURE_SETS[FeatureSet.C]


class TestFeaturesFor:
    def test_accepts_enum(self):
        assert features_for(FeatureSet.B) == FEATURE_SETS[FeatureSet.B]

    def test_accepts_letter_any_case(self):
        assert features_for("d") == FEATURE_SETS[FeatureSet.D]
        assert features_for(" F ") == FEATURE_SETS[FeatureSet.F]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown feature set"):
            features_for("Z")
