"""Tests for class-level prediction (Section IV-B1's degraded mode)."""

import numpy as np
import pytest

from repro.core.classinfo import ClassProfiles, predict_time_from_classes
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.workloads.classes import MemoryIntensityClass, classify_intensity
from repro.workloads.suite import get_application


@pytest.fixture(scope="module")
def class_profiles(baselines_6core):
    fmax = 2.53
    profiles = [
        baselines_6core.get(name, fmax)
        for name in baselines_6core.app_names()
    ]
    return ClassProfiles.from_profiles(profiles)


class TestClassProfiles:
    def test_intensities_ordered_by_class(self, class_profiles):
        vals = [class_profiles.intensity[c] for c in MemoryIntensityClass]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_representatives_fall_in_their_class(self, class_profiles):
        for c in MemoryIntensityClass:
            assert classify_intensity(class_profiles.intensity[c]) is c

    def test_ratios_positive(self, class_profiles):
        for c in MemoryIntensityClass:
            assert class_profiles.cm_per_ca[c] > 0.0
            assert class_profiles.ca_per_ins[c] > 0.0

    def test_missing_class_falls_back(self, baselines_6core):
        # Build from Class IV apps only; other classes use fallbacks.
        profiles = [baselines_6core.get("ep", 2.53)]
        cp = ClassProfiles.from_profiles(profiles)
        assert classify_intensity(cp.intensity[MemoryIntensityClass.CLASS_I]) is (
            MemoryIntensityClass.CLASS_I
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClassProfiles.from_profiles([])

    def test_synthetic_profile_ratios(self, class_profiles, baselines_6core):
        template = baselines_6core.get("canneal", 2.53)
        synth = class_profiles.synthetic_profile(
            template, MemoryIntensityClass.CLASS_I
        )
        assert synth.memory_intensity == pytest.approx(
            class_profiles.intensity[MemoryIntensityClass.CLASS_I]
        )
        assert synth.ca_per_ins == pytest.approx(
            class_profiles.ca_per_ins[MemoryIntensityClass.CLASS_I]
        )
        assert synth.processor_name == template.processor_name


class TestPredictFromClasses:
    @pytest.fixture(scope="class")
    def predictor(self, small_dataset):
        p = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
        p.fit(list(small_dataset))
        return p

    def test_class_prediction_tracks_exact_prediction(
        self, predictor, class_profiles, baselines_6core, engine_6core
    ):
        """Knowing only 'three Class I co-runners' should land in the same
        regime as knowing they are exactly cg."""
        fmax = 2.53
        target = baselines_6core.get("canneal", fmax)
        exact = predictor.predict_time(
            target, [baselines_6core.get("cg", fmax)] * 3
        )
        by_class = predict_time_from_classes(
            predictor,
            class_profiles,
            target,
            [MemoryIntensityClass.CLASS_I] * 3,
        )
        assert by_class == pytest.approx(exact, rel=0.15)

    def test_heavier_classes_predict_longer_times(
        self, predictor, class_profiles, baselines_6core
    ):
        target = baselines_6core.get("canneal", 2.53)
        t_heavy = predict_time_from_classes(
            predictor, class_profiles, target, [MemoryIntensityClass.CLASS_I] * 4
        )
        t_light = predict_time_from_classes(
            predictor, class_profiles, target, [MemoryIntensityClass.CLASS_IV] * 4
        )
        assert t_heavy > t_light

    def test_mixed_classes(self, predictor, class_profiles, baselines_6core):
        target = baselines_6core.get("sp", 2.53)
        t = predict_time_from_classes(
            predictor,
            class_profiles,
            target,
            [MemoryIntensityClass.CLASS_I, MemoryIntensityClass.CLASS_IV],
        )
        assert np.isfinite(t) and t > 0.0
