"""Tests for the SCG-trained neural network model."""

import numpy as np
import pytest

from repro.core.fitstats import FitStats
from repro.core.neural import NeuralNetworkModel, default_hidden_units


class TestDefaultHiddenUnits:
    def test_paper_range(self):
        """Ten to twenty nodes depending on the feature set (Section III-D)."""
        sizes = [default_hidden_units(n) for n in range(1, 9)]
        assert sizes[0] == 10
        assert sizes[-1] == 20
        assert all(10 <= s <= 20 for s in sizes)
        assert sizes == sorted(sizes)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            default_hidden_units(0)


class TestFitPredict:
    def test_learns_linear_function(self, rng):
        X = rng.normal(size=(300, 2))
        y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 5.0
        model = NeuralNetworkModel(hidden_units=8).fit(X, y, rng=rng)
        pred = model.predict(X)
        rel = np.abs(pred - y) / (np.abs(y) + 1.0)
        assert np.mean(rel) < 0.05

    def test_learns_nonlinear_function(self, rng):
        """The motivating case: NNs capture what Eq. 1 cannot."""
        X = rng.uniform(-2, 2, size=(400, 2))
        y = np.sin(X[:, 0] * 2.0) + X[:, 1] ** 2
        nn = NeuralNetworkModel(hidden_units=16, max_iterations=600).fit(
            X, y, rng=rng
        )
        nn_rmse = float(np.sqrt(np.mean((nn.predict(X) - y) ** 2)))
        from repro.core.linear import LinearModel

        lin = LinearModel().fit(X, y)
        lin_rmse = float(np.sqrt(np.mean((lin.predict(X) - y) ** 2)))
        assert nn_rmse < lin_rmse * 0.5

    def test_predictions_in_original_units(self, rng):
        X = rng.normal(size=(100, 1))
        y = 1000.0 + 50.0 * X[:, 0]  # large offset, real-time-like scale
        model = NeuralNetworkModel(hidden_units=6).fit(X, y, rng=rng)
        pred = model.predict(X)
        assert 800.0 < pred.mean() < 1200.0

    def test_deterministic_given_rng_seed(self, rng):
        X = rng.normal(size=(50, 2))
        y = X.sum(axis=1)
        m1 = NeuralNetworkModel(hidden_units=5).fit(X, y, rng=np.random.default_rng(3))
        m2 = NeuralNetworkModel(hidden_units=5).fit(X, y, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(m1.predict(X), m2.predict(X))

    def test_default_rng_when_omitted(self, rng):
        X = rng.normal(size=(30, 2))
        y = X.sum(axis=1)
        m1 = NeuralNetworkModel(hidden_units=4).fit(X, y)
        m2 = NeuralNetworkModel(hidden_units=4).fit(X, y)
        np.testing.assert_array_equal(m1.predict(X), m2.predict(X))

    def test_predict_1d_input(self, rng):
        X = rng.normal(size=(40, 3))
        y = X.sum(axis=1)
        model = NeuralNetworkModel(hidden_units=4).fit(X, y, rng=rng)
        assert model.predict(X[0]).shape == (1,)

    def test_hidden_units_from_feature_count(self, rng):
        X = rng.normal(size=(60, 4))
        y = X.sum(axis=1)
        model = NeuralNetworkModel().fit(X, y, rng=rng)
        assert model._shapes == (4, default_hidden_units(4))

    def test_restarts_pick_best_loss(self, rng):
        X = rng.normal(size=(80, 2))
        y = np.sin(X[:, 0]) + X[:, 1]
        one = NeuralNetworkModel(hidden_units=6, n_restarts=1).fit(
            X, y, rng=np.random.default_rng(0)
        )
        many = NeuralNetworkModel(hidden_units=6, n_restarts=4).fit(
            X, y, rng=np.random.default_rng(0)
        )
        assert many.training_loss_ <= one.training_loss_ + 1e-12

    def test_constant_target_handled(self, rng):
        X = rng.normal(size=(30, 2))
        y = np.full(30, 42.0)
        model = NeuralNetworkModel(hidden_units=4).fit(X, y, rng=rng)
        np.testing.assert_allclose(model.predict(X), 42.0, atol=1.0)


class TestGradient:
    def test_backprop_matches_finite_differences(self, rng):
        """The analytic gradient must match numeric differentiation."""
        X = rng.normal(size=(20, 3))
        y = rng.normal(size=20)
        model = NeuralNetworkModel(hidden_units=4, l2=1e-3)
        model._shapes = (3, 4)
        n_params = 3 * 4 + 4 + 4 + 1
        params = rng.normal(size=n_params) * 0.5
        Z = (X - X.mean(0)) / X.std(0)
        t = (y - y.mean()) / y.std()
        loss, grad = model._loss_and_grad(params, Z, t)
        eps = 1e-6
        numeric = np.empty_like(params)
        for i in range(n_params):
            up, down = params.copy(), params.copy()
            up[i] += eps
            down[i] -= eps
            numeric[i] = (
                model._loss_and_grad(up, Z, t)[0]
                - model._loss_and_grad(down, Z, t)[0]
            ) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)


class TestValidation:
    def test_unfitted(self):
        model = NeuralNetworkModel()
        assert not model.is_fitted
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict(np.zeros((1, 2)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NeuralNetworkModel(hidden_units=0)
        with pytest.raises(ValueError):
            NeuralNetworkModel(l2=-1.0)
        with pytest.raises(ValueError):
            NeuralNetworkModel(n_restarts=0)
        with pytest.raises(ValueError):
            NeuralNetworkModel(max_iterations=0)

    def test_fit_shape_validation(self, rng):
        model = NeuralNetworkModel()
        with pytest.raises(ValueError, match="2-D"):
            model.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError, match="disagree"):
            model.fit(np.zeros((5, 2)), np.zeros(3))
        with pytest.raises(ValueError, match="two training samples"):
            model.fit(np.zeros((1, 2)), np.zeros(1))


class TestBatchedRestarts:
    def test_bitwise_identical_to_serial(self, rng):
        """Batched multi-restart fitting reproduces the serial path exactly."""
        X = rng.normal(size=(80, 3))
        y = np.sin(X[:, 0]) - 2.0 * X[:, 1] + X[:, 2] ** 2
        for seed in (0, 7, 42):
            serial = NeuralNetworkModel(hidden_units=8, n_restarts=4).fit(
                X, y, rng=np.random.default_rng(seed)
            )
            batched = NeuralNetworkModel(
                hidden_units=8, n_restarts=4, batched_restarts=True
            ).fit(X, y, rng=np.random.default_rng(seed))
            np.testing.assert_array_equal(
                serial.restart_losses_, batched.restart_losses_
            )
            assert serial.training_loss_ == batched.training_loss_
            assert (
                np.argmin(serial.restart_losses_)
                == np.argmin(batched.restart_losses_)
            )
            np.testing.assert_array_equal(
                serial.predict(X), batched.predict(X)
            )

    def test_restart_losses_recorded(self, rng):
        X = rng.normal(size=(40, 2))
        y = X.sum(axis=1)
        model = NeuralNetworkModel(hidden_units=4, n_restarts=3).fit(
            X, y, rng=rng
        )
        assert model.restart_losses_.shape == (3,)
        assert model.training_loss_ == model.restart_losses_.min()

    def test_all_restarts_diverged_is_descriptive(self):
        model = NeuralNetworkModel(hidden_units=2, n_restarts=2)
        with pytest.raises(RuntimeError, match="restart"):
            model._select_best(np.array([float("nan"), float("inf")]))

    def test_select_best_skips_non_finite(self):
        model = NeuralNetworkModel(hidden_units=2)
        losses = np.array([np.nan, 3.0, np.inf, 1.0, 2.0])
        assert model._select_best(losses) == 3


class TestFitStatsIntegration:
    def test_fit_records_stats(self, rng):
        X = rng.normal(size=(40, 2))
        y = X.sum(axis=1)
        model = NeuralNetworkModel(hidden_units=4, n_restarts=3).fit(
            X, y, rng=rng
        )
        stats = model.fit_stats_
        assert stats.fits == 1
        assert stats.restarts == 3
        assert stats.scg_iterations > 0
        assert stats.gradient_evals > 0
        assert stats.wall_time_s > 0.0

    def test_shared_stats_accumulate_across_fits(self, rng):
        X = rng.normal(size=(40, 2))
        y = X.sum(axis=1)
        shared = FitStats()
        model = NeuralNetworkModel(hidden_units=4, stats=shared)
        model.fit(X, y, rng=np.random.default_rng(0))
        model.fit(X, y, rng=np.random.default_rng(1))
        assert shared.fits == 2
        assert shared.scg_iterations >= model.fit_stats_.scg_iterations

    def test_batched_and_serial_count_same_iterations(self, rng):
        X = rng.normal(size=(60, 2))
        y = np.sin(X[:, 0]) + X[:, 1]
        serial = NeuralNetworkModel(hidden_units=5, n_restarts=3).fit(
            X, y, rng=np.random.default_rng(5)
        )
        batched = NeuralNetworkModel(
            hidden_units=5, n_restarts=3, batched_restarts=True
        ).fit(X, y, rng=np.random.default_rng(5))
        assert (
            serial.fit_stats_.scg_iterations
            == batched.fit_stats_.scg_iterations
        )
        assert serial.fit_stats_.restarts == batched.fit_stats_.restarts
