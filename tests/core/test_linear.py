"""Tests for the linear least-squares model (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.linear import LinearModel


class TestFitPredict:
    def test_recovers_exact_linear_relationship(self, rng):
        X = rng.normal(size=(100, 3))
        true_w = np.array([2.0, -1.5, 0.5])
        y = X @ true_w + 4.0
        model = LinearModel().fit(X, y)
        np.testing.assert_allclose(model.coefficients, true_w, atol=1e-8)
        assert model.intercept == pytest.approx(4.0, abs=1e-8)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-8)

    def test_eq1_composition(self, rng):
        """predict(x) == sum(coef * x) + intercept, in raw units."""
        X = rng.normal(size=(50, 2)) * np.array([1e3, 1e-6])  # wild scales
        y = rng.normal(size=50) + 100.0
        model = LinearModel().fit(X, y)
        x = rng.normal(size=2) * np.array([1e3, 1e-6])
        manual = float(model.coefficients @ x) + model.intercept
        assert model.predict(x)[0] == pytest.approx(manual, rel=1e-9)

    def test_noisy_fit_near_truth(self, rng):
        X = rng.normal(size=(500, 2))
        y = X @ np.array([3.0, 1.0]) + 2.0 + rng.normal(scale=0.1, size=500)
        model = LinearModel().fit(X, y)
        np.testing.assert_allclose(model.coefficients, [3.0, 1.0], atol=0.05)

    def test_single_feature(self, rng):
        X = rng.uniform(1, 10, size=(30, 1))
        y = 5.0 * X[:, 0]
        model = LinearModel().fit(X, y)
        assert model.coefficients[0] == pytest.approx(5.0, rel=1e-9)

    def test_constant_feature_no_blowup(self, rng):
        X = np.column_stack([rng.normal(size=40), np.full(40, 3.0)])
        y = 2.0 * X[:, 0] + 1.0
        model = LinearModel().fit(X, y)
        pred = model.predict(X)
        np.testing.assert_allclose(pred, y, atol=1e-8)

    def test_predict_1d_input(self, rng):
        X = rng.normal(size=(20, 2))
        y = X @ np.array([1.0, 1.0])
        model = LinearModel().fit(X, y)
        out = model.predict(X[0])
        assert out.shape == (1,)


class TestValidation:
    def test_unfitted(self):
        model = LinearModel()
        assert not model.is_fitted
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            _ = model.coefficients

    def test_shape_errors(self, rng):
        model = LinearModel()
        with pytest.raises(ValueError, match="2-D"):
            model.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError, match="disagree"):
            model.fit(np.zeros((5, 2)), np.zeros(4))

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError, match="more samples"):
            LinearModel().fit(np.zeros((3, 3)), np.zeros(3))


@given(
    n=st.integers(min_value=10, max_value=60),
    d=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30)
def test_property_least_squares_residual_orthogonality(n, d, seed):
    """LS residuals are orthogonal to every (centered) feature column."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = rng.normal(size=n)
    model = LinearModel().fit(X, y)
    residual = y - model.predict(X)
    centered = X - X.mean(axis=0)
    np.testing.assert_allclose(centered.T @ residual, 0.0, atol=1e-6)
    # Residuals also orthogonal to the intercept column (mean zero).
    assert residual.mean() == pytest.approx(0.0, abs=1e-8)
