"""Tests for permutation feature importance."""

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.features import Feature, feature_matrix
from repro.core.importance import permutation_importance
from repro.core.linear import LinearModel
from repro.core.methodology import ModelKind, PerformancePredictor


@pytest.fixture(scope="module")
def fitted_nn_f(small_dataset):
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
    predictor.fit(list(small_dataset))
    return predictor._model


class TestPermutationImportance:
    def test_sorted_by_importance(self, fitted_nn_f, small_dataset, rng):
        importances = permutation_importance(
            fitted_nn_f, list(small_dataset), FeatureSet.F.features, rng=rng
        )
        increases = [fi.mpe_increase for fi in importances]
        assert increases == sorted(increases, reverse=True)
        assert len(importances) == 8

    def test_base_ex_time_is_load_bearing(self, fitted_nn_f, small_dataset, rng):
        """Scrambling the baseline time must devastate any model: it is
        the only feature carrying the target's scale."""
        importances = permutation_importance(
            fitted_nn_f, list(small_dataset), FeatureSet.F.features, rng=rng
        )
        by_feature = {fi.feature: fi.mpe_increase for fi in importances}
        assert by_feature[Feature.BASE_EX_TIME] > 5.0

    def test_ignored_feature_has_zero_importance(self, small_dataset, rng):
        """A model trained with a zero-weight feature should report ~0
        importance for it: train a linear model on (baseExTime, numCoApp)
        where we force the numCoApp coefficient to zero."""
        X, y = feature_matrix(
            list(small_dataset),
            (Feature.BASE_EX_TIME, Feature.NUM_CO_APP),
        )
        model = LinearModel().fit(X, y)
        # Zero out the second coefficient in standardized space.
        model._weights = model._weights.copy()
        model._weights[1] = 0.0
        importances = permutation_importance(
            model,
            list(small_dataset),
            (Feature.BASE_EX_TIME, Feature.NUM_CO_APP),
            rng=rng,
        )
        by_feature = {fi.feature: fi for fi in importances}
        assert by_feature[Feature.NUM_CO_APP].mpe_increase == pytest.approx(0.0)
        assert by_feature[Feature.BASE_EX_TIME].mpe_increase > 0.0

    def test_baseline_consistency(self, fitted_nn_f, small_dataset, rng):
        importances = permutation_importance(
            fitted_nn_f, list(small_dataset), FeatureSet.F.features, rng=rng
        )
        baselines = {fi.baseline_mpe for fi in importances}
        assert len(baselines) == 1  # same unpermuted error for all

    def test_deterministic_given_rng(self, fitted_nn_f, small_dataset):
        i1 = permutation_importance(
            fitted_nn_f, list(small_dataset), FeatureSet.F.features,
            rng=np.random.default_rng(3),
        )
        i2 = permutation_importance(
            fitted_nn_f, list(small_dataset), FeatureSet.F.features,
            rng=np.random.default_rng(3),
        )
        assert [fi.permuted_mpe for fi in i1] == [fi.permuted_mpe for fi in i2]

    def test_validation(self, fitted_nn_f, small_dataset):
        with pytest.raises(ValueError, match="repetition"):
            permutation_importance(
                fitted_nn_f, list(small_dataset), FeatureSet.F.features,
                repetitions=0,
            )
