"""Tests for greedy forward feature selection."""

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.features import Feature
from repro.core.linear import LinearModel
from repro.core.selection import forward_selection, rank_feature_sets


class TestForwardSelection:
    def test_full_trajectory_shape(self, small_dataset):
        steps = forward_selection(
            LinearModel, list(small_dataset), repetitions=3
        )
        assert len(steps) == 8
        # Selected sets grow by exactly one feature per step.
        for i, step in enumerate(steps):
            assert len(step.selected) == i + 1
            assert step.added == step.selected[-1]
        # No feature selected twice.
        assert len(set(steps[-1].selected)) == 8

    def test_first_pick_is_base_ex_time(self, small_dataset):
        """Alone, only baseExTime carries the target's scale — any sane
        search must pick it first."""
        steps = forward_selection(
            LinearModel, list(small_dataset), repetitions=3, max_features=1
        )
        assert steps[0].added is Feature.BASE_EX_TIME

    def test_error_non_increasing_early(self, small_dataset):
        """Adding informative features shouldn't hurt the linear model in
        the first few rounds (greedy keeps the best superset)."""
        steps = forward_selection(
            LinearModel, list(small_dataset), repetitions=5,
            max_features=4, rng=np.random.default_rng(1),
        )
        errors = [s.test_mpe for s in steps]
        assert errors[1] <= errors[0] * 1.05
        assert min(errors) == pytest.approx(errors[-1], rel=0.3)

    def test_max_features_limits_rounds(self, small_dataset):
        steps = forward_selection(
            LinearModel, list(small_dataset), repetitions=2, max_features=3
        )
        assert len(steps) == 3

    def test_restricted_candidates(self, small_dataset):
        cands = (Feature.BASE_EX_TIME, Feature.CO_APP_MEM)
        steps = forward_selection(
            LinearModel, list(small_dataset), candidates=cands, repetitions=2
        )
        assert {s.added for s in steps} == set(cands)

    def test_deterministic_given_rng(self, small_dataset):
        def run():
            return forward_selection(
                LinearModel, list(small_dataset), repetitions=3,
                max_features=4, rng=np.random.default_rng(7),
            )

        s1, s2 = run(), run()
        assert [s.added for s in s1] == [s.added for s in s2]
        assert [s.test_mpe for s in s1] == [s.test_mpe for s in s2]

    def test_validation(self, small_dataset):
        with pytest.raises(ValueError, match="candidate"):
            forward_selection(LinearModel, list(small_dataset), candidates=())
        with pytest.raises(ValueError, match="max_features"):
            forward_selection(
                LinearModel, list(small_dataset), max_features=9
            )
        with pytest.raises(ValueError, match="workers"):
            forward_selection(
                LinearModel, list(small_dataset), workers=0
            )

    def test_workers_do_not_change_trajectory(self, small_dataset):
        def run(workers):
            return forward_selection(
                LinearModel, list(small_dataset), repetitions=3,
                max_features=3, rng=np.random.default_rng(7),
                workers=workers,
            )

        serial, parallel = run(1), run(2)
        assert [s.added for s in serial] == [s.added for s in parallel]
        assert [s.test_mpe for s in serial] == [s.test_mpe for s in parallel]


class TestRankFeatureSets:
    def test_ranks_every_set_best_first(self, small_dataset):
        ranking = rank_feature_sets(
            LinearModel, list(small_dataset), repetitions=3,
            rng=np.random.default_rng(1),
        )
        assert [fs for fs, _ in ranking] != []
        assert {fs for fs, _ in ranking} == set(FeatureSet)
        scores = [score for _, score in ranking]
        assert scores == sorted(scores)
        assert all(np.isfinite(scores))

    def test_deterministic_given_rng(self, small_dataset):
        def run():
            return rank_feature_sets(
                LinearModel, list(small_dataset), repetitions=3,
                rng=np.random.default_rng(4),
            )

        assert run() == run()

    def test_workers_do_not_change_ranking(self, small_dataset):
        def run(workers):
            return rank_feature_sets(
                LinearModel, list(small_dataset),
                feature_sets=(FeatureSet.A, FeatureSet.C, FeatureSet.F),
                repetitions=3, rng=np.random.default_rng(4),
                workers=workers,
            )

        assert run(1) == run(2)

    def test_restricted_sets_and_validation(self, small_dataset):
        ranking = rank_feature_sets(
            LinearModel, list(small_dataset),
            feature_sets=(FeatureSet.B, FeatureSet.D), repetitions=2,
        )
        assert {fs for fs, _ in ranking} == {FeatureSet.B, FeatureSet.D}
        with pytest.raises(ValueError, match="feature set"):
            rank_feature_sets(LinearModel, list(small_dataset), feature_sets=())
        with pytest.raises(ValueError, match="workers"):
            rank_feature_sets(LinearModel, list(small_dataset), workers=0)
