"""Tests for leave-one-group-out validation."""

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.features import feature_matrix
from repro.core.linear import LinearModel
from repro.core.validation import leave_one_group_out


@pytest.fixture
def grouped_data(rng):
    X = rng.normal(size=(120, 2))
    y = X @ np.array([2.0, 1.0]) + 50.0 + rng.normal(scale=0.1, size=120)
    groups = [f"g{i % 4}" for i in range(120)]
    return X, y, groups


class TestLeaveOneGroupOut:
    def test_one_fold_per_group(self, grouped_data):
        X, y, groups = grouped_data
        result = leave_one_group_out(LinearModel, X, y, groups)
        assert set(result.groups) == {"g0", "g1", "g2", "g3"}
        assert set(result.group_test_nrmse) == set(result.group_test_mpe)

    def test_easy_data_low_error_everywhere(self, grouped_data):
        X, y, groups = grouped_data
        result = leave_one_group_out(LinearModel, X, y, groups)
        assert all(v < 2.0 for v in result.group_test_mpe.values())
        assert result.mean_test_mpe < 2.0

    def test_worst_group_identified(self, rng):
        X = rng.normal(size=(90, 1))
        y = 3.0 * X[:, 0] + 10.0
        groups = ["a"] * 30 + ["b"] * 30 + ["weird"] * 30
        # Make the 'weird' group follow a different law.
        y[60:] = -3.0 * X[60:, 0] + 10.0
        result = leave_one_group_out(LinearModel, X, y, groups)
        assert result.worst_group == "weird"
        assert (
            result.group_test_mpe["weird"] > max(
                result.group_test_mpe["a"], result.group_test_mpe["b"]
            )
        )

    def test_groups_in_first_seen_order(self, rng):
        X = rng.normal(size=(12, 1))
        y = X[:, 0] + 10.0
        groups = ["z", "z", "z", "a", "a", "a", "m", "m", "m", "z", "a", "m"]
        result = leave_one_group_out(LinearModel, X, y, groups)
        assert result.groups == ["z", "a", "m"]

    def test_validation(self, grouped_data):
        X, y, groups = grouped_data
        with pytest.raises(ValueError, match="one group label per row"):
            leave_one_group_out(LinearModel, X, y, groups[:-1])
        with pytest.raises(ValueError, match="at least two groups"):
            leave_one_group_out(LinearModel, X, y, ["same"] * len(y))
        with pytest.raises(ValueError, match="X must be"):
            leave_one_group_out(LinearModel, X, y[:-1], groups[:-1])

    def test_leave_one_target_out_on_real_data(self, small_dataset):
        """The paper-adjacent use: hold out every observation of one
        target application; the model must still predict it sensibly.

        With only four targets in the reduced dataset, target-specific
        cache features (set F) become wildly extrapolative when a target
        is excluded — so this uses set C (baseline time + co-runner
        info), where a held-out target differs only in baseExTime.
        """
        observations = list(small_dataset)
        X, y = feature_matrix(observations, FeatureSet.C.features)
        groups = [o.target_name for o in observations]
        result = leave_one_group_out(LinearModel, X, y, groups)
        assert len(result.groups) == 4
        # Unseen-target prediction is harder than random splits but must
        # stay in a usable band on this small set.
        assert result.mean_test_mpe < 30.0

    def test_set_f_extrapolation_is_visible(self, small_dataset):
        """The flip side, captured as behaviour: with only three training
        targets, set F's target-specific features make the held-out
        target an extreme extrapolation — LOTO exposes it where random
        splits cannot."""
        observations = list(small_dataset)
        X, y = feature_matrix(observations, FeatureSet.F.features)
        groups = [o.target_name for o in observations]
        result = leave_one_group_out(LinearModel, X, y, groups)
        assert result.group_test_mpe[result.worst_group] > 100.0


class TestSingletonGroups:
    def test_singleton_group_rejected_up_front(self, rng):
        """Regression: a 1-row group used to crash inside nrmse."""
        X = rng.normal(size=(9, 2))
        y = rng.normal(size=9)
        groups = ["a"] * 4 + ["b"] * 4 + ["lonely"]
        with pytest.raises(ValueError, match="'lonely'.*singleton"):
            leave_one_group_out(LinearModel, X, y, groups)

    def test_two_row_groups_accepted(self, rng):
        X = rng.normal(size=(8, 1))
        y = X[:, 0] * 3.0 + rng.normal(scale=0.01, size=8)
        groups = ["a", "a", "b", "b", "c", "c", "d", "d"]
        result = leave_one_group_out(LinearModel, X, y, groups)
        assert set(result.groups) == {"a", "b", "c", "d"}
