"""Suite spec parsing, validation, and matrix expansion."""

import json

import pytest

from repro.suite import CaseSpec, SuiteSpecError, load_suite, parse_suite


class TestCaseSpec:
    def test_defaults(self):
        case = CaseSpec(name="c")
        assert case.machine == "e5649"
        assert case.sampling == "grid"
        assert case.seed == 2015
        assert case.model_kinds == ("linear", "neural")

    def test_bad_name(self):
        with pytest.raises(SuiteSpecError, match="bad case name"):
            CaseSpec(name="no spaces")

    def test_bad_sampling(self):
        with pytest.raises(SuiteSpecError, match="sampling must be"):
            CaseSpec(name="c", sampling="stratified")

    def test_random_needs_budget(self):
        with pytest.raises(SuiteSpecError, match="positive 'budget'"):
            CaseSpec(name="c", sampling="random")

    def test_grid_rejects_budget(self):
        with pytest.raises(SuiteSpecError, match="only applies"):
            CaseSpec(name="c", budget=5)

    def test_bad_count(self):
        with pytest.raises(SuiteSpecError, match="counts must be"):
            CaseSpec(name="c", counts=(0,))

    def test_catalog_rejects_unknown_machine(self):
        case = CaseSpec(name="c", machine="i9")
        with pytest.raises(SuiteSpecError, match="unknown processor"):
            case.validate_catalog()

    def test_catalog_rejects_unknown_app(self):
        case = CaseSpec(name="c", targets=("doom",))
        with pytest.raises(SuiteSpecError, match="unknown application"):
            case.validate_catalog()

    def test_catalog_rejects_unknown_kind(self):
        case = CaseSpec(name="c", model_kinds=("forest",))
        with pytest.raises(SuiteSpecError, match="unknown model kind"):
            case.validate_catalog()

    def test_catalog_rejects_unknown_feature_set(self):
        case = CaseSpec(name="c", feature_sets=("Z",))
        with pytest.raises(SuiteSpecError, match="unknown feature set"):
            case.validate_catalog()

    def test_collect_spec_is_canonical(self):
        case = CaseSpec(name="c", counts=(1, 2), frequencies_ghz=(2.53,))
        spec = case.collect_spec()
        assert spec["counts"] == [1, 2]
        assert spec["seed"] == 2015
        assert "budget" not in spec
        spec2 = CaseSpec(
            name="c", counts=(1, 2), frequencies_ghz=(2.53,)
        ).collect_spec()
        assert json.dumps(spec) == json.dumps(spec2)


class TestParseSuite:
    def test_minimal(self):
        suite = parse_suite(
            {"suite": "s", "cases": [{"name": "a", "targets": ["cg"]}]}
        )
        assert suite.name == "s"
        assert suite.case("a").targets == ("cg",)

    def test_defaults_merge_and_override(self):
        suite = parse_suite(
            {
                "suite": "s",
                "defaults": {"seed": 9, "machine": "e5-2697v2"},
                "cases": [
                    {"name": "a"},
                    {"name": "b", "seed": 1},
                ],
            }
        )
        assert suite.case("a").seed == 9
        assert suite.case("a").machine == "e5-2697v2"
        assert suite.case("b").seed == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(SuiteSpecError, match="two cases named"):
            parse_suite(
                {"suite": "s", "cases": [{"name": "a"}, {"name": "a"}]}
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(SuiteSpecError, match="unknown field"):
            parse_suite(
                {"suite": "s", "cases": [{"name": "a", "color": "red"}]}
            )

    def test_unknown_default_rejected(self):
        with pytest.raises(SuiteSpecError, match="unknown default field"):
            parse_suite(
                {"suite": "s", "defaults": {"frob": 1}, "cases": [{"name": "a"}]}
            )

    def test_needs_cases(self):
        with pytest.raises(SuiteSpecError, match="non-empty 'cases'"):
            parse_suite({"suite": "s", "cases": []})

    def test_case_lookup_unknown(self):
        suite = parse_suite({"suite": "s", "cases": [{"name": "a"}]})
        with pytest.raises(SuiteSpecError, match="no case 'z'"):
            suite.case("z")


class TestMatrixExpansion:
    def test_cross_product(self):
        suite = parse_suite(
            {
                "suite": "s",
                "cases": [
                    {
                        "name": "m-{machine}-s{seed}",
                        "matrix": {
                            "machine": ["e5649", "e5-2697v2"],
                            "seed": [1, 2],
                        },
                    }
                ],
            }
        )
        names = [c.name for c in suite.cases]
        assert len(names) == 4
        assert "m-e5649-s1" in names and "m-e5-2697v2-s2" in names

    def test_expansion_order_is_deterministic(self):
        doc = {
            "suite": "s",
            "cases": [
                {"name": "c-{seed}", "matrix": {"seed": [3, 1, 2]}}
            ],
        }
        names = [c.name for c in parse_suite(doc).cases]
        # Values keep their listed order.
        assert names == ["c-3", "c-1", "c-2"]

    def test_auto_suffix_without_placeholder(self):
        suite = parse_suite(
            {
                "suite": "s",
                "cases": [{"name": "c", "matrix": {"seed": [1, 2]}}],
            }
        )
        assert [c.name for c in suite.cases] == ["c-1", "c-2"]

    def test_matrix_values_override_defaults(self):
        suite = parse_suite(
            {
                "suite": "s",
                "defaults": {"seed": 99},
                "cases": [
                    {"name": "c-{seed}", "matrix": {"seed": [1]}}
                ],
            }
        )
        assert suite.case("c-1").seed == 1

    def test_matrix_rejects_unknown_param(self):
        with pytest.raises(SuiteSpecError, match="not a case field"):
            parse_suite(
                {
                    "suite": "s",
                    "cases": [{"name": "c", "matrix": {"frob": [1]}}],
                }
            )

    def test_matrix_rejects_empty_values(self):
        with pytest.raises(SuiteSpecError, match="non-empty list"):
            parse_suite(
                {
                    "suite": "s",
                    "cases": [{"name": "c", "matrix": {"seed": []}}],
                }
            )


class TestLoadSuite:
    def test_json_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps({"suite": "s", "cases": [{"name": "a"}]}))
        assert load_suite(path).name == "s"

    def test_toml_file(self, tmp_path):
        path = tmp_path / "suite.toml"
        path.write_text(
            'suite = "s"\n\n[[cases]]\nname = "a"\ntargets = ["cg"]\n'
        )
        suite = load_suite(path)
        assert suite.case("a").targets == ("cg",)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SuiteSpecError, match="cannot read"):
            load_suite(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text("{nope")
        with pytest.raises(SuiteSpecError, match="not valid JSON"):
            load_suite(path)

    def test_bad_toml(self, tmp_path):
        path = tmp_path / "suite.toml"
        path.write_text("= nope")
        with pytest.raises(SuiteSpecError, match="not valid TOML"):
            load_suite(path)
