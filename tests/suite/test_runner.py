"""Incremental suite runs: skip, re-key, resume, and determinism."""

import copy

import pytest

from repro.suite import (
    ArtifactStore,
    SuiteRunner,
    SuiteStats,
    build_nodes,
    node_input_key,
    parse_suite,
)


def _blob_map(store: ArtifactStore) -> dict[str, bytes]:
    """Every stored artifact, keyed by node id, as raw bytes."""
    out = {}
    for key in store.node_keys():
        payload, manifest = store.read_node_payload(key)
        out[manifest.node_id] = payload
    return out


class TestDagShape:
    def test_nodes_per_case(self, tiny_suite):
        nodes = build_nodes(tiny_suite)
        assert [n.node_id for n in nodes] == [
            "collect:base",
            "train:base:linear-F",
            "eval:base",
        ]
        assert nodes[1].inputs == ("collect:base",)
        assert nodes[2].inputs == ("collect:base",)

    def test_key_needs_upstream_manifest(self, tiny_suite):
        nodes = build_nodes(tiny_suite)
        with pytest.raises(KeyError):
            node_input_key(nodes[1], {}, "1.0.0")

    def test_key_is_stable(self, tiny_suite):
        node = build_nodes(tiny_suite)[0]
        a = node_input_key(node, {}, "1.0.0")
        b = node_input_key(node, {}, "1.0.0")
        assert a == b and len(a) == 64

    def test_key_depends_on_library_version(self, tiny_suite):
        node = build_nodes(tiny_suite)[0]
        assert node_input_key(node, {}, "1.0.0") != node_input_key(
            node, {}, "2.0.0"
        )


class TestIncrementalRuns:
    def test_cold_run_executes_everything(self, runner):
        report = runner.run()
        assert report.ok
        assert report.executed == 3
        assert report.skipped == 0
        assert runner.stats.nodes_run == 3

    def test_warm_rerun_executes_zero_nodes(self, tiny_suite, store):
        SuiteRunner(tiny_suite, store).run()
        rerun = SuiteRunner(tiny_suite, store)
        report = rerun.run()
        assert report.ok
        assert report.executed == 0
        assert report.skipped == 3
        assert rerun.stats.nodes_run == 0
        assert rerun.stats.nodes_resumed == 3

    def test_warm_artifacts_bit_identical(self, tiny_suite, store, tmp_path):
        SuiteRunner(tiny_suite, store).run()
        first = _blob_map(store)
        other = ArtifactStore(tmp_path / "other")
        SuiteRunner(tiny_suite, other).run()
        assert _blob_map(other) == first

    def test_editing_one_case_reruns_only_that_case(
        self, two_case_spec_doc, store
    ):
        suite = parse_suite(two_case_spec_doc)
        SuiteRunner(suite, store).run()
        edited_doc = copy.deepcopy(two_case_spec_doc)
        for case in edited_doc["cases"]:
            if case["name"] == "other":
                case["counts"] = [1, 2]
        edited = parse_suite(edited_doc)
        report = SuiteRunner(edited, store).run()
        statuses = {r.node_id: r.status for r in report.results}
        assert statuses == {
            "collect:base": "cached",
            "train:base:linear-F": "cached",
            "eval:base": "cached",
            "collect:other": "run",
            "train:other:linear-F": "run",
            "eval:other": "run",
        }

    def test_downstream_reruns_when_dataset_changes(
        self, tiny_spec_doc, store
    ):
        suite = parse_suite(tiny_spec_doc)
        SuiteRunner(suite, store).run()
        edited_doc = copy.deepcopy(tiny_spec_doc)
        edited_doc["cases"][0]["seed"] = 7
        report = SuiteRunner(parse_suite(edited_doc), store).run()
        assert report.executed == 3  # collect re-keys, so train/eval do too

    def test_force_reexecutes_cached_nodes(self, tiny_suite, store):
        SuiteRunner(tiny_suite, store).run()
        report = SuiteRunner(tiny_suite, store, force=True).run()
        assert report.executed == 3
        assert report.skipped == 0

    def test_parallel_run_matches_serial(self, tiny_suite, store, tmp_path):
        SuiteRunner(tiny_suite, store, workers=1).run()
        other = ArtifactStore(tmp_path / "par")
        SuiteRunner(tiny_suite, other, workers=2).run()
        assert _blob_map(other) == _blob_map(store)

    def test_solve_cache_shared_across_runs(self, tiny_suite, store):
        first = SuiteRunner(tiny_suite, store)
        first.run()
        assert first.stats.solve_cache_entries_saved > 0
        assert store.solve_cache_path("e5649").is_file()
        # A force re-run must *load* the persisted solves.
        second = SuiteRunner(tiny_suite, store, force=True)
        second.run()
        assert second.stats.solve_cache_entries_loaded > 0


class TestFailureHandling:
    def test_failed_node_blocks_downstream_and_resumes(
        self, tiny_suite, store, monkeypatch
    ):
        broken = SuiteRunner(tiny_suite, store)
        monkeypatch.setattr(
            broken,
            "_execute_collect",
            lambda case: (_ for _ in ()).throw(RuntimeError("sim exploded")),
        )
        report = broken.run()
        statuses = {r.node_id: r.status for r in report.results}
        assert statuses["collect:base"] == "failed"
        assert statuses["train:base:linear-F"] == "blocked"
        assert statuses["eval:base"] == "blocked"
        assert not report.ok
        assert broken.stats.nodes_failed == 1
        # Nothing was committed, so a healthy runner does the whole chain.
        healthy = SuiteRunner(tiny_suite, store).run()
        assert healthy.ok and healthy.executed == 3

    def test_failure_detail_is_reported(self, tiny_suite, store, monkeypatch):
        broken = SuiteRunner(tiny_suite, store)
        monkeypatch.setattr(
            broken,
            "_execute_collect",
            lambda case: (_ for _ in ()).throw(RuntimeError("sim exploded")),
        )
        report = broken.run()
        failed = report.by_status("failed")[0]
        assert "sim exploded" in failed.detail
        assert "failed/blocked" in report.summary()


class TestPlanAndExplain:
    def test_plan_before_any_run(self, runner):
        rows = runner.plan()
        assert [(n.node_id, hit) for n, _, hit in rows] == [
            ("collect:base", False),
            ("train:base:linear-F", False),
            ("eval:base", False),
        ]
        # Downstream keys are unknowable before collect exists.
        assert rows[0][1] is not None
        assert rows[1][1] is None and rows[2][1] is None

    def test_plan_after_run_is_all_hits(self, tiny_suite, store):
        SuiteRunner(tiny_suite, store).run()
        rows = SuiteRunner(tiny_suite, store).plan()
        assert all(hit for _, _, hit in rows)
        assert all(key is not None for _, key, _ in rows)

    def test_explain_mentions_every_node(self, tiny_suite, store):
        SuiteRunner(tiny_suite, store).run()
        text = SuiteRunner(tiny_suite, store).explain()
        for node_id in ("collect:base", "train:base:linear-F", "eval:base"):
            assert node_id in text
        assert "cached" in text

    def test_explain_single_node_detail(self, tiny_suite, store):
        SuiteRunner(tiny_suite, store).run()
        text = SuiteRunner(tiny_suite, store).explain("eval:base")
        assert "artifact:" in text and "spec:" in text
        assert "collect:base" in text  # its input

    def test_explain_unknown_node(self, runner):
        with pytest.raises(ValueError, match="no node"):
            runner.explain("eval:nope")

    def test_gc_after_edit_drops_stale_chain(self, tiny_spec_doc, store):
        suite = parse_suite(tiny_spec_doc)
        SuiteRunner(suite, store).run()
        edited_doc = copy.deepcopy(tiny_spec_doc)
        edited_doc["cases"][0]["seed"] = 7
        edited = parse_suite(edited_doc)
        SuiteRunner(edited, store).run()
        assert len(store.node_keys()) == 6
        keep = SuiteRunner(edited, store).keep_keys()
        report = store.gc(keep)
        assert report.kept_nodes == 3
        assert len(report.removed_nodes) == 3
        # The surviving chain still resolves: zero-node re-run.
        rerun = SuiteRunner(edited, store).run()
        assert rerun.executed == 0


class TestStats:
    def test_stats_summary_counts(self, tiny_suite, store):
        stats = SuiteStats()
        SuiteRunner(tiny_suite, store, stats=stats).run()
        SuiteRunner(tiny_suite, store, stats=stats).run()
        assert stats.runs == 2
        assert stats.nodes_run == 3
        assert stats.nodes_skipped == 3
        assert stats.store_hits == 3
        assert stats.store_misses == 3
        text = stats.summary()
        assert "nodes executed: 3" in text
        assert "store hits" in text

    def test_global_aggregate_mirrors(self, tiny_suite, store):
        from repro.suite import GLOBAL_SUITE_STATS

        before = GLOBAL_SUITE_STATS.nodes_run
        SuiteRunner(tiny_suite, store).run()
        assert GLOBAL_SUITE_STATS.nodes_run == before + 3

    def test_prometheus_rendering(self):
        from repro.suite import render_suite_stats

        stats = SuiteStats(nodes_run=4, nodes_skipped=2, store_hits=2)
        text = render_suite_stats(stats)
        assert "repro_suite_nodes_run_total 4" in text
        assert "repro_suite_nodes_skipped_total 2" in text
        assert "# TYPE repro_suite_store_hits_total counter" in text

    def test_registry_scrape_includes_suite_family(self):
        from repro.obs import MetricsRegistry, install_default_sources

        registry = install_default_sources(MetricsRegistry())
        text = registry.render()
        assert "repro_suite_nodes_run_total" in text
