"""Kill a suite run mid-node and prove the resume contract.

The runner has no journal or recovery pass — committed node manifests
*are* the checkpoint log.  These tests SIGKILL a real subprocess partway
through a run (no cleanup handlers get a chance to fire, exactly like
the OOM killer or a lost node), then re-run against the same store and
assert that finished nodes are not re-executed and that the resumed
store's artifacts are bit-identical to an uninterrupted run's.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.suite import ArtifactStore, SuiteRunner, parse_suite

SPEC_DOC = {
    "suite": "crashy",
    "defaults": {
        "machine": "e5649",
        "repetitions": 2,
        "model_kinds": ["linear"],
        "feature_sets": ["F"],
    },
    "cases": [
        {
            "name": "one",
            "targets": ["cg", "sp"],
            "co_apps": ["ep", "lu"],
            "counts": [1, 2, 3],
            "frequencies_ghz": [2.53, 1.6],
        },
        {
            "name": "two",
            "targets": ["cg", "sp"],
            "co_apps": ["ep", "lu"],
            "counts": [1, 2, 3],
            "frequencies_ghz": [2.53, 1.6],
            "seed": 7,
        },
    ],
}

# Runs inside the subprocess: SIGKILL the interpreter the moment the
# N-th node has committed, leaving the store exactly as a dead run would.
KILLER_SCRIPT = textwrap.dedent(
    """
    import json, os, signal, sys
    from repro.suite import ArtifactStore, SuiteRunner, parse_suite

    spec_path, store_dir, kill_after = sys.argv[1], sys.argv[2], int(sys.argv[3])
    suite = parse_suite(json.load(open(spec_path)))
    store = ArtifactStore(store_dir)
    committed = 0
    original = ArtifactStore.put_node

    def put_and_maybe_die(self, **kwargs):
        global committed
        manifest = original(self, **kwargs)
        committed += 1
        if committed >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        return manifest

    ArtifactStore.put_node = put_and_maybe_die
    SuiteRunner(suite, store).run()
    print("UNREACHABLE: run finished without dying")
    sys.exit(3)
    """
)


def _blob_map(store: ArtifactStore) -> dict[str, bytes]:
    out = {}
    for key in store.node_keys():
        payload, manifest = store.read_node_payload(key)
        out[manifest.node_id] = payload
    return out


def _run_killed_subprocess(spec_path: Path, store_dir: Path, kill_after: int):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", KILLER_SCRIPT,
         str(spec_path), str(store_dir), str(kill_after)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    return proc


@pytest.fixture
def spec_path(tmp_path) -> Path:
    path = tmp_path / "suite.json"
    path.write_text(json.dumps(SPEC_DOC))
    return path


class TestCrashResume:
    @pytest.mark.parametrize("kill_after", [1, 2, 4])
    def test_resume_skips_completed_and_is_bit_identical(
        self, spec_path, tmp_path, kill_after
    ):
        store_dir = tmp_path / "store"
        proc = _run_killed_subprocess(spec_path, store_dir, kill_after)
        # SIGKILL, not a clean exit — the run really died mid-flight.
        assert proc.returncode == -signal.SIGKILL, (
            proc.returncode,
            proc.stdout,
            proc.stderr,
        )
        store = ArtifactStore(store_dir)
        survivors = set(store.node_keys())
        assert len(survivors) == kill_after  # exactly N nodes committed

        suite = parse_suite(SPEC_DOC)
        resumed = SuiteRunner(suite, store)
        report = resumed.run()
        assert report.ok
        # Every node the dead run committed resolves; nothing re-executes.
        assert report.skipped == kill_after
        assert report.executed == 6 - kill_after
        assert resumed.stats.nodes_resumed == kill_after
        cached_ids = {r.node_id for r in report.by_status("cached")}
        for key in survivors:
            manifest = store.node_manifest(key)
            assert manifest.node_id in cached_ids

        # Bit-identical to a never-interrupted run in a fresh store.
        clean = ArtifactStore(tmp_path / "clean")
        SuiteRunner(suite, clean).run()
        assert _blob_map(store) == _blob_map(clean)

    def test_no_torn_state_in_killed_store(self, spec_path, tmp_path):
        """Whatever survives the kill must be internally consistent."""
        store_dir = tmp_path / "store"
        proc = _run_killed_subprocess(spec_path, store_dir, 2)
        assert proc.returncode == -signal.SIGKILL
        store = ArtifactStore(store_dir)
        for key in store.node_keys():
            payload, manifest = store.read_node_payload(key)
            # read_node_payload re-hashes: no torn blobs, no dangling refs.
            assert payload
            assert manifest.input_key == key
        # No stray temp files from interrupted atomic writes linger as
        # manifests or blobs the store would trust.
        for key in store.node_keys():
            assert not key.endswith(".tmp")
