"""The ``repro suite`` command family."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def spec_file(tmp_path, tiny_spec_doc):
    path = tmp_path / "suite.json"
    path.write_text(json.dumps(tiny_spec_doc))
    return path


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"


class TestSuiteRun:
    def test_cold_then_warm(self, spec_file, store_dir, capsys):
        assert main(
            ["suite", "run", str(spec_file), "--store", str(store_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "3 executed, 0 cached" in out
        assert main(
            ["suite", "run", str(spec_file), "--store", str(store_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "0 executed, 3 cached" in out

    def test_stats_flag(self, spec_file, store_dir, capsys):
        assert main(
            ["suite", "run", str(spec_file), "--store", str(store_dir),
             "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "nodes executed: 3" in out
        assert "solve cache:" in out

    def test_force(self, spec_file, store_dir, capsys):
        main(["suite", "run", str(spec_file), "--store", str(store_dir)])
        capsys.readouterr()
        assert main(
            ["suite", "run", str(spec_file), "--store", str(store_dir),
             "--force"]
        ) == 0
        assert "3 executed" in capsys.readouterr().out

    def test_bad_spec_file(self, tmp_path, store_dir):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"suite": "s", "cases": []}))
        with pytest.raises(SystemExit, match="non-empty 'cases'"):
            main(["suite", "run", str(bad), "--store", str(store_dir)])

    def test_bad_workers(self, spec_file, store_dir):
        with pytest.raises(SystemExit, match="--workers"):
            main(["suite", "run", str(spec_file), "--store", str(store_dir),
                  "--workers", "0"])

    def test_trace_flag_writes_spans(self, spec_file, store_dir, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(
            ["suite", "run", str(spec_file), "--store", str(store_dir),
             "--trace", str(trace)]
        ) == 0
        data = json.loads(trace.read_text())
        events = data["traceEvents"] if isinstance(data, dict) else data
        names = {e.get("name") for e in events}
        assert "suite.run" in names and "suite.node" in names


class TestSuiteStatus:
    def test_before_and_after(self, spec_file, store_dir, capsys):
        assert main(
            ["suite", "status", str(spec_file), "--store", str(store_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "0 cached" in out and "3 to run" in out
        main(["suite", "run", str(spec_file), "--store", str(store_dir)])
        capsys.readouterr()
        assert main(
            ["suite", "status", str(spec_file), "--store", str(store_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "3 cached" in out and "0 to run" in out


class TestSuiteExplain:
    def test_all_nodes(self, spec_file, store_dir, capsys):
        main(["suite", "run", str(spec_file), "--store", str(store_dir)])
        capsys.readouterr()
        assert main(
            ["suite", "explain", str(spec_file), "--store", str(store_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "collect:base" in out and "eval:base" in out

    def test_single_node(self, spec_file, store_dir, capsys):
        main(["suite", "run", str(spec_file), "--store", str(store_dir)])
        capsys.readouterr()
        assert main(
            ["suite", "explain", str(spec_file), "--store", str(store_dir),
             "--node", "collect:base"]
        ) == 0
        out = capsys.readouterr().out
        assert "artifact:" in out

    def test_unknown_node(self, spec_file, store_dir):
        with pytest.raises(SystemExit, match="no node"):
            main(["suite", "explain", str(spec_file), "--store",
                  str(store_dir), "--node", "collect:nope"])


class TestSuiteGC:
    def test_gc_after_edit(self, tmp_path, tiny_spec_doc, store_dir, capsys):
        spec = tmp_path / "suite.json"
        spec.write_text(json.dumps(tiny_spec_doc))
        main(["suite", "run", str(spec), "--store", str(store_dir)])
        tiny_spec_doc["cases"][0]["seed"] = 7
        spec.write_text(json.dumps(tiny_spec_doc))
        main(["suite", "run", str(spec), "--store", str(store_dir)])
        capsys.readouterr()
        assert main(
            ["suite", "gc", str(spec), "--store", str(store_dir), "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "would remove 3 node manifest(s)" in out
        assert main(
            ["suite", "gc", str(spec), "--store", str(store_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "removed 3 node manifest(s)" in out
        # Survivors still give a zero-node warm run.
        assert main(
            ["suite", "run", str(spec), "--store", str(store_dir)]
        ) == 0
        assert "0 executed, 3 cached" in capsys.readouterr().out
