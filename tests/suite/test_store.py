"""Content-addressed store: blobs, node manifests, gc, solve caches."""

import hashlib

import pytest

from repro.sim.solve_cache import SolveCache
from repro.suite import ArtifactStore, NodeManifest, StoreError


class TestBlobs:
    def test_put_returns_content_hash(self, store):
        payload = b"hello suite"
        digest = store.put_blob(payload)
        assert digest == hashlib.sha256(payload).hexdigest()
        assert store.read_blob(digest) == payload

    def test_put_is_idempotent(self, store):
        a = store.put_blob(b"same")
        b = store.put_blob(b"same")
        assert a == b
        assert len(list(store.blob_dir.iterdir())) == 1

    def test_read_missing_blob(self, store):
        with pytest.raises(StoreError, match="no blob"):
            store.read_blob("0" * 64)

    def test_read_detects_corruption(self, store):
        digest = store.put_blob(b"original")
        store.blob_path(digest).write_bytes(b"tampered")
        with pytest.raises(StoreError, match="modified after"):
            store.read_blob(digest)


class TestNodes:
    def test_roundtrip(self, store):
        manifest = store.put_node(
            node_id="collect:c",
            kind="collect",
            input_key="k" * 64,
            payload=b"csv bytes",
            library_version="1.0.0",
            spec={"seed": 1},
            inputs={},
            meta={"rows": 3},
        )
        assert store.has_node("k" * 64)
        loaded = store.node_manifest("k" * 64)
        assert loaded == manifest
        payload, again = store.read_node_payload("k" * 64)
        assert payload == b"csv bytes"
        assert again.meta == {"rows": 3}
        assert again.created_at  # stamped

    def test_missing_node(self, store):
        assert store.node_manifest("f" * 64) is None
        assert not store.has_node("f" * 64)
        with pytest.raises(StoreError, match="no node"):
            store.read_node_payload("f" * 64)

    def test_node_keys_sorted(self, store):
        for key in ("b" * 64, "a" * 64):
            store.put_node(
                node_id="n",
                kind="collect",
                input_key=key,
                payload=key.encode(),
                library_version="1",
            )
        assert store.node_keys() == ["a" * 64, "b" * 64]

    def test_malformed_manifest_raises(self, store):
        store.node_dir.mkdir(parents=True)
        (store.node_dir / ("c" * 64 + ".json")).write_text("{broken")
        with pytest.raises(StoreError, match="not valid JSON"):
            store.node_manifest("c" * 64)

    def test_manifest_json_roundtrip(self):
        manifest = NodeManifest(
            node_id="train:c:linear-F",
            kind="train",
            input_key="a" * 64,
            content_sha256="b" * 64,
            library_version="1.0.0",
            inputs={"collect:c": {"input_key": "d" * 64,
                                  "content_sha256": "e" * 64}},
        )
        assert NodeManifest.from_json(manifest.to_json()) == manifest


class TestGC:
    def _put(self, store, key, payload):
        return store.put_node(
            node_id=f"n:{key[:4]}",
            kind="collect",
            input_key=key,
            payload=payload,
            library_version="1",
        )

    def test_gc_removes_unreachable(self, store):
        self._put(store, "a" * 64, b"keep me")
        stale = self._put(store, "b" * 64, b"drop me")
        report = store.gc({"a" * 64})
        assert report.kept_nodes == 1
        assert report.removed_nodes == ("b" * 64,)
        assert stale.content_sha256 in report.removed_blobs
        assert not store.has_node("b" * 64)
        assert store.read_blob(self._put(store, "a" * 64, b"keep me").content_sha256)

    def test_gc_keeps_shared_blobs(self, store):
        kept = self._put(store, "a" * 64, b"shared")
        self._put(store, "b" * 64, b"shared")
        report = store.gc({"a" * 64})
        # The blob is still referenced by the surviving manifest.
        assert report.removed_blobs == ()
        assert store.read_blob(kept.content_sha256) == b"shared"

    def test_dry_run_removes_nothing(self, store):
        self._put(store, "a" * 64, b"x")
        report = store.gc(set(), dry_run=True)
        assert report.dry_run
        assert report.removed_nodes == ("a" * 64,)
        assert store.has_node("a" * 64)
        assert "would remove" in report.summary()

    def test_empty_store(self, store):
        report = store.gc(set())
        assert report.kept_nodes == 0
        assert report.removed_nodes == ()


class TestSolveCachePersistence:
    def test_roundtrip(self, store):
        cache = SolveCache()
        cache.put(("scenario", 1), {"state": 42})
        assert store.save_solve_cache("e5649", cache) == 1
        fresh = SolveCache()
        assert store.load_solve_cache("e5649", fresh) == 1
        assert fresh.get(("scenario", 1)) == {"state": 42}

    def test_load_missing_is_empty(self, store):
        assert store.load_solve_cache("e5649", SolveCache()) == 0

    def test_corrupt_snapshot_discarded(self, store):
        path = store.solve_cache_path("e5649")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert store.load_solve_cache("e5649", SolveCache()) == 0
        assert not path.exists()
