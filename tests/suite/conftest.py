"""Shared fixtures for the experiment-suite subsystem tests.

The ``tiny_*`` spec documents keep collection small (two targets, two
co-apps, three counts, two P-states) so whole-suite runs stay in the
tens of milliseconds while still exercising collect, train, and eval
executors for real.
"""

from __future__ import annotations

import copy

import pytest

from repro.suite import ArtifactStore, SuiteRunner, parse_suite


@pytest.fixture
def tiny_spec_doc() -> dict:
    return {
        "suite": "tiny",
        "defaults": {
            "machine": "e5649",
            "repetitions": 2,
            "model_kinds": ["linear"],
            "feature_sets": ["F"],
        },
        "cases": [
            {
                "name": "base",
                "targets": ["cg", "sp"],
                "co_apps": ["ep", "lu"],
                "counts": [1, 2, 3],
                "frequencies_ghz": [2.53, 1.6],
            }
        ],
    }


@pytest.fixture
def two_case_spec_doc(tiny_spec_doc) -> dict:
    doc = copy.deepcopy(tiny_spec_doc)
    doc["suite"] = "pair"
    second = copy.deepcopy(doc["cases"][0])
    second["name"] = "other"
    second["seed"] = 7
    doc["cases"].append(second)
    return doc


@pytest.fixture
def tiny_suite(tiny_spec_doc):
    return parse_suite(tiny_spec_doc)


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def runner(tiny_suite, store) -> SuiteRunner:
    return SuiteRunner(tiny_suite, store)
