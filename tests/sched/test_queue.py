"""Job queue lifecycle + the shared pinned-seed stream generator."""

import pytest

from repro.sched.queue import JobQueue, JobStatus, job_stream
from repro.workloads.suite import all_applications, get_application


@pytest.fixture
def queue():
    return JobQueue()


class TestJobQueue:
    def test_submit_assigns_sequential_ids(self, queue):
        a = queue.submit(get_application("cg"), 0.0)
        b = queue.submit(get_application("ep"), 1.0)
        assert (a.id, b.id) == (0, 1)
        assert queue.pending == 2
        assert len(queue) == 2

    def test_take_is_fifo(self, queue):
        for name in ("cg", "ep", "sp"):
            queue.submit(get_application(name), 0.0)
        taken = queue.take(2)
        assert [j.app.name for j in taken] == ["cg", "ep"]
        assert queue.pending == 1

    def test_put_back_restores_front_order(self, queue):
        for name in ("cg", "ep", "sp"):
            queue.submit(get_application(name), 0.0)
        taken = queue.take(2)
        queue.put_back(taken)
        assert [j.app.name for j in queue.take(3)] == ["cg", "ep", "sp"]

    def test_jobs_survive_take(self, queue):
        job = queue.submit(get_application("cg"), 0.0)
        queue.take(1)
        assert queue.get(job.id) is job
        assert queue.get(999) is None

    def test_counts_by_status(self, queue):
        a = queue.submit(get_application("cg"), 0.0)
        queue.submit(get_application("ep"), 0.0)
        a.status = JobStatus.COMPLETED
        counts = queue.counts()
        assert counts["completed"] == 1
        assert counts["queued"] == 1

    def test_drain_pending_empties_queue(self, queue):
        queue.submit(get_application("cg"), 0.0)
        queue.submit(get_application("ep"), 0.0)
        drained = queue.drain_pending()
        assert len(drained) == 2
        assert queue.pending == 0
        assert len(queue) == 2  # records are permanent

    def test_job_regret_needs_both_slowdowns(self, queue):
        job = queue.submit(get_application("cg"), 0.0)
        assert job.regret is None
        job.predicted_slowdown = 1.1
        job.realized_slowdown = 1.25
        assert job.regret == pytest.approx(0.15)

    def test_to_dict_round_trips_names(self, queue):
        job = queue.submit(get_application("cg"), 2.5)
        data = job.to_dict()
        assert data["app"] == "cg"
        assert data["status"] == "queued"
        assert data["submitted_s"] == 2.5


class TestJobStream:
    def test_deterministic_for_a_seed(self):
        apps = list(all_applications())
        assert job_stream(apps, 10, seed=12) == job_stream(apps, 10, seed=12)
        assert job_stream(apps, 10, seed=12) != job_stream(apps, 10, seed=13)

    def test_arrivals_monotonic(self):
        stream = job_stream(list(all_applications()), 50, seed=7)
        arrivals = [t for _, t in stream]
        assert arrivals == sorted(arrivals)
        assert all(t >= 0.0 for t in arrivals)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            job_stream([], 5)
        with pytest.raises(ValueError, match="non-negative"):
            job_stream(list(all_applications()), -1)
