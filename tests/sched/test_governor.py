"""Tests for the model-driven DVFS governor."""

import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.energy.power import PowerModel
from repro.machine import XEON_E5649
from repro.sched.governor import GovernorObjective, select_pstate


@pytest.fixture(scope="module")
def governor_env(small_dataset, baselines_6core):
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
    predictor.fit(list(small_dataset))
    power = PowerModel(XEON_E5649)
    return predictor, power, baselines_6core


class TestSelectPstate:
    def test_all_pstates_evaluated(self, governor_env):
        predictor, power, baselines = governor_env
        _best, choices = select_pstate(
            predictor, power, baselines, "canneal", ["cg"] * 3
        )
        assert len(choices) == len(XEON_E5649.pstates)

    def test_energy_objective_prefers_lower_frequency(self, governor_env):
        """With cubic-ish dynamic power, throttling usually wins on energy
        for these workloads — the governor must find that."""
        predictor, power, baselines = governor_env
        best, choices = select_pstate(
            predictor, power, baselines, "canneal", ["cg"] * 3,
            objective=GovernorObjective.ENERGY,
        )
        fastest = choices[0]
        assert best.predicted_energy_j <= fastest.predicted_energy_j

    def test_time_objective_picks_fastest(self, governor_env):
        predictor, power, baselines = governor_env
        best, _ = select_pstate(
            predictor, power, baselines, "canneal", ["cg"] * 2,
            objective=GovernorObjective.TIME,
        )
        assert best.pstate.frequency_ghz == pytest.approx(2.53)

    def test_deadline_constrains_choice(self, governor_env):
        predictor, power, baselines = governor_env
        unconstrained, choices = select_pstate(
            predictor, power, baselines, "canneal", ["cg"] * 3,
            objective=GovernorObjective.ENERGY,
        )
        # Deadline slightly above the fastest prediction: forces high freq.
        deadline = choices[0].predicted_time_s * 1.02
        constrained, _ = select_pstate(
            predictor, power, baselines, "canneal", ["cg"] * 3,
            objective=GovernorObjective.ENERGY,
            deadline_s=deadline,
        )
        assert constrained.predicted_time_s <= deadline
        assert (
            constrained.pstate.frequency_ghz
            >= unconstrained.pstate.frequency_ghz
        )

    def test_impossible_deadline_best_effort(self, governor_env):
        predictor, power, baselines = governor_env
        best, choices = select_pstate(
            predictor, power, baselines, "canneal", ["cg"] * 3,
            deadline_s=1.0,
        )
        assert best.predicted_time_s == min(c.predicted_time_s for c in choices)
        assert best.predicted_time_s > 1.0  # caller can detect the miss

    def test_edp_between_energy_and_time(self, governor_env):
        predictor, power, baselines = governor_env
        e_best, _ = select_pstate(
            predictor, power, baselines, "sp", ["cg"] * 2,
            objective=GovernorObjective.ENERGY,
        )
        t_best, _ = select_pstate(
            predictor, power, baselines, "sp", ["cg"] * 2,
            objective=GovernorObjective.TIME,
        )
        edp_best, _ = select_pstate(
            predictor, power, baselines, "sp", ["cg"] * 2,
            objective=GovernorObjective.EDP,
        )
        assert (
            e_best.pstate.frequency_ghz
            <= edp_best.pstate.frequency_ghz
            <= t_best.pstate.frequency_ghz
        )

    def test_choice_metrics_consistent(self, governor_env):
        predictor, power, baselines = governor_env
        _best, choices = select_pstate(
            predictor, power, baselines, "ep", []
        )
        for c in choices:
            assert c.predicted_energy_j == pytest.approx(
                c.predicted_time_s * c.chip_power_w
            )
            assert c.energy_delay_product == pytest.approx(
                c.predicted_energy_j * c.predicted_time_s
            )

    def test_bad_deadline_rejected(self, governor_env):
        predictor, power, baselines = governor_env
        with pytest.raises(ValueError, match="deadline"):
            select_pstate(
                predictor, power, baselines, "ep", [], deadline_s=0.0
            )


class _ConstantPredictor:
    """Predicts the same time at every P-state — a pure tie generator."""

    def __init__(self, seconds: float = 100.0) -> None:
        self.seconds = seconds

    def predict_time(self, _target_baseline, _co_baselines) -> float:
        return self.seconds


class TestTieBreaking:
    """Equal-objective P-states must resolve deterministically.

    Regression: the selection used to keep whichever tied P-state the
    ladder iterated first (the fastest); the rule is now lowest
    frequency wins, so a tie never burns voltage headroom for free.
    """

    def test_time_tie_resolves_to_lowest_frequency(self, governor_env):
        _predictor, power, baselines = governor_env
        best, choices = select_pstate(
            _ConstantPredictor(), power, baselines, "ep", [],
            objective=GovernorObjective.TIME,
        )
        assert len({c.predicted_time_s for c in choices}) == 1
        assert best.pstate.frequency_ghz == pytest.approx(
            XEON_E5649.pstates.slowest.frequency_ghz
        )

    def test_best_effort_tie_resolves_to_lowest_frequency(self, governor_env):
        """The impossible-deadline path applies the same rule."""
        _predictor, power, baselines = governor_env
        best, _ = select_pstate(
            _ConstantPredictor(100.0), power, baselines, "ep", [],
            objective=GovernorObjective.TIME,
            deadline_s=1.0,  # nothing can meet it
        )
        assert best.pstate.frequency_ghz == pytest.approx(
            XEON_E5649.pstates.slowest.frequency_ghz
        )

    def test_tie_break_is_stable_across_calls(self, governor_env):
        _predictor, power, baselines = governor_env
        picks = {
            select_pstate(
                _ConstantPredictor(), power, baselines, "ep", [],
                objective=GovernorObjective.TIME,
            )[0].pstate.frequency_ghz
            for _ in range(5)
        }
        assert len(picks) == 1
