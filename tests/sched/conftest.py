"""Shared fixtures for the scheduling tests."""

from __future__ import annotations

import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor


@pytest.fixture(scope="session")
def sched_predictor(small_dataset):
    """A fitted linear predictor (feature set F) for placement scoring."""
    return PerformancePredictor(ModelKind.LINEAR, FeatureSet.F, seed=3).fit(
        list(small_dataset)
    )
