"""Fleet occupancy arrays + running-set physics.

The shared simulation core under both the online service and the
cluster simulator: vectorized occupancy bookkeeping, candidate pruning,
and lazy per-node steady-state rates.
"""

import numpy as np
import pytest

from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.sched.fleet import FleetState, MachineConfig, RunningSet
from repro.sim.engine import SimulationEngine
from repro.workloads.suite import get_application


@pytest.fixture
def fleet():
    return FleetState([MachineConfig(XEON_E5649, count=4, name_prefix="node")])


class TestMachineConfig:
    def test_rejects_zero_count(self):
        with pytest.raises(ValueError, match="count"):
            MachineConfig(XEON_E5649, count=0)

    def test_default_prefix_from_processor(self):
        cfg = MachineConfig(XEON_E5649, count=2)
        assert " " not in cfg.prefix


class TestFleetState:
    def test_expansion_and_names(self, fleet):
        assert fleet.n_nodes == 4
        assert fleet.total_cores == 4 * XEON_E5649.num_cores
        assert fleet.names[0] == "node-0000"
        assert fleet.index_of("node-0003") == 3

    def test_single_count_block_keeps_bare_name(self):
        f = FleetState([MachineConfig(XEON_E5649, count=1, name_prefix="alpha")])
        assert f.names == ["alpha"]

    def test_single_nodes_constructor(self):
        f = FleetState.single_nodes(
            [("a", XEON_E5649), ("b", XEON_E5_2697V2)]
        )
        assert f.names == ["a", "b"]
        assert f.num_cores.tolist() == [6, 12]
        assert f.processor(1) is XEON_E5_2697V2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            FleetState.single_nodes([("a", XEON_E5649), ("a", XEON_E5649)])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetState([])

    def test_unknown_node_name(self, fleet):
        with pytest.raises(KeyError, match="unknown node"):
            fleet.index_of("nope")

    def test_place_updates_occupancy_and_feature_sums(self, fleet):
        fleet.place(1, (0.5, 0.25, 0.01))
        fleet.place(1, (0.3, 0.15, 0.02))
        assert fleet.used[1] == 2
        assert fleet.free_cores[1] == XEON_E5649.num_cores - 2
        assert fleet.co_mem[1] == pytest.approx(0.8)
        assert fleet.co_cm_ca[1] == pytest.approx(0.40)
        assert fleet.co_ca_ins[1] == pytest.approx(0.03)
        assert fleet.busy_nodes == 1

    def test_remove_restores_state(self, fleet):
        fleet.place(2, (0.5, 0.25, 0.01))
        fleet.remove(2, (0.5, 0.25, 0.01))
        assert fleet.used[2] == 0
        assert fleet.co_mem[2] == pytest.approx(0.0)

    def test_place_on_full_node_raises(self, fleet):
        for _ in range(XEON_E5649.num_cores):
            fleet.place(0)
        with pytest.raises(ValueError, match="full"):
            fleet.place(0)

    def test_remove_from_empty_node_raises(self, fleet):
        with pytest.raises(ValueError, match="empty"):
            fleet.remove(3)

    def test_set_pstate(self, fleet):
        fleet.set_pstate(0, 3)
        assert fleet.pstate(0).index == 3
        with pytest.raises(ValueError, match="out of range"):
            fleet.set_pstate(0, 99)


class TestCandidates:
    def test_small_fleet_returns_everything_free(self, fleet):
        assert fleet.candidates(8).tolist() == [0, 1, 2, 3]

    def test_full_nodes_excluded(self, fleet):
        for _ in range(XEON_E5649.num_cores):
            fleet.place(0)
        assert 0 not in fleet.candidates(8).tolist()

    def test_empty_nodes_deduped_to_one_per_block(self):
        f = FleetState([MachineConfig(XEON_E5649, count=100, name_prefix="n")])
        cand = f.candidates(8)
        # All nodes are empty and interchangeable: one representative.
        assert cand.tolist() == [0]

    def test_occupied_fill_remaining_slots_by_contention(self):
        f = FleetState([MachineConfig(XEON_E5649, count=100, name_prefix="n")])
        f.place(7, (0.9, 0.5, 0.1))   # hottest
        f.place(3, (0.1, 0.1, 0.01))  # coolest
        f.place(5, (0.5, 0.3, 0.05))
        cand = f.candidates(3).tolist()
        # One empty representative (node 0) + the two least-contended
        # occupied nodes.
        assert cand == [0, 3, 5]

    def test_candidate_budget_respected_at_scale(self):
        f = FleetState([MachineConfig(XEON_E5649, count=1000, name_prefix="n")])
        for i in range(50):
            f.place(i, (0.01 * i, 0.0, 0.0))
        assert len(f.candidates(8)) <= 8

    def test_budget_must_be_positive(self, fleet):
        with pytest.raises(ValueError, match="budget"):
            fleet.candidates(0)


class TestRunningSet:
    @pytest.fixture
    def rig(self, fleet):
        engine = SimulationEngine(XEON_E5649)
        return fleet, RunningSet(fleet, [engine]), engine

    def test_engine_block_mismatch_rejected(self, fleet):
        with pytest.raises(ValueError, match="one engine per"):
            RunningSet(fleet, [])
        wrong = SimulationEngine(XEON_E5_2697V2)
        with pytest.raises(ValueError, match="does not\n?.*match|match"):
            RunningSet(fleet, [wrong])

    def test_add_occupies_core_and_remove_frees_it(self, rig):
        fleet, running, _ = rig
        app = get_application("cg")
        running.add(1, app, 0, 0.0, stats=(0.5, 0.2, 0.01))
        assert fleet.used[0] == 1
        assert 1 in running
        job = running.remove(1)
        assert job.app is app
        assert fleet.used[0] == 0
        assert fleet.co_mem[0] == pytest.approx(0.0)

    def test_duplicate_job_id_rejected(self, rig):
        _, running, _ = rig
        app = get_application("cg")
        running.add(1, app, 0, 0.0)
        with pytest.raises(ValueError, match="already running"):
            running.add(1, app, 1, 0.0)

    def test_solo_rate_matches_engine(self, rig):
        """The physics is exactly the engine's steady state."""
        fleet, running, engine = rig
        app = get_application("ep")
        running.add(7, app, 2, 0.0)
        expected = engine.solve_steady_state((app,)).instructions_per_second[0]
        assert running.rate_of(7) == pytest.approx(float(expected))

    def test_next_completion_and_advance(self, rig):
        _, running, engine = rig
        app = get_application("ep")
        running.add(1, app, 0, 0.0)
        ips = float(engine.solve_steady_state((app,)).instructions_per_second[0])
        t = running.next_completion(0.0)
        assert t == pytest.approx(app.instructions / ips)
        running.advance_to(t, 0.0)
        done = running.pop_finished()
        assert [j.job_id for j in done] == [1]
        assert running.count == 0

    def test_advance_backwards_rejected(self, rig):
        _, running, _ = rig
        running.add(1, get_application("ep"), 0, 0.0)
        with pytest.raises(ValueError, match="backwards"):
            running.advance_to(-1.0, 0.0)

    def test_contended_node_runs_slower(self, rig):
        """Adding a co-runner dirties the node and lowers the rate."""
        _, running, _ = rig
        cg = get_application("cg")
        running.add(1, cg, 0, 0.0)
        solo = running.rate_of(1)
        running.add(2, get_application("sp"), 0, 0.0)
        assert running.rate_of(1) < solo

    def test_next_completion_idle_is_inf(self, rig):
        _, running, _ = rig
        assert running.next_completion(0.0) == np.inf

    def test_remaining_instructions_preserved_across_migration(self, rig):
        fleet, running, _ = rig
        app = get_application("cg")
        running.add(1, app, 0, 0.0)
        t = running.next_completion(0.0) / 2
        running.advance_to(t, 0.0)
        moved = running.remove(1)
        assert 0 < moved.remaining_instructions < app.instructions
        running.add(
            1, app, 3, t, remaining_instructions=moved.remaining_instructions
        )
        assert running.get(1).remaining_instructions == pytest.approx(
            moved.remaining_instructions
        )
