"""Tests for the interference-aware scheduler."""

import pytest

from repro.core.methodology import ModelKind, PerformancePredictor
from repro.core.feature_sets import FeatureSet
from repro.machine import XEON_E5649
from repro.sched.policies import pack_first, round_robin
from repro.sched.scheduler import (
    evaluate_placement,
    interference_aware,
)
from repro.workloads.suite import get_application


@pytest.fixture(scope="module")
def sched_env(engine_6core, baselines_6core, small_dataset):
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
    predictor.fit(list(small_dataset))
    machines = (XEON_E5649, XEON_E5649)
    engines = {XEON_E5649.name: engine_6core}
    baselines = {XEON_E5649.name: baselines_6core}
    predictors = {XEON_E5649.name: predictor}
    return machines, engines, baselines, predictors


@pytest.fixture
def jobs():
    names = ["cg", "canneal", "mg", "ep", "blackscholes", "bodytrack"]
    return [get_application(n) for n in names]


class TestEvaluatePlacement:
    def test_outcome_structure(self, sched_env, jobs):
        machines, engines, baselines, _pred = sched_env
        placement = round_robin(jobs, machines)
        outcome = evaluate_placement(placement, engines, baselines)
        assert len(outcome.slowdowns) == 2
        assert outcome.mean_slowdown >= 1.0
        assert outcome.worst_slowdown >= outcome.mean_slowdown
        assert outcome.makespan_s > 0.0

    def test_empty_machine_allowed(self, sched_env, jobs):
        machines, engines, baselines, _pred = sched_env
        placement = pack_first(jobs[:2], machines)
        outcome = evaluate_placement(placement, engines, baselines)
        assert outcome.slowdowns[1] == ()

    def test_solo_jobs_have_unit_slowdown(self, sched_env):
        machines, engines, baselines, _pred = sched_env
        placement = round_robin([get_application("canneal")], machines)
        outcome = evaluate_placement(placement, engines, baselines)
        flat = [s for g in outcome.slowdowns for s in g]
        assert flat[0] == pytest.approx(1.0, rel=1e-6)


class TestInterferenceAware:
    def test_places_all_jobs(self, sched_env, jobs):
        machines, _eng, baselines, predictors = sched_env
        placement = interference_aware(jobs, machines, predictors, baselines)
        assert placement.job_count() == len(jobs)

    def test_respects_capacity(self, sched_env, jobs):
        machines, _eng, baselines, predictors = sched_env
        placement = interference_aware(jobs * 2, machines, predictors, baselines)
        for idx, machine in enumerate(machines):
            assert len(placement.assignments[idx]) <= machine.num_cores

    def test_capacity_exceeded_rejected(self, sched_env, jobs):
        machines, _eng, baselines, predictors = sched_env
        with pytest.raises(ValueError, match="exceed"):
            interference_aware(jobs * 3, machines, predictors, baselines)

    def test_separates_memory_hogs(self, sched_env):
        """With two machines, the model-driven scheduler splits the Class I
        aggressors instead of stacking them."""
        machines, _eng, baselines, predictors = sched_env
        hogs = [get_application("cg"), get_application("canneal")]
        fillers = [get_application("ep"), get_application("blackscholes")]
        placement = interference_aware(
            hogs + fillers, machines, predictors, baselines
        )
        hog_machines = {
            idx
            for idx, group in enumerate(placement.assignments)
            for app in group
            if app in hogs
        }
        assert len(hog_machines) == 2

    def test_beats_pack_first(self, sched_env, jobs):
        """The paper's motivation: model-driven placement reduces the
        measured mean slowdown versus naive consolidation."""
        machines, engines, baselines, predictors = sched_env
        aware = interference_aware(jobs, machines, predictors, baselines)
        packed = pack_first(jobs, machines)
        aware_outcome = evaluate_placement(aware, engines, baselines)
        packed_outcome = evaluate_placement(packed, engines, baselines)
        assert aware_outcome.mean_slowdown < packed_outcome.mean_slowdown


class TestHeterogeneousCluster:
    def test_mixed_machine_types(
        self, engine_6core, engine_12core, baselines_6core, small_dataset
    ):
        """The scheduler spans machines of different types, each with its
        own engine, baselines, and trained predictor."""
        from repro.harness.baselines import collect_baselines
        from repro.harness.collection import collect_training_data
        from repro.machine import XEON_E5649, XEON_E5_2697V2
        from repro.workloads.suite import all_applications

        baselines_12 = collect_baselines(engine_12core, all_applications())
        dataset_12 = collect_training_data(
            engine_12core,
            baselines=baselines_12,
            targets=[get_application(n) for n in ("canneal", "sp", "ep")],
            co_apps=[get_application("cg")],
            counts=(1, 5, 11),
        )
        pred_6 = PerformancePredictor(ModelKind.LINEAR, FeatureSet.D, seed=0)
        pred_6.fit(list(small_dataset))
        pred_12 = PerformancePredictor(ModelKind.LINEAR, FeatureSet.D, seed=0)
        pred_12.fit(list(dataset_12))

        machines = (XEON_E5649, XEON_E5_2697V2)
        engines = {
            XEON_E5649.name: engine_6core,
            XEON_E5_2697V2.name: engine_12core,
        }
        baselines = {
            XEON_E5649.name: baselines_6core,
            XEON_E5_2697V2.name: baselines_12,
        }
        predictors = {XEON_E5649.name: pred_6, XEON_E5_2697V2.name: pred_12}

        jobs = [
            get_application(n)
            for n in ("cg", "canneal", "mg", "sp", "ep", "blackscholes",
                      "fluidanimate", "lu")
        ]
        placement = interference_aware(jobs, machines, predictors, baselines)
        assert placement.job_count() == len(jobs)
        outcome = evaluate_placement(placement, engines, baselines)
        assert outcome.mean_slowdown >= 1.0
        assert outcome.worst_slowdown < 2.0
