"""Tests for baseline placement policies."""

import pytest

from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.sched.policies import Placement, pack_first, round_robin, spread_by_intensity
from repro.workloads.suite import get_application


@pytest.fixture
def jobs():
    names = ["cg", "canneal", "sp", "ep", "fluidanimate", "blackscholes"]
    return [get_application(n) for n in names]


@pytest.fixture
def machines():
    return (XEON_E5649, XEON_E5649)


class TestPlacement:
    def test_assign_and_capacity(self, machines, jobs):
        p = Placement(machines=machines)
        p.assign(0, jobs[0])
        assert p.free_cores(0) == 5
        assert p.job_count() == 1
        assert p.total_capacity == 12

    def test_overfull_machine_rejected(self, machines, jobs):
        p = Placement(machines=machines)
        for _ in range(6):
            p.assign(0, jobs[0])
        with pytest.raises(ValueError, match="occupied"):
            p.assign(0, jobs[0])

    def test_needs_machines(self):
        with pytest.raises(ValueError):
            Placement(machines=())

    def test_misaligned_assignments_rejected(self, machines):
        with pytest.raises(ValueError, match="align"):
            Placement(machines=machines, assignments=[[]])


class TestRoundRobin:
    def test_even_spread(self, machines, jobs):
        p = round_robin(jobs, machines)
        assert len(p.assignments[0]) == 3
        assert len(p.assignments[1]) == 3

    def test_skips_full_machines(self, jobs):
        small = XEON_E5649.with_pstates([2.53])
        machines = (small, XEON_E5_2697V2)
        many = jobs * 3  # 18 jobs, small machine holds 6
        p = round_robin(many, machines)
        assert len(p.assignments[0]) == 6
        assert len(p.assignments[1]) == 12

    def test_capacity_exceeded_rejected(self, machines, jobs):
        with pytest.raises(ValueError, match="exceed"):
            round_robin(jobs * 3, machines)  # 18 > 12 cores


class TestPackFirst:
    def test_fills_first_machine(self, machines, jobs):
        p = pack_first(jobs, machines)
        assert len(p.assignments[0]) == 6
        assert len(p.assignments[1]) == 0

    def test_overflow_to_next(self, machines, jobs):
        p = pack_first(jobs + jobs[:2], machines)
        assert len(p.assignments[0]) == 6
        assert len(p.assignments[1]) == 2


class TestSpreadByIntensity:
    def test_heaviest_jobs_split_across_machines(self, machines, jobs):
        p = spread_by_intensity(jobs, machines)
        cap = float(XEON_E5649.llc.size_bytes)
        # The two most intense jobs (cg, canneal) land on different machines.
        top_two = sorted(jobs, key=lambda a: a.solo_memory_intensity(cap))[-2:]
        locations = {
            idx
            for idx, group in enumerate(p.assignments)
            for app in group
            if app in top_two
        }
        assert len(locations) == 2

    def test_all_jobs_placed(self, machines, jobs):
        p = spread_by_intensity(jobs, machines)
        assert p.job_count() == len(jobs)
