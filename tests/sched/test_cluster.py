"""Tests for the online cluster simulator."""

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.machine import XEON_E5649
from repro.sched.cluster import (
    ClusterSimulator,
    JobRequest,
    first_fit_policy,
    least_loaded_policy,
    model_driven_policy,
)
from repro.workloads.suite import get_application


@pytest.fixture(scope="module")
def cluster(engine_6core, baselines_6core):
    engines = {"m0": engine_6core, "m1": engine_6core}
    baselines = {"m0": baselines_6core, "m1": baselines_6core}
    return engines, baselines


def make_jobs(names, spacing_s=10.0):
    return [
        JobRequest(app=get_application(n), arrival_s=i * spacing_s, job_id=i)
        for i, n in enumerate(names)
    ]


class TestJobRecord:
    def test_derived_metrics(self):
        req = JobRequest(app=get_application("ep"), arrival_s=5.0, job_id=1)
        from repro.sched.cluster import JobRecord

        rec = JobRecord(
            request=req, machine_name="m0", start_s=8.0, end_s=208.0,
            baseline_s=100.0,
        )
        assert rec.wait_s == pytest.approx(3.0)
        assert rec.run_s == pytest.approx(200.0)
        assert rec.slowdown == pytest.approx(2.0)
        assert rec.response_s == pytest.approx(203.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            JobRequest(app=get_application("ep"), arrival_s=-1.0)


class TestClusterSimulator:
    def test_all_jobs_complete(self, cluster):
        engines, baselines = cluster
        sim = ClusterSimulator(engines, baselines, least_loaded_policy)
        jobs = make_jobs(["cg", "canneal", "sp", "ep"])
        trace = sim.run(jobs)
        assert len(trace.records) == 4
        assert {r.request.job_id for r in trace.records} == {0, 1, 2, 3}

    def test_records_sorted_by_job_id(self, cluster):
        engines, baselines = cluster
        sim = ClusterSimulator(engines, baselines, first_fit_policy)
        trace = sim.run(make_jobs(["ep", "cg", "sp"]))
        ids = [r.request.job_id for r in trace.records]
        assert ids == sorted(ids)

    def test_single_job_matches_baseline(self, cluster):
        engines, baselines = cluster
        sim = ClusterSimulator(engines, baselines, first_fit_policy)
        trace = sim.run([JobRequest(app=get_application("canneal"), arrival_s=0.0)])
        rec = trace.records[0]
        assert rec.slowdown == pytest.approx(1.0, rel=1e-6)
        assert rec.wait_s == 0.0

    def test_timeline_sanity(self, cluster):
        engines, baselines = cluster
        sim = ClusterSimulator(engines, baselines, least_loaded_policy)
        trace = sim.run(make_jobs(["cg", "canneal", "sp", "ep"], spacing_s=25.0))
        for rec in trace.records:
            assert rec.start_s >= rec.request.arrival_s - 1e-9
            assert rec.end_s > rec.start_s
            assert rec.end_s <= trace.makespan_s + 1e-9
        assert trace.makespan_s == pytest.approx(
            max(r.end_s for r in trace.records)
        )

    def test_contention_stretches_concurrent_jobs(self, cluster):
        engines, baselines = cluster
        # Everything arrives at once on one machine: heavy co-location.
        sim = ClusterSimulator(
            {"m0": engines["m0"]}, {"m0": baselines["m0"]}, first_fit_policy
        )
        jobs = make_jobs(["cg", "canneal", "mg", "sp"], spacing_s=0.0)
        trace = sim.run(jobs)
        assert trace.mean_slowdown > 1.1

    def test_queueing_when_cluster_full(self, engine_6core, baselines_6core):
        """With one 6-core machine and 7 simultaneous jobs, one must wait."""
        sim = ClusterSimulator(
            {"m0": engine_6core}, {"m0": baselines_6core}, first_fit_policy
        )
        jobs = make_jobs(["ep"] * 7, spacing_s=0.0)
        trace = sim.run(jobs)
        waits = [r.wait_s for r in trace.records]
        assert sum(w > 1.0 for w in waits) == 1
        assert len(trace.records) == 7

    def test_late_arrivals_wait_for_nothing(self, cluster):
        engines, baselines = cluster
        sim = ClusterSimulator(engines, baselines, least_loaded_policy)
        jobs = make_jobs(["ep", "ep"], spacing_s=1000.0)  # far apart
        trace = sim.run(jobs)
        assert all(r.wait_s == pytest.approx(0.0) for r in trace.records)
        # Second job ran alone: unit slowdown.
        assert trace.records[1].slowdown == pytest.approx(1.0, rel=1e-6)

    def test_by_machine_counts(self, cluster):
        engines, baselines = cluster
        sim = ClusterSimulator(engines, baselines, least_loaded_policy)
        trace = sim.run(make_jobs(["ep"] * 4, spacing_s=0.0))
        counts = trace.by_machine()
        assert sum(counts.values()) == 4
        assert set(counts) <= {"m0", "m1"}

    def test_validation(self, cluster):
        engines, baselines = cluster
        with pytest.raises(ValueError, match="at least one machine"):
            ClusterSimulator({}, {}, first_fit_policy)
        with pytest.raises(ValueError, match="baselines missing"):
            ClusterSimulator(engines, {"m0": baselines["m0"]}, first_fit_policy)
        sim = ClusterSimulator(engines, baselines, first_fit_policy)
        with pytest.raises(ValueError, match="at least one job"):
            sim.run([])

    def test_bad_policy_detected(self, cluster):
        engines, baselines = cluster

        def rogue(job, state):
            return "mars"

        sim = ClusterSimulator(engines, baselines, rogue)
        with pytest.raises(ValueError, match="unknown machine"):
            sim.run(make_jobs(["ep"]))


class TestModelDrivenPolicy:
    def test_beats_first_fit_on_mean_slowdown(
        self, cluster, small_dataset, engine_6core
    ):
        engines, baselines = cluster
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=0)
        predictor.fit(list(small_dataset))
        policy = model_driven_policy(
            predictors={"m0": predictor, "m1": predictor},
            baselines=baselines,
            machines={"m0": XEON_E5649, "m1": XEON_E5649},
        )
        # A bursty stream: memory hogs arrive together.
        names = ["cg", "canneal", "mg", "sp", "ep", "blackscholes",
                 "fluidanimate", "lu"]
        jobs = make_jobs(names, spacing_s=5.0)
        aware = ClusterSimulator(engines, baselines, policy).run(jobs)
        naive = ClusterSimulator(engines, baselines, first_fit_policy).run(jobs)
        assert aware.mean_slowdown < naive.mean_slowdown


class TestEdgeCases:
    """Full-cluster behavior, degenerate streams, trace invariants."""

    @pytest.fixture(scope="class")
    def policies(self, small_dataset, baselines_6core, engine_6core):
        predictor = PerformancePredictor(
            ModelKind.LINEAR, FeatureSet.F, seed=3
        ).fit(list(small_dataset))
        model = model_driven_policy(
            {"m0": predictor},
            {"m0": baselines_6core},
            {"m0": engine_6core.processor},
        )
        return {
            "first-fit": first_fit_policy,
            "least-loaded": least_loaded_policy,
            "model": model,
        }

    @pytest.mark.parametrize("name", ["first-fit", "least-loaded", "model"])
    def test_full_cluster_defers_placement(self, name, policies):
        """Every policy returns None when no machine has a free core."""
        from repro.sched.cluster import ClusterState

        full = ClusterState(
            now_s=0.0,
            resident={"m0": tuple([get_application("ep")] * 6)},
            free_cores={"m0": 0},
        )
        assert policies[name](get_application("cg"), full) is None

    @pytest.mark.parametrize("name", ["first-fit", "least-loaded", "model"])
    def test_oversubscribed_stream_queues_and_completes(
        self, name, policies, engine_6core, baselines_6core
    ):
        """8 simultaneous jobs on 6 cores: 2 queue, all complete."""
        sim = ClusterSimulator(
            {"m0": engine_6core}, {"m0": baselines_6core}, policies[name]
        )
        jobs = [
            JobRequest(app=get_application("ep"), arrival_s=0.0, job_id=i)
            for i in range(8)
        ]
        trace = sim.run(jobs)
        assert len(trace.records) == 8
        waited = [r for r in trace.records if r.wait_s > 0.0]
        assert len(waited) == 2

    def test_zero_job_stream_rejected(self, engine_6core, baselines_6core):
        sim = ClusterSimulator(
            {"m0": engine_6core}, {"m0": baselines_6core}, first_fit_policy
        )
        with pytest.raises(ValueError, match="at least one job"):
            sim.run([])

    def test_no_job_starts_before_arrival(
        self, engine_6core, baselines_6core
    ):
        sim = ClusterSimulator(
            {"m0": engine_6core}, {"m0": baselines_6core}, least_loaded_policy
        )
        jobs = make_jobs(["cg", "sp", "canneal", "ep", "mg", "lu"], spacing_s=3.0)
        trace = sim.run(jobs)
        for rec in trace.records:
            assert rec.start_s >= rec.request.arrival_s
            assert rec.end_s > rec.start_s

    @pytest.mark.parametrize("name", ["first-fit", "least-loaded"])
    def test_occupancy_never_exceeds_core_count(
        self, name, policies, engine_6core, baselines_6core
    ):
        """Reconstructed concurrency per machine stays within num_cores."""
        sim = ClusterSimulator(
            {"m0": engine_6core, "m1": engine_6core},
            {"m0": baselines_6core, "m1": baselines_6core},
            policies[name],
        )
        jobs = [
            JobRequest(
                app=get_application(n), arrival_s=float(i), job_id=i
            )
            for i, n in enumerate(
                ["ep", "cg", "sp", "mg", "lu", "ft", "canneal", "bodytrack"] * 2
            )
        ]
        trace = sim.run(jobs)
        assert len(trace.records) == len(jobs)
        cores = engine_6core.processor.num_cores
        for machine in ("m0", "m1"):
            intervals = [
                (r.start_s, r.end_s)
                for r in trace.records
                if r.machine_name == machine
            ]
            edges = sorted({t for pair in intervals for t in pair})
            for t in edges:
                # Occupancy on [t, next edge): count intervals covering t.
                occupancy = sum(
                    1 for s, e in intervals if s <= t < e
                )
                assert occupancy <= cores
