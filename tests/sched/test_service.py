"""SchedulerService unit coverage (in-process scorer, no serving tier).

The HTTP surface, the scheduling loop semantics (placement, completion,
migration, governor), and the drain guarantee, all against a
:class:`LocalScorer` so no prediction server is needed — the remote
path is exercised by ``tests/integration/test_sched_service.py``.
"""

import time

import pytest

from repro.machine import XEON_E5649
from repro.sched.fleet import FleetState, MachineConfig
from repro.sched.governor import GovernorObjective
from repro.sched.queue import JobStatus
from repro.sched.service import (
    LocalScorer,
    SchedulerClient,
    SchedulerService,
    SchedulerThread,
)
from repro.serve.client import ClientError


def _wait_until(predicate, timeout_s=10.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _fleet(count=4):
    return FleetState([MachineConfig(XEON_E5649, count=count, name_prefix="node")])


@pytest.fixture
def scorer(sched_predictor):
    return LocalScorer(sched_predictor)


@pytest.fixture
def service(scorer, baselines_6core):
    with SchedulerThread(
        _fleet(), baselines_6core, scorer=scorer, policy="model"
    ) as handle:
        with SchedulerClient("127.0.0.1", handle.port) as client:
            yield handle, client


class TestValidation:
    def test_model_policy_needs_scorer(self, baselines_6core):
        with pytest.raises(ValueError, match="needs a scorer"):
            SchedulerService(_fleet(), baselines_6core, policy="model")

    def test_unknown_policy(self, baselines_6core, scorer):
        with pytest.raises(ValueError, match="unknown policy"):
            SchedulerService(
                _fleet(), baselines_6core, scorer=scorer, policy="random"
            )

    def test_governor_needs_scorer(self, baselines_6core):
        with pytest.raises(ValueError, match="governor needs"):
            SchedulerService(
                _fleet(),
                baselines_6core,
                policy="first-fit",
                governor_objective=GovernorObjective.ENERGY,
            )

    def test_missing_baseline_processor(self, baselines_6core):
        with pytest.raises(ValueError, match="baselines missing"):
            SchedulerService(
                _fleet(), {"other": baselines_6core}, policy="first-fit"
            )


class TestApi:
    def test_submit_runs_to_completion(self, service):
        _, client = service
        payload = client.submit(["cg", "ep", "sp"])
        assert payload["ids"] == [0, 1, 2]
        assert _wait_until(
            lambda: client.jobs()["counts"]["completed"] == 3
        )
        detail = client.job(0)
        assert detail["status"] == "completed"
        assert detail["node"].startswith("node-")
        assert detail["predicted_slowdown"] is not None
        assert detail["realized_slowdown"] > 0.0
        assert detail["regret"] == pytest.approx(
            detail["realized_slowdown"] - detail["predicted_slowdown"]
        )

    def test_submit_count_form(self, service):
        _, client = service
        assert len(client.submit("ep", count=3)["ids"]) == 3

    def test_unknown_app_is_400(self, service):
        _, client = service
        with pytest.raises(ClientError) as err:
            client.submit("not-a-benchmark")
        assert err.value.status == 400

    def test_bad_body_is_400(self, service):
        _, client = service
        with pytest.raises(ClientError) as err:
            client._json("POST", "/v1/jobs", {"count": 3})
        assert err.value.status == 400

    def test_unknown_job_is_404(self, service):
        _, client = service
        with pytest.raises(ClientError) as err:
            client.job(9999)
        assert err.value.status == 404

    def test_non_integer_job_id_is_400(self, service):
        _, client = service
        with pytest.raises(ClientError) as err:
            client._json("GET", "/v1/jobs/abc")
        assert err.value.status == 400

    def test_status_filter(self, service):
        _, client = service
        ids = client.submit(["cg"])["ids"]
        assert _wait_until(
            lambda: client.jobs()["counts"]["completed"] == 1
        )
        assert client.jobs(status="completed")["ids"] == ids
        with pytest.raises(ClientError) as err:
            client.jobs(status="bogus")
        assert err.value.status == 400

    def test_cluster_state(self, service):
        _, client = service
        client.submit(["cg", "ep"])
        assert _wait_until(
            lambda: client.cluster()["counts"]["completed"] == 2
        )
        body = client.cluster()
        assert body["nodes"] == 4
        assert body["policy"] == "model"
        assert body["placements"] == 2
        assert body["virtual_time_s"] > 0.0
        assert body["draining"] is False

    def test_healthz(self, service):
        _, client = service
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["nodes"] == 4

    def test_metrics_exposition(self, service):
        _, client = service
        client.submit(["cg", "ep", "canneal"])
        assert _wait_until(
            lambda: client.jobs()["counts"]["completed"] == 3
        )
        metrics = client.metrics()
        assert metrics["repro_sched_placements_total"] == 3.0
        assert metrics["repro_sched_completions_total"] == 3.0
        assert metrics["repro_sched_predict_batches_total"] >= 1.0
        assert metrics["repro_sched_decision_latency_seconds_count"] >= 1.0
        assert metrics["repro_sched_predicted_degradation_count"] == 3.0
        assert "repro_sched_regret" in metrics
        assert metrics["repro_sched_queue_depth"] == 0.0


class TestBaselinePolicies:
    @pytest.mark.parametrize("policy", ["first-fit", "least-loaded"])
    def test_policies_run_without_scorer(self, policy, baselines_6core):
        with SchedulerThread(
            _fleet(2), baselines_6core, policy=policy
        ) as handle:
            with SchedulerClient("127.0.0.1", handle.port) as client:
                client.submit(["cg", "ep", "sp", "lu"])
                assert _wait_until(
                    lambda: client.jobs()["counts"]["completed"] == 4
                )
                details = [client.job(i) for i in range(4)]
                # No model in the loop: no predictions recorded.
                assert all(d["predicted_slowdown"] is None for d in details)

    def test_first_fit_packs_least_loaded_spreads(self, baselines_6core):
        placements = {}
        for policy in ("first-fit", "least-loaded"):
            with SchedulerThread(
                _fleet(4), baselines_6core, policy=policy
            ) as handle:
                with SchedulerClient("127.0.0.1", handle.port) as client:
                    client.submit(["cg", "ep", "sp", "lu"])
                    assert _wait_until(
                        lambda: client.jobs()["counts"]["completed"] == 4
                    )
                    placements[policy] = {
                        client.job(i)["node"] for i in range(4)
                    }
        assert placements["first-fit"] == {"node-0000"}
        assert len(placements["least-loaded"]) == 4


class TestGovernor:
    def test_energy_governor_slows_the_clock(
        self, scorer, baselines_6core
    ):
        """Under the energy objective a solo placement drops frequency."""
        with SchedulerThread(
            _fleet(2),
            baselines_6core,
            scorer=scorer,
            governor_objective=GovernorObjective.ENERGY,
        ) as handle:
            with SchedulerClient("127.0.0.1", handle.port) as client:
                client.submit(["ep"])
                assert _wait_until(
                    lambda: client.jobs()["counts"]["completed"] == 1
                )
                detail = client.job(0)
                fastest = XEON_E5649.pstates.fastest.frequency_ghz
                assert detail["pstate_ghz"] < fastest
                # The baseline basis follows the chosen P-state, so the
                # realized slowdown stays interference-only (~1.0 solo).
                assert detail["realized_slowdown"] == pytest.approx(
                    1.0, abs=0.15
                )


class _OptimistScorer:
    """Predicts zero interference always — every placement regrets."""

    def predict_rows(self, rows):
        return [float(r["baseExTime"]) for r in rows]

    def predict_time(self, target_baseline, co_baselines):
        return float(target_baseline.wall_time_s)


class TestMigration:
    def test_worst_regret_job_migrates(self, baselines_6core):
        """Underprediction + a lighter node => threshold-triggered move.

        Two nodes for four jobs, so the empty-node fan-out runs out and
        the optimist stacks the tail of the burst — the regret then
        triggers a move to the less-contended node.
        """
        with SchedulerThread(
            _fleet(2),
            baselines_6core,
            scorer=_OptimistScorer(),
            migrate_threshold=0.05,
            migrate_margin=0.0,
            migrate_every=1,
        ) as handle:
            with SchedulerClient("127.0.0.1", handle.port) as client:
                # Memory-heavy apps packed together regret immediately.
                client.submit(["canneal", "sp", "cg", "mg"])
                assert _wait_until(
                    lambda: client.jobs()["counts"]["completed"] == 4
                )
                body = client.cluster()
                assert body["migrations"] >= 1
                moved = [
                    client.job(i)["migrations"] for i in range(4)
                ]
                assert sum(moved) == body["migrations"]


class TestDrain:
    def test_drain_completes_or_requeues_everything(
        self, scorer, baselines_6core
    ):
        handle = SchedulerThread(
            _fleet(1),
            baselines_6core,
            scorer=scorer,
            policy="model",
            pace_s=0.05,  # slow the loop so a backlog survives to drain
        )
        handle.start()
        client = SchedulerClient("127.0.0.1", handle.port)
        accepted = client.submit(["cg"] * 40)["ids"]
        client.close()
        handle.stop()  # graceful drain
        service = handle.server
        states = {jid: service.queue.get(jid).status for jid in accepted}
        assert set(states.values()) <= {
            JobStatus.COMPLETED, JobStatus.REQUEUED
        }
        assert service.queue.pending == 0
        counts = service.queue.counts()
        assert counts["requeued"] == service.sched_metrics.requeued
        assert counts["completed"] + counts["requeued"] == len(accepted)
