"""Tests for P-states and DVFS scaling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine.pstates import DVFSError, PState, PStateLadder


class TestPState:
    def test_frequency_conversion(self):
        p = PState(frequency_ghz=2.5)
        assert p.frequency_hz == pytest.approx(2.5e9)

    def test_cycle_time(self):
        p = PState(frequency_ghz=2.0)
        assert p.cycle_time_s() == pytest.approx(0.5e-9)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(DVFSError):
            PState(frequency_ghz=0.0)
        with pytest.raises(DVFSError):
            PState(frequency_ghz=-1.0)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(DVFSError):
            PState(frequency_ghz=1.0, voltage_v=0.0)

    def test_ordering_by_frequency(self):
        slow = PState(frequency_ghz=1.0)
        fast = PState(frequency_ghz=2.0)
        assert slow < fast


class TestPStateLadder:
    def test_from_frequencies_sorts_fastest_first(self):
        ladder = PStateLadder.from_frequencies([1.6, 2.53, 2.13])
        assert ladder.frequencies_ghz == (2.53, 2.13, 1.6)

    def test_from_frequencies_deduplicates(self):
        ladder = PStateLadder.from_frequencies([2.0, 2.0, 1.0])
        assert len(ladder) == 2

    def test_fastest_and_slowest(self):
        ladder = PStateLadder.from_frequencies([1.0, 3.0, 2.0])
        assert ladder.fastest.frequency_ghz == 3.0
        assert ladder.slowest.frequency_ghz == 1.0

    def test_voltage_interpolation_monotone(self):
        ladder = PStateLadder.from_frequencies([1.0, 1.5, 2.0, 2.5])
        volts = [s.voltage_v for s in ladder]
        assert volts == sorted(volts, reverse=True)
        assert ladder.fastest.voltage_v == pytest.approx(1.2)
        assert ladder.slowest.voltage_v == pytest.approx(0.8)

    def test_single_state_ladder(self):
        ladder = PStateLadder.from_frequencies([2.0])
        assert ladder.fastest is ladder.slowest
        assert ladder.fastest.voltage_v == pytest.approx(1.2)

    def test_empty_ladder_rejected(self):
        with pytest.raises(DVFSError):
            PStateLadder(states=())
        with pytest.raises(DVFSError):
            PStateLadder.from_frequencies([])

    def test_unsorted_states_rejected(self):
        states = (PState(1.0, index=0), PState(2.0, index=1))
        with pytest.raises(DVFSError):
            PStateLadder(states=states)

    def test_duplicate_states_rejected(self):
        states = (PState(2.0, index=0), PState(2.0, index=1))
        with pytest.raises(DVFSError):
            PStateLadder(states=states)

    def test_at_frequency_exact(self):
        ladder = PStateLadder.from_frequencies([1.6, 2.53])
        assert ladder.at_frequency(2.53).frequency_ghz == 2.53

    def test_at_frequency_missing_raises(self):
        ladder = PStateLadder.from_frequencies([1.6, 2.53])
        with pytest.raises(DVFSError, match="no P-state at"):
            ladder.at_frequency(2.0)

    def test_closest(self):
        ladder = PStateLadder.from_frequencies([1.0, 2.0, 3.0])
        assert ladder.closest(1.9).frequency_ghz == 2.0
        assert ladder.closest(10.0).frequency_ghz == 3.0

    def test_closest_rejects_nonpositive(self):
        ladder = PStateLadder.from_frequencies([1.0])
        with pytest.raises(DVFSError):
            ladder.closest(0.0)

    def test_slowdown_factor(self):
        ladder = PStateLadder.from_frequencies([1.0, 2.0])
        assert ladder.slowdown_factor(ladder.fastest) == pytest.approx(1.0)
        assert ladder.slowdown_factor(ladder.slowest) == pytest.approx(2.0)

    def test_iteration_and_indexing(self):
        ladder = PStateLadder.from_frequencies([1.0, 2.0, 3.0])
        assert [s.frequency_ghz for s in ladder] == [3.0, 2.0, 1.0]
        assert ladder[0].frequency_ghz == 3.0
        assert ladder[-1].frequency_ghz == 1.0

    @given(
        freqs=st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=10,
            unique=True,
        )
    )
    def test_property_ladder_ordered_and_slowdown_ge_one(self, freqs):
        ladder = PStateLadder.from_frequencies(freqs)
        ghz = ladder.frequencies_ghz
        assert all(a > b for a, b in zip(ghz, ghz[1:]))
        for state in ladder:
            assert ladder.slowdown_factor(state) >= 1.0
