"""Tests for multi-socket server topology."""

import pytest

from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.machine.topology import Server, dual_socket


class TestServer:
    def test_dual_socket(self):
        server = dual_socket("node01", XEON_E5649)
        assert server.total_cores == 12
        assert len(server.sockets) == 2
        assert server.homogeneous()

    def test_socket_names_unique(self):
        server = dual_socket("node01", XEON_E5649)
        names = server.socket_names
        assert names == ("node01/socket0", "node01/socket1")

    def test_placement_domains_carry_qualified_names(self):
        server = dual_socket("node01", XEON_E5649)
        domains = server.placement_domains()
        assert [d.name for d in domains] == list(server.socket_names)
        # Specs preserved.
        assert all(d.num_cores == 6 for d in domains)
        assert all(d.llc == XEON_E5649.llc for d in domains)

    def test_heterogeneous_server(self):
        server = Server("mixed", (XEON_E5649, XEON_E5_2697V2))
        assert server.total_cores == 18
        assert not server.homogeneous()

    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            Server("", (XEON_E5649,))
        with pytest.raises(ValueError, match="socket"):
            Server("empty", ())

    def test_domains_schedulable(self, baselines_6core, engine_6core):
        """Sockets plug straight into the scheduling extension."""
        from repro.sched import evaluate_placement, round_robin
        from repro.workloads import get_application

        server = dual_socket("node01", XEON_E5649)
        domains = server.placement_domains()
        jobs = [get_application(n) for n in ("cg", "canneal", "ep", "sp")]
        placement = round_robin(jobs, domains)
        # Identical sockets share one engine and one baseline table,
        # keyed by each domain's qualified name.
        outcome = evaluate_placement(
            placement,
            {d.name: engine_6core for d in domains},
            {d.name: baselines_6core for d in domains},
        )
        assert outcome.mean_slowdown >= 1.0
        assert len(outcome.slowdowns) == 2
