"""Tests for processor specifications (Table IV)."""

import dataclasses

import pytest

from repro.machine.processor import (
    PROCESSOR_CATALOG,
    XEON_E5649,
    XEON_E5_2697V2,
    CacheGeometry,
    DRAMConfig,
    MulticoreProcessor,
    get_processor,
)
from repro.machine.pstates import PStateLadder


class TestCacheGeometry:
    def test_derived_quantities(self):
        geo = CacheGeometry(size_bytes=1024 * 1024, line_bytes=64, associativity=16)
        assert geo.num_lines == 16384
        assert geo.num_sets == 1024
        assert geo.size_mb == pytest.approx(1.0)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheGeometry(size_bytes=1024, line_bytes=48)

    def test_rejects_misaligned_size(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheGeometry(size_bytes=1000, line_bytes=64, associativity=4)

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=0)
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1024 * 1024, associativity=0)
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1024 * 1024, hit_latency_ns=0.0)


class TestDRAMConfig:
    def test_defaults_valid(self):
        cfg = DRAMConfig()
        assert cfg.idle_latency_ns > 0
        assert cfg.peak_bandwidth_gbs > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"idle_latency_ns": 0.0},
            {"peak_bandwidth_gbs": -1.0},
            {"queue_shape": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            DRAMConfig(**kwargs)


class TestCatalog:
    def test_table4_e5649(self):
        assert XEON_E5649.num_cores == 6
        assert XEON_E5649.llc.size_mb == pytest.approx(12.0)
        assert XEON_E5649.pstates.fastest.frequency_ghz == pytest.approx(2.53)
        assert XEON_E5649.pstates.slowest.frequency_ghz == pytest.approx(1.60)
        assert len(XEON_E5649.pstates) == 6

    def test_table4_e5_2697v2(self):
        assert XEON_E5_2697V2.num_cores == 12
        assert XEON_E5_2697V2.llc.size_mb == pytest.approx(30.0)
        assert XEON_E5_2697V2.pstates.fastest.frequency_ghz == pytest.approx(2.70)
        assert XEON_E5_2697V2.pstates.slowest.frequency_ghz == pytest.approx(1.20)
        assert len(XEON_E5_2697V2.pstates) == 6

    def test_get_processor_case_insensitive(self):
        assert get_processor("E5649") is XEON_E5649
        assert get_processor("e5-2697v2") is XEON_E5_2697V2

    def test_get_processor_unknown(self):
        with pytest.raises(KeyError, match="catalog has"):
            get_processor("pentium")

    def test_catalog_complete(self):
        assert set(PROCESSOR_CATALOG) == {"e5649", "e5-2697v2"}


class TestMulticoreProcessor:
    def test_max_co_located(self):
        assert XEON_E5649.max_co_located == 5
        assert XEON_E5_2697V2.max_co_located == 11

    def test_validate_co_location_count(self):
        XEON_E5649.validate_co_location_count(0)
        XEON_E5649.validate_co_location_count(5)
        with pytest.raises(ValueError, match="at most 5"):
            XEON_E5649.validate_co_location_count(6)
        with pytest.raises(ValueError, match="non-negative"):
            XEON_E5649.validate_co_location_count(-1)

    def test_with_pstates(self):
        custom = XEON_E5649.with_pstates([2.0, 1.0])
        assert custom.pstates.frequencies_ghz == (2.0, 1.0)
        assert custom.llc is XEON_E5649.llc  # everything else untouched
        assert XEON_E5649.pstates.fastest.frequency_ghz == pytest.approx(2.53)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            XEON_E5649.num_cores = 8  # type: ignore[misc]

    def test_rejects_invalid(self):
        ladder = PStateLadder.from_frequencies([1.0])
        geo = CacheGeometry(size_bytes=1024 * 1024)
        with pytest.raises(ValueError, match="positive"):
            MulticoreProcessor("x", 0, geo, DRAMConfig(), ladder)
        with pytest.raises(ValueError, match="name"):
            MulticoreProcessor("", 4, geo, DRAMConfig(), ladder)
