"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInspectionCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "e5649" in out and "e5-2697v2" in out
        assert "12MB" in out and "30MB" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "canneal" in out and "ep" in out
        assert out.count("\n") >= 12

    def test_apps_unknown_machine(self):
        with pytest.raises(SystemExit, match="unknown processor"):
            main(["apps", "--machine", "i9"])

    def test_baseline(self, capsys):
        assert main(["baseline", "--app", "ep", "--machine", "e5649"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 9  # title + header + rule + 6 P-states + final
        assert "2.530" in out and "1.600" in out

    def test_baseline_unknown_app(self):
        with pytest.raises(SystemExit, match="unknown application"):
            main(["baseline", "--app", "doom"])


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "data.csv"
    code = main(
        [
            "collect",
            "--machine", "e5649",
            "-o", str(path),
            "--targets", "canneal,sp,ep",
            "--co-apps", "cg,ep",
            "--counts", "1,3,5",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def model_json(dataset_csv, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.json"
    code = main(
        [
            "train",
            "--data", str(dataset_csv),
            "--model", "linear",
            "--features", "d",
            "-o", str(path),
        ]
    )
    assert code == 0
    return path


class TestPipelineCommands:
    def test_collect_output(self, dataset_csv, capsys):
        text = dataset_csv.read_text()
        # 6 pstates x 3 targets x 2 co-apps x 3 counts = 108 rows (+header)
        assert len(text.strip().splitlines()) == 109

    def test_collect_bad_counts(self, tmp_path):
        with pytest.raises(SystemExit, match="invalid counts"):
            main(["collect", "-o", str(tmp_path / "x.csv"), "--counts", "1,a"])

    def test_collect_overfull_counts(self, tmp_path):
        with pytest.raises(SystemExit, match="at most 5"):
            main(["collect", "-o", str(tmp_path / "x.csv"), "--counts", "9"])

    def test_collect_bad_workers(self, tmp_path):
        with pytest.raises(SystemExit, match="workers"):
            main(["collect", "-o", str(tmp_path / "x.csv"), "--workers", "0"])

    def test_collect_parallel_with_stats(self, dataset_csv, tmp_path, capsys):
        path = tmp_path / "parallel.csv"
        code = main(
            [
                "collect",
                "--machine", "e5649",
                "-o", str(path),
                "--targets", "canneal,sp,ep",
                "--co-apps", "cg,ep",
                "--counts", "1,3,5",
                "--workers", "2",
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine stats" in out
        assert "hit rate" in out
        # Any worker count must reproduce the serial dataset bit-for-bit.
        assert path.read_text() == dataset_csv.read_text()

    def test_train_output(self, model_json, capsys):
        payload = json.loads(model_json.read_text())
        assert payload["kind"] == "linear"
        assert payload["feature_set"] == "D"

    def test_train_missing_data(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read dataset"):
            main(["train", "--data", "/nonexistent.csv", "-o", str(tmp_path / "m.json")])

    def test_train_bad_feature_set(self, dataset_csv, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["train", "--data", str(dataset_csv), "--features", "Z",
                 "-o", str(tmp_path / "m.json")]
            )

    def test_predict(self, model_json, capsys):
        code = main(
            [
                "predict",
                "--model", str(model_json),
                "--target", "canneal",
                "--co-apps", "cg,cg,cg",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted with 3 co-runner(s)" in out
        assert "x baseline" in out

    def test_predict_solo(self, model_json, capsys):
        assert main(["predict", "--model", str(model_json), "--target", "ep"]) == 0
        assert "0 co-runner(s)" in capsys.readouterr().out

    def test_predict_bad_frequency(self, model_json):
        with pytest.raises(SystemExit, match="no P-state"):
            main(
                ["predict", "--model", str(model_json), "--target", "ep",
                 "--frequency", "9.9"]
            )

    def test_predict_corrupt_model(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit, match="cannot load model"):
            main(["predict", "--model", str(bad), "--target", "ep"])

    def test_evaluate(self, dataset_csv, capsys):
        code = main(
            ["evaluate", "--data", str(dataset_csv), "--repetitions", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "linear" in out and "neural" in out
        assert out.count("\n") >= 14  # 12 model rows + header


class TestServingCommands:
    @pytest.fixture(scope="class")
    def ensemble_json(self, dataset_csv, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "ensemble.json"
        code = main(
            [
                "train",
                "--data", str(dataset_csv),
                "--model", "linear",
                "--features", "d",
                "--ensemble", "3",
                "-o", str(path),
            ]
        )
        assert code == 0
        return path

    @pytest.fixture(scope="class")
    def registry_dir(self, ensemble_json, model_json, tmp_path_factory):
        registry = tmp_path_factory.mktemp("cli") / "registry"
        assert main(
            ["registry", "push", "--registry", str(registry),
             "--name", "band", "--model", str(ensemble_json)]
        ) == 0
        assert main(
            ["registry", "push", "--registry", str(registry),
             "--name", "point", "--model", str(model_json)]
        ) == 0
        return registry

    def test_train_ensemble_output(self, ensemble_json, capsys):
        payload = json.loads(ensemble_json.read_text())
        assert payload["artifact"] == "ensemble"
        assert len(payload["members"]) == 3

    def test_train_ensemble_too_small(self, dataset_csv, tmp_path):
        with pytest.raises(SystemExit, match="at least 2"):
            main(
                ["train", "--data", str(dataset_csv), "--ensemble", "1",
                 "-o", str(tmp_path / "m.json")]
            )

    def test_predict_interval(self, ensemble_json, capsys):
        code = main(
            [
                "predict",
                "--model", str(ensemble_json),
                "--target", "canneal",
                "--co-apps", "cg,cg",
                "--interval",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ensemble disagreement" in out
        assert "2-sigma band" in out

    def test_predict_interval_needs_ensemble(self, model_json):
        with pytest.raises(SystemExit, match="needs an ensemble"):
            main(
                ["predict", "--model", str(model_json), "--target", "ep",
                 "--interval"]
            )

    def test_registry_push_reports_ref(self, registry_dir, model_json, capsys):
        assert main(
            ["registry", "push", "--registry", str(registry_dir),
             "--name", "point", "--model", str(model_json)]
        ) == 0
        out = capsys.readouterr().out
        assert "pushed point@2" in out
        assert "sha256" in out

    def test_registry_push_bad_model(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit, match="cannot load model"):
            main(
                ["registry", "push", "--registry", str(tmp_path / "r"),
                 "--name", "m", "--model", str(bad)]
            )

    def test_registry_list(self, registry_dir, capsys):
        assert main(["registry", "list", "--registry", str(registry_dir)]) == 0
        out = capsys.readouterr().out
        assert "band@1" in out and "point@1" in out
        assert "ensemble" in out and "predictor" in out

    def test_registry_list_empty(self, tmp_path, capsys):
        assert main(["registry", "list", "--registry", str(tmp_path / "r")]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_registry_show(self, registry_dir, capsys):
        assert main(
            ["registry", "show", "band@1", "--registry", str(registry_dir)]
        ) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["name"] == "band"
        assert manifest["artifact"] == "ensemble"
        assert len(manifest["content_hash"]) == 64

    def test_registry_show_unknown(self, registry_dir):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["registry", "show", "ghost", "--registry", str(registry_dir)])

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--registry", "/tmp/r"])
        assert args.port == 8391
        assert args.max_batch == 32
        assert args.max_wait_ms == 2.0

    def test_registry_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["registry"])


class TestPaperArtifacts:
    @pytest.mark.parametrize("number", [1, 2, 4, 5])
    def test_static_tables(self, number, capsys):
        assert main(["table", str(number)]) == 0
        assert f"Table" in capsys.readouterr().out

    def test_unknown_table(self):
        with pytest.raises(SystemExit, match="no Table 9"):
            main(["table", "9"])

    def test_unknown_figure(self):
        with pytest.raises(SystemExit, match="no Figure 7"):
            main(["figure", "7"])


class TestReport:
    def test_report_collates_artifacts(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1_x.txt").write_text("TABLE ONE\n")
        (results / "fig1_y.txt").write_text("FIGURE ONE\n")
        (results / "ablation_z.txt").write_text("ABLATION\n")
        assert main(["report", "--results", str(results)]) == 0
        out = capsys.readouterr().out
        # Tables come before figures before ablations.
        assert out.index("TABLE ONE") < out.index("FIGURE ONE") < out.index("ABLATION")
        assert "3 artifacts" in out

    def test_report_to_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1_x.txt").write_text("CONTENT\n")
        out_file = tmp_path / "report.txt"
        assert main(["report", "--results", str(results), "-o", str(out_file)]) == 0
        assert "CONTENT" in out_file.read_text()

    def test_report_missing_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="no results directory"):
            main(["report", "--results", str(tmp_path / "absent")])

    def test_report_empty_dir(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(SystemExit, match="no artifacts"):
            main(["report", "--results", str(empty)])


class TestObsCommands:
    def _write_trace(self, tmp_path):
        from repro.obs.trace import Tracer

        tracer = Tracer(service="cli-test")
        with tracer.span("outer", machine="e5649"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        return path

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["obs"])

    def test_summary_renders_tree(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["obs", "summary", str(path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "trace summary: 2 spans" in out
        assert "machine=e5649" in out

    def test_summary_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="error:"):
            main(["obs", "summary", str(tmp_path / "absent.json")])

    def test_summary_rejects_non_trace(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"traceEvents": []}')
        with pytest.raises(SystemExit, match="no complete-span"):
            main(["obs", "summary", str(bogus)])

    def test_trace_flag_exports_and_uninstalls(self, tmp_path, capsys):
        from repro.obs.trace import NullTracer, get_tracer

        trace_path = tmp_path / "collect.json"
        assert main([
            "collect", "--machine", "e5649",
            "--targets", "ep", "--co-apps", "ep", "--counts", "1",
            "-o", str(tmp_path / "ds.csv"),
            "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert f"trace span(s) to {trace_path}" in out
        assert isinstance(get_tracer(), NullTracer)
        payload = json.loads(trace_path.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e.get("ph") == "X"}
        # Collection drives the batched solver by default.
        assert "collect.dataset" in names and "engine.solve_batch" in names

    def test_no_batch_solve_uses_serial_reference_path(self, tmp_path, capsys):
        trace_path = tmp_path / "serial.json"
        assert main([
            "collect", "--machine", "e5649",
            "--targets", "ep", "--co-apps", "ep", "--counts", "1",
            "-o", str(tmp_path / "ds.csv"),
            "--no-batch-solve",
            "--trace", str(trace_path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(trace_path.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e.get("ph") == "X"}
        assert "engine.solve" in names
        assert "engine.solve_batch" not in names


class TestRegistryLifecycleCLI:
    """The registry lifecycle commands: gc, tombstone, pull, remote backends."""

    @pytest.fixture
    def store_dir(self, model_json, tmp_path):
        store = tmp_path / "store"
        for _ in range(3):
            assert main(
                ["registry", "push", "--registry", str(store),
                 "--name", "m", "--model", str(model_json)]
            ) == 0
        return store

    def test_gc_dry_run(self, store_dir, capsys):
        capsys.readouterr()
        assert main(
            ["registry", "gc", "--registry", str(store_dir),
             "--keep", "1", "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "would remove 2 version(s)" in out
        assert "would remove m@1" in out and "would remove m@2" in out
        assert (store_dir / "m" / "1" / "model.json").is_file()

    def test_gc_removes_old_versions(self, store_dir, capsys):
        capsys.readouterr()
        assert main(
            ["registry", "gc", "--registry", str(store_dir), "--keep", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "removed 1 version(s)" in out and "removed m@1" in out
        assert not (store_dir / "m" / "1").exists()
        assert (store_dir / "m" / "3" / "model.json").is_file()

    def test_gc_rejects_zero_keep(self, store_dir):
        with pytest.raises(SystemExit, match="at least 1"):
            main(["registry", "gc", "--registry", str(store_dir), "--keep", "0"])

    def test_tombstone_blocks_and_undo_restores(self, store_dir, capsys):
        capsys.readouterr()
        assert main(
            ["registry", "tombstone", "m@3", "--registry", str(store_dir),
             "--reason", "bad calibration"]
        ) == 0
        out = capsys.readouterr().out
        assert "tombstoned m@3 (bad calibration)" in out
        assert "bytes retained" in out
        assert main(
            ["registry", "show", "m", "--registry", str(store_dir)]
        ) == 0
        assert json.loads(capsys.readouterr().out)["version"] == 2
        with pytest.raises(SystemExit, match="tombstoned"):
            main(["registry", "show", "m@3", "--registry", str(store_dir)])
        assert main(
            ["registry", "tombstone", "m@3", "--registry", str(store_dir),
             "--undo"]
        ) == 0
        assert "untombstoned m@3" in capsys.readouterr().out
        assert main(
            ["registry", "show", "m", "--registry", str(store_dir)]
        ) == 0
        assert json.loads(capsys.readouterr().out)["version"] == 3

    def test_tombstone_needs_pinned_ref(self, store_dir):
        with pytest.raises(SystemExit, match="explicit name@version"):
            main(["registry", "tombstone", "m", "--registry", str(store_dir)])

    def test_pull_caches_and_remote_list(self, store_dir, tmp_path, capsys):
        from repro.registry import ModelRegistry, RegistryServerThread

        cache = tmp_path / "cache"
        with RegistryServerThread(ModelRegistry(store_dir)) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            capsys.readouterr()
            assert main(
                ["registry", "pull", "m@2", "--registry-url", url,
                 "--cache", str(cache)]
            ) == 0
            out = capsys.readouterr().out
            assert "pulled m@2" in out and f"cached under {cache}" in out
            assert main(
                ["registry", "list", "--registry-url", url,
                 "--cache", str(cache)]
            ) == 0
            out = capsys.readouterr().out
            assert "m@1" in out and "m@3" in out and url in out

    def test_remote_push_with_token(
        self, store_dir, model_json, tmp_path, capsys
    ):
        from repro.registry import ModelRegistry, RegistryServerThread

        with RegistryServerThread(
            ModelRegistry(store_dir), token="s3cret"
        ) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            capsys.readouterr()
            assert main(
                ["registry", "push", "--registry-url", url,
                 "--cache", str(tmp_path / "cache"), "--token", "s3cret",
                 "--name", "m", "--model", str(model_json)]
            ) == 0
            assert "pushed m@4" in capsys.readouterr().out
        assert (store_dir / "m" / "4" / "model.json").is_file()

    def test_pull_requires_remote_backend(self, store_dir):
        with pytest.raises(SystemExit, match="registry-url"):
            main(
                ["registry", "pull", "m@1", "--registry", str(store_dir)]
            )

    def test_backend_flags_are_exclusive(self, store_dir):
        with pytest.raises(SystemExit, match="not both"):
            main(
                ["registry", "list", "--registry", str(store_dir),
                 "--registry-url", "http://127.0.0.1:1"]
            )

    def test_registry_url_needs_cache(self):
        with pytest.raises(SystemExit, match="--cache"):
            main(["registry", "list", "--registry-url", "http://127.0.0.1:1"])

    def test_some_backend_is_required(self):
        with pytest.raises(SystemExit, match="pass --registry"):
            main(["registry", "list"])

    def test_serve_parser_new_flags(self):
        args = build_parser().parse_args(["serve", "--registry", "/tmp/r"])
        assert args.max_backlog is None and args.hot_reload is None
        args = build_parser().parse_args(
            ["serve", "--registry-url", "http://h:1", "--cache", "/tmp/c",
             "--max-backlog", "64", "--hot-reload", "5"]
        )
        assert args.max_backlog == 64 and args.hot_reload == 5.0

    def test_registry_serve_parser_defaults(self):
        args = build_parser().parse_args(
            ["registry", "serve", "--registry", "/tmp/r"]
        )
        assert args.port == 8100 and args.token is None
