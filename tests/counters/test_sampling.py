"""Tests for interval-sampled counter collection."""

import numpy as np
import pytest

from repro.cache.reuse import ReuseProfile
from repro.counters.sampling import hpcrun_sampled
from repro.workloads.app import ApplicationPhase, PhasedApplication
from repro.workloads.suite import get_application

MB = 1024.0 * 1024.0


@pytest.fixture
def phased_app():
    return PhasedApplication(
        name="two-phase",
        suite="SYNTH",
        instructions=2e11,
        phases=(
            ApplicationPhase(
                0.5, 0.8, 0.02,
                ReuseProfile.single(200 * MB, compulsory=0.05), mlp=1.5,
            ),
            ApplicationPhase(
                0.5, 1.0, 1e-4, ReuseProfile.single(0.5 * MB), mlp=1.0,
            ),
        ),
    )


class TestSampledTotals:
    def test_totals_match_flat_profile(self, engine_6core):
        """Sampling redistributes counters over time; totals are identical
        to the averaged measurement (Section IV-A3)."""
        app = get_application("canneal")
        sampled = hpcrun_sampled(engine_6core, app, interval_s=5.0)
        run = engine_6core.baseline(app).target
        ins, acc, mis = sampled.totals()
        assert ins == pytest.approx(run.instructions, rel=1e-9)
        assert acc == pytest.approx(run.llc_accesses, rel=1e-9)
        assert mis == pytest.approx(run.llc_misses, rel=1e-9)

    def test_wall_time_matches(self, engine_6core):
        app = get_application("sp")
        sampled = hpcrun_sampled(engine_6core, app, interval_s=3.0)
        run = engine_6core.baseline(app).target
        assert sampled.wall_time_s == pytest.approx(run.execution_time_s, rel=1e-9)

    def test_interval_independence_of_totals(self, engine_6core, phased_app):
        fine = hpcrun_sampled(engine_6core, phased_app, interval_s=0.5)
        coarse = hpcrun_sampled(engine_6core, phased_app, interval_s=25.0)
        np.testing.assert_allclose(fine.totals(), coarse.totals(), rtol=1e-9)

    def test_phased_totals_match_phase_sum(self, engine_6core, phased_app):
        sampled = hpcrun_sampled(engine_6core, phased_app, interval_s=2.0)
        expected_time = sum(
            engine_6core.baseline(p).target.execution_time_s
            for p in phased_app.phase_specs()
        )
        assert sampled.wall_time_s == pytest.approx(expected_time, rel=1e-9)


class TestTemporalStructure:
    def test_flat_app_has_constant_intensity(self, engine_6core):
        app = get_application("canneal")
        sampled = hpcrun_sampled(engine_6core, app, interval_s=10.0)
        series = sampled.intensity_series()
        assert series.std() < series.mean() * 1e-9

    def test_phased_app_shows_phase_transition(self, engine_6core, phased_app):
        """The sampled series reveals what the averaged totals hide."""
        sampled = hpcrun_sampled(engine_6core, phased_app, interval_s=2.0)
        series = sampled.intensity_series()
        # Memory phase first: high intensity, then the compute phase.
        assert series[0] > 100 * series[-1]
        ins, _acc, mis = sampled.totals()
        average = mis / ins
        # The average sits strictly between the phase extremes — the
        # "loss of temporal information" made concrete.
        assert series[-1] < average < series[0]

    def test_last_sample_truncated_to_run_end(self, engine_6core):
        app = get_application("ep")
        sampled = hpcrun_sampled(engine_6core, app, interval_s=7.0)
        assert sampled.samples[-1].duration_s <= 7.0
        full = sampled.samples[:-1]
        assert all(s.duration_s == pytest.approx(7.0) for s in full)

    def test_sample_metadata(self, engine_6core):
        sampled = hpcrun_sampled(engine_6core, get_application("lu"))
        assert sampled.app_name == "lu"
        assert sampled.processor_name == "Xeon E5649"
        starts = [s.start_s for s in sampled.samples]
        assert starts == sorted(starts)

    def test_ips_property(self, engine_6core):
        sampled = hpcrun_sampled(engine_6core, get_application("ep"), interval_s=4.0)
        run = engine_6core.baseline(get_application("ep")).target
        assert sampled.samples[0].ips == pytest.approx(
            run.instructions_per_second, rel=1e-9
        )

    def test_validation(self, engine_6core):
        with pytest.raises(ValueError, match="interval"):
            hpcrun_sampled(engine_6core, get_application("ep"), interval_s=0.0)
