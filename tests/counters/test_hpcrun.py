"""Tests for the hpcrun-flat profiler analog."""

import numpy as np
import pytest

from repro.counters.hpcrun import (
    DEFAULT_EVENTS,
    hpcrun_flat,
    profile_from_dict,
    profile_to_dict,
)
from repro.counters.papi import PresetEvent
from repro.workloads.suite import get_application


class TestHpcrunFlat:
    def test_default_events_collected(self, engine_6core):
        profile = hpcrun_flat(engine_6core, get_application("canneal"))
        assert set(profile.counts) == {e.value for e in DEFAULT_EVENTS}

    def test_metadata(self, engine_6core):
        profile = hpcrun_flat(engine_6core, get_application("sp"))
        assert profile.app_name == "sp"
        assert profile.processor_name == "Xeon E5649"
        assert profile.frequency_ghz == pytest.approx(2.53)
        assert profile.wall_time_s > 0

    def test_derived_metrics(self, engine_6core):
        profile = hpcrun_flat(engine_6core, get_application("cg"))
        assert profile.memory_intensity == pytest.approx(
            profile.llc_misses / profile.instructions
        )
        assert profile.cm_per_ca == pytest.approx(
            profile.llc_misses / profile.llc_accesses
        )
        assert profile.ca_per_ins == pytest.approx(
            profile.llc_accesses / profile.instructions
        )

    def test_explicit_pstate(self, engine_6core):
        slow = engine_6core.processor.pstates.slowest
        profile = hpcrun_flat(engine_6core, get_application("ep"), pstate=slow)
        assert profile.frequency_ghz == pytest.approx(slow.frequency_ghz)

    def test_co_located_profiling(self, engine_6core):
        app = get_application("canneal")
        cg = get_application("cg")
        solo = hpcrun_flat(engine_6core, app)
        loaded = hpcrun_flat(engine_6core, app, co_runners=[cg] * 3)
        assert loaded.wall_time_s > solo.wall_time_s
        assert loaded.llc_misses > solo.llc_misses
        # Instructions are a property of the app, not the contention.
        assert loaded.instructions == pytest.approx(solo.instructions)

    def test_custom_event_list(self, engine_6core):
        events = (PresetEvent.PAPI_TOT_INS, PresetEvent.PAPI_TOT_CYC)
        profile = hpcrun_flat(engine_6core, get_application("lu"), events=events)
        assert set(profile.counts) == {e.value for e in events}

    def test_noise_passthrough(self, engine_6core):
        app = get_application("ft")
        clean = hpcrun_flat(engine_6core, app)
        noisy = hpcrun_flat(engine_6core, app, rng=np.random.default_rng(2))
        assert noisy.wall_time_s != clean.wall_time_s


class TestSerialization:
    def test_roundtrip(self, engine_6core):
        profile = hpcrun_flat(engine_6core, get_application("mg"))
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored == profile

    def test_dict_is_plain(self, engine_6core):
        data = profile_to_dict(hpcrun_flat(engine_6core, get_application("mg")))
        assert isinstance(data["counts"], dict)
        assert all(isinstance(k, str) for k in data["counts"])
        import json

        json.dumps(data)  # must be JSON-serializable
