"""Tests for the PAPI-style counter interface."""

import pytest

from repro.counters.papi import EventSet, HardwareCounters, PAPIError, PresetEvent
from repro.workloads.suite import get_application


@pytest.fixture
def hardware(engine_6core):
    run = engine_6core.baseline(get_application("canneal"))
    return HardwareCounters(run.target, frequency_ghz=run.frequency_ghz)


class TestHardwareCounters:
    def test_tot_ins(self, hardware):
        assert hardware.read(PresetEvent.PAPI_TOT_INS) == pytest.approx(
            get_application("canneal").instructions
        )

    def test_tot_cyc_consistent_with_time(self, hardware):
        cyc = hardware.read(PresetEvent.PAPI_TOT_CYC)
        expected = hardware.run.execution_time_s * hardware.frequency_ghz * 1e9
        assert cyc == pytest.approx(expected)

    def test_l3_counters(self, hardware):
        tca = hardware.read(PresetEvent.PAPI_L3_TCA)
        tcm = hardware.read(PresetEvent.PAPI_L3_TCM)
        assert tca == pytest.approx(hardware.run.llc_accesses)
        assert tcm == pytest.approx(hardware.run.llc_misses)
        assert tcm <= tca

    def test_l2_presets_unavailable_on_l3_machine(self, hardware):
        assert not hardware.available(PresetEvent.PAPI_L2_TCA)
        with pytest.raises(PAPIError, match="not available"):
            hardware.read(PresetEvent.PAPI_L2_TCM)

    def test_l2_llc_machine(self, engine_6core):
        run = engine_6core.baseline(get_application("ep"))
        hw = HardwareCounters(run.target, frequency_ghz=run.frequency_ghz, llc_level=2)
        assert hw.available(PresetEvent.PAPI_L2_TCA)
        assert not hw.available(PresetEvent.PAPI_L3_TCA)
        assert hw.read(PresetEvent.PAPI_L2_TCM) == pytest.approx(run.target.llc_misses)

    def test_invalid_llc_level(self, hardware):
        with pytest.raises(PAPIError):
            HardwareCounters(hardware.run, frequency_ghz=2.53, llc_level=4)


class TestEventSetLifecycle:
    def test_normal_flow(self, hardware):
        es = EventSet(hardware)
        es.add_event(PresetEvent.PAPI_TOT_INS)
        es.add_event(PresetEvent.PAPI_L3_TCM)
        es.start()
        mid = es.read()
        counts = es.stop()
        assert set(counts) == {PresetEvent.PAPI_TOT_INS, PresetEvent.PAPI_L3_TCM}
        assert mid == counts
        assert es.last_counts == counts

    def test_add_while_running_rejected(self, hardware):
        es = EventSet(hardware)
        es.add_event(PresetEvent.PAPI_TOT_INS)
        es.start()
        with pytest.raises(PAPIError, match="while the event set is running"):
            es.add_event(PresetEvent.PAPI_L3_TCA)

    def test_duplicate_event_rejected(self, hardware):
        es = EventSet(hardware)
        es.add_event(PresetEvent.PAPI_TOT_INS)
        with pytest.raises(PAPIError, match="already in event set"):
            es.add_event(PresetEvent.PAPI_TOT_INS)

    def test_unavailable_event_rejected_at_add(self, hardware):
        es = EventSet(hardware)
        with pytest.raises(PAPIError, match="not available"):
            es.add_event(PresetEvent.PAPI_L2_TCA)

    def test_start_empty_rejected(self, hardware):
        es = EventSet(hardware)
        with pytest.raises(PAPIError, match="empty"):
            es.start()

    def test_double_start_rejected(self, hardware):
        es = EventSet(hardware)
        es.add_event(PresetEvent.PAPI_TOT_INS)
        es.start()
        with pytest.raises(PAPIError, match="already running"):
            es.start()

    def test_read_or_stop_before_start_rejected(self, hardware):
        es = EventSet(hardware)
        es.add_event(PresetEvent.PAPI_TOT_INS)
        with pytest.raises(PAPIError, match="not running"):
            es.read()
        with pytest.raises(PAPIError, match="not running"):
            es.stop()

    def test_restart_after_stop(self, hardware):
        es = EventSet(hardware)
        es.add_event(PresetEvent.PAPI_TOT_INS)
        es.start()
        es.stop()
        es.add_event(PresetEvent.PAPI_L3_TCA)  # allowed while stopped
        es.start()
        counts = es.stop()
        assert len(counts) == 2

    def test_last_counts_none_before_first_stop(self, hardware):
        es = EventSet(hardware)
        assert es.last_counts is None

    def test_events_property(self, hardware):
        es = EventSet(hardware)
        es.add_event(PresetEvent.PAPI_L3_TCA)
        es.add_event(PresetEvent.PAPI_TOT_INS)
        assert es.events == (PresetEvent.PAPI_L3_TCA, PresetEvent.PAPI_TOT_INS)
