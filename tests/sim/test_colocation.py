"""Tests for co-location scenario descriptions and runners."""

import numpy as np
import pytest

from repro.cache.reuse import ReuseProfile
from repro.machine import XEON_E5649
from repro.sim.colocation import (
    ColocationScenario,
    homogeneous_scenarios,
    normalized_execution_time,
    run_scenario,
)
from repro.workloads.app import ApplicationSpec


class TestColocationScenario:
    def test_baseline_scenario(self):
        s = ColocationScenario("canneal", None, 0, 2.53)
        assert s.is_baseline
        assert "solo" in s.describe()

    def test_co_located_scenario(self):
        s = ColocationScenario("canneal", "cg", 3, 2.53)
        assert not s.is_baseline
        assert "3x cg" in s.describe()

    def test_validation(self):
        with pytest.raises(ValueError, match="needs a co-app"):
            ColocationScenario("canneal", None, 2, 2.53)
        with pytest.raises(ValueError, match="must not name"):
            ColocationScenario("canneal", "cg", 0, 2.53)
        with pytest.raises(ValueError, match="non-negative"):
            ColocationScenario("canneal", "cg", -1, 2.53)


class TestHomogeneousScenarios:
    def test_loop_nest_size(self):
        scenarios = homogeneous_scenarios(
            XEON_E5649, ["canneal", "sp"], ["cg"], [1, 3]
        )
        # 6 pstates x 2 targets x 1 co-app x 2 counts
        assert len(scenarios) == 24

    def test_counts_validated_upfront(self):
        with pytest.raises(ValueError, match="at most 5"):
            homogeneous_scenarios(XEON_E5649, ["canneal"], ["cg"], [6])

    def test_all_frequencies_present(self):
        scenarios = homogeneous_scenarios(XEON_E5649, ["ep"], ["cg"], [1])
        freqs = {s.frequency_ghz for s in scenarios}
        assert freqs == set(XEON_E5649.pstates.frequencies_ghz)


class TestRunScenario:
    def test_baseline_run(self, engine_6core):
        s = ColocationScenario("canneal", None, 0, 2.53)
        run = run_scenario(engine_6core, s)
        assert run.target.app.name == "canneal"
        assert len(run.co_runners) == 0

    def test_co_located_run(self, engine_6core):
        s = ColocationScenario("canneal", "cg", 2, 2.13)
        run = run_scenario(engine_6core, s)
        assert len(run.co_runners) == 2
        assert run.frequency_ghz == pytest.approx(2.13)

    def test_extra_apps_resolution(self, engine_6core):
        custom = ApplicationSpec(
            name="custom",
            suite="TEST",
            instructions=1e10,
            base_cpi=1.0,
            accesses_per_instruction=0.001,
            reuse=ReuseProfile.single(1024.0 * 1024.0),
        )
        s = ColocationScenario("custom", "cg", 1, 2.53)
        run = run_scenario(engine_6core, s, extra_apps={"custom": custom})
        assert run.target.app.name == "custom"

    def test_unknown_frequency_rejected(self, engine_6core):
        s = ColocationScenario("canneal", "cg", 1, 9.99)
        with pytest.raises(Exception, match="no P-state"):
            run_scenario(engine_6core, s)

    def test_rng_noise_passthrough(self, engine_6core):
        s = ColocationScenario("sp", "cg", 1, 2.53)
        clean = run_scenario(engine_6core, s).target.execution_time_s
        noisy = run_scenario(
            engine_6core, s, rng=np.random.default_rng(5)
        ).target.execution_time_s
        assert clean != noisy


class TestNormalizedExecutionTime:
    def test_basic(self):
        assert normalized_execution_time(260.0, 200.0) == pytest.approx(1.3)

    def test_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            normalized_execution_time(100.0, 0.0)
