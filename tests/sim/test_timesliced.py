"""Tests for the time-sliced co-location simulator."""

import numpy as np
import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.timesliced import TimeSlicedSimulator
from repro.machine import XEON_E5649
from repro.workloads.suite import get_application


@pytest.fixture(scope="module")
def sim(engine_6core):
    return TimeSlicedSimulator(engine_6core, slice_s=2.0)


class TestSteadyStateAgreement:
    def test_solo_matches_engine(self, sim, engine_6core):
        app = get_application("canneal")
        steady = engine_6core.baseline(app).target.execution_time_s
        sliced = sim.run(app).execution_time_s
        assert sliced == pytest.approx(steady, rel=1e-6)

    def test_restarting_co_runners_match_engine(self, sim, engine_6core):
        """With the paper's restart protocol, pressure is constant and the
        time-sliced result equals the steady-state one."""
        canneal, cg = get_application("canneal"), get_application("cg")
        steady = engine_6core.run(canneal, [cg] * 3).target.execution_time_s
        sliced = sim.run(canneal, [cg] * 3, restart_co_runners=True)
        assert sliced.execution_time_s == pytest.approx(steady, rel=1e-6)

    def test_slice_size_does_not_change_restart_result(self, engine_6core):
        canneal, cg = get_application("canneal"), get_application("cg")
        coarse = TimeSlicedSimulator(engine_6core, slice_s=20.0)
        fine = TimeSlicedSimulator(engine_6core, slice_s=0.5)
        t_coarse = coarse.run(canneal, [cg] * 2).execution_time_s
        t_fine = fine.run(canneal, [cg] * 2).execution_time_s
        assert t_coarse == pytest.approx(t_fine, rel=1e-6)


class TestDepartingCoRunners:
    def test_short_departing_co_runners_speed_up_target(self, sim, engine_6core):
        """Once short co-runner jobs finish and leave, the target runs at
        baseline speed — final time sits between baseline and steady."""
        canneal = get_application("canneal")
        short_cg = get_application("cg").scaled(0.15)
        baseline = engine_6core.baseline(canneal).target.execution_time_s
        steady = engine_6core.run(
            canneal, [short_cg] * 3
        ).target.execution_time_s
        departed = sim.run(
            canneal, [short_cg] * 3, restart_co_runners=False
        ).execution_time_s
        assert baseline < departed < steady

    def test_restart_counts_completions(self, sim):
        canneal = get_application("canneal")
        short_cg = get_application("cg").scaled(0.1)
        result = sim.run(canneal, [short_cg] * 2, restart_co_runners=True)
        assert result.co_runner_completions.get("cg", 0) >= 2

    def test_departed_co_runners_complete_once(self, sim):
        canneal = get_application("canneal")
        short_cg = get_application("cg").scaled(0.1)
        result = sim.run(canneal, [short_cg] * 3, restart_co_runners=False)
        assert result.co_runner_completions == {"cg": 3}

    def test_timeline_shows_pressure_decay(self, sim):
        """DRAM utilization drops across the timeline as jobs depart."""
        canneal = get_application("canneal")
        short_cg = get_application("cg").scaled(0.15)
        result = sim.run(canneal, [short_cg] * 3, restart_co_runners=False)
        rhos = [s.dram_utilization for s in result.timeline]
        assert rhos[0] > rhos[-1]
        # Target speeds up over time.
        ips = [s.target_ips for s in result.timeline]
        assert ips[-1] > ips[0]

    def test_active_names_shrink(self, sim):
        canneal = get_application("canneal")
        short_cg = get_application("cg").scaled(0.1)
        result = sim.run(canneal, [short_cg] * 2, restart_co_runners=False)
        first = result.timeline[0].active_names
        last = result.timeline[-1].active_names
        assert len(first) == 3
        assert last == ("canneal",)


class TestBookkeeping:
    def test_timeline_durations_sum_to_total(self, sim):
        canneal, cg = get_application("canneal"), get_application("cg")
        result = sim.run(canneal, [cg] * 2)
        total = sum(s.duration_s for s in result.timeline)
        assert total == pytest.approx(result.execution_time_s)

    def test_timeline_starts_contiguous(self, sim):
        result = sim.run(get_application("sp"), [get_application("cg")])
        for prev, cur in zip(result.timeline, result.timeline[1:]):
            assert cur.start_s == pytest.approx(prev.start_s + prev.duration_s)

    def test_validation(self, engine_6core):
        with pytest.raises(ValueError, match="slice length"):
            TimeSlicedSimulator(engine_6core, slice_s=0.0)
        sim = TimeSlicedSimulator(engine_6core)
        with pytest.raises(ValueError, match="at most 5"):
            sim.run(get_application("ep"), [get_application("cg")] * 6)

    def test_max_slices_guard(self, engine_6core):
        sim = TimeSlicedSimulator(engine_6core, slice_s=0.001)
        with pytest.raises(RuntimeError, match="did not finish"):
            sim.run(get_application("canneal"), max_slices=10)
