"""Direct tests of the engine's public steady-state solver."""

import numpy as np
import pytest

from repro.workloads.suite import get_application


class TestSolveSteadyState:
    def test_arrays_aligned_with_apps(self, engine_6core):
        apps = (get_application("canneal"), get_application("cg"),
                get_application("ep"))
        state = engine_6core.solve_steady_state(apps)
        n = len(apps)
        assert state.apps == apps
        assert state.seconds_per_instruction.shape == (n,)
        assert state.miss_ratios.shape == (n,)
        assert state.occupancies_bytes.shape == (n,)

    def test_default_pstate_is_fastest(self, engine_6core):
        state = engine_6core.solve_steady_state((get_application("ep"),))
        assert state.pstate is engine_6core.processor.pstates.fastest

    def test_instructions_per_second_inverse(self, engine_6core):
        state = engine_6core.solve_steady_state(
            (get_application("canneal"), get_application("cg"))
        )
        np.testing.assert_allclose(
            state.instructions_per_second * state.seconds_per_instruction,
            1.0,
        )

    def test_matches_run_times(self, engine_6core):
        """run() is a thin wrapper: time = instructions * tpi."""
        canneal, cg = get_application("canneal"), get_application("cg")
        state = engine_6core.solve_steady_state((canneal, cg, cg))
        run = engine_6core.run(canneal, [cg, cg])
        assert run.target.execution_time_s == pytest.approx(
            canneal.instructions * float(state.seconds_per_instruction[0])
        )

    def test_bandwidth_consistency(self, engine_6core):
        apps = (get_application("cg"), get_application("cg"))
        state = engine_6core.solve_steady_state(apps)
        api = np.array([a.accesses_per_instruction for a in apps])
        expected = float(
            (api / state.seconds_per_instruction * state.miss_ratios).sum()
        ) * engine_6core.processor.llc.line_bytes
        assert state.miss_bandwidth_bytes_per_s == pytest.approx(expected)

    def test_validation(self, engine_6core):
        with pytest.raises(ValueError, match="at least one"):
            engine_6core.solve_steady_state(())
        too_many = tuple([get_application("ep")] * 7)
        with pytest.raises(ValueError, match="exceed"):
            engine_6core.solve_steady_state(too_many)

    def test_pinned_occupancies_respected(self, engine_6core):
        apps = (get_application("canneal"), get_application("cg"))
        cap = engine_6core.processor.llc.size_bytes
        pinned = np.array([0.7 * cap, 0.3 * cap])
        state = engine_6core.solve_steady_state(
            apps, fixed_occupancies=pinned
        )
        for occ, alloc, app in zip(state.occupancies_bytes, pinned, apps):
            assert occ == pytest.approx(min(alloc, app.footprint_bytes))

    def test_pinned_validation(self, engine_6core):
        apps = (get_application("ep"),)
        cap = engine_6core.processor.llc.size_bytes
        with pytest.raises(ValueError, match="one occupancy"):
            engine_6core.solve_steady_state(
                apps, fixed_occupancies=np.zeros(2)
            )
        with pytest.raises(ValueError, match="at most the LLC"):
            engine_6core.solve_steady_state(
                apps, fixed_occupancies=np.array([2.0 * cap])
            )
        with pytest.raises(ValueError, match="non-negative"):
            engine_6core.solve_steady_state(
                apps, fixed_occupancies=np.array([-1.0])
            )

    def test_full_machine_allowed(self, engine_6core):
        """Unlike run() (target + max_co_located), the raw solver accepts
        up to num_cores applications — the time-sliced simulator uses it
        with the target counted in."""
        apps = tuple([get_application("ep")] * 6)
        state = engine_6core.solve_steady_state(apps)
        assert state.miss_ratios.shape == (6,)
