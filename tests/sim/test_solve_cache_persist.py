"""SolveCache persistence (dump/load) and bounded-eviction accounting."""

import pytest

from repro.harness.baselines import collect_baselines
from repro.machine import XEON_E5649
from repro.sim import SimulationEngine
from repro.sim.solve_cache import GLOBAL_ENGINE_STATS, EngineStats, SolveCache
from repro.workloads import get_application


class TestDumpLoad:
    def test_bytes_roundtrip(self):
        cache = SolveCache()
        cache.put(("a", 1), {"x": 1.0})
        cache.put(("b", 2), {"y": 2.0})
        fresh = SolveCache()
        assert fresh.load_bytes(cache.dump_bytes()) == 2
        assert fresh.get(("a", 1)) == {"x": 1.0}
        assert len(fresh) == 2

    def test_file_roundtrip(self, tmp_path):
        cache = SolveCache()
        cache.put(("k",), "state")
        path = tmp_path / "cache.pkl"
        assert cache.dump(path) == 1
        fresh = SolveCache()
        assert fresh.load(path) == 1
        assert ("k",) in fresh

    def test_existing_entries_win_on_merge(self):
        ours = SolveCache()
        ours.put(("k",), "ours")
        theirs = SolveCache()
        theirs.put(("k",), "theirs")
        theirs.put(("other",), "new")
        assert ours.load_bytes(theirs.dump_bytes()) == 1  # only ("other",)
        assert ours.get(("k",)) == "ours"

    def test_corrupt_payload_raises_value_error(self):
        with pytest.raises(ValueError, match="corrupt"):
            SolveCache().load_bytes(b"garbage")

    def test_load_respects_bound(self):
        donor = SolveCache()
        for i in range(10):
            donor.put((i,), i)
        bounded = SolveCache(max_entries=3)
        bounded.load_bytes(donor.dump_bytes())
        assert len(bounded) == 3
        assert bounded.evictions == 7

    def test_counters_do_not_travel(self):
        cache = SolveCache()
        cache.put(("k",), 1)
        cache.get(("k",))
        cache.get(("miss",))
        fresh = SolveCache()
        fresh.load_bytes(cache.dump_bytes())
        assert fresh.hits == 0 and fresh.misses == 0


class TestEvictionCounter:
    def test_unbounded_never_evicts(self):
        cache = SolveCache()
        for i in range(100):
            assert cache.put((i,), i) is False
        assert cache.evictions == 0

    def test_put_reports_and_counts_evictions(self):
        cache = SolveCache(max_entries=2)
        assert cache.put((1,), 1) is False
        assert cache.put((2,), 2) is False
        assert cache.put((3,), 3) is True
        assert cache.evictions == 1
        assert (1,) not in cache and (3,) in cache

    def test_clear_resets_evictions(self):
        cache = SolveCache(max_entries=1)
        cache.put((1,), 1)
        cache.put((2,), 2)
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0

    def test_engine_stats_record_merge_reset(self):
        stats = EngineStats()
        stats.record_eviction()
        stats.record_eviction()
        assert stats.cache_evictions == 2
        other = EngineStats()
        other.record_eviction()
        stats.merge(other)
        assert stats.cache_evictions == 3
        assert "3 LRU evictions" in stats.summary()
        stats.reset()
        assert stats.cache_evictions == 0

    def test_summary_silent_without_evictions(self):
        assert "evictions" not in EngineStats().summary()

    def test_engine_records_evictions_under_bounded_cache(self):
        engine = SimulationEngine(XEON_E5649, cache=SolveCache(max_entries=2))
        ep = get_application("ep")
        before = GLOBAL_ENGINE_STATS.cache_evictions
        # Baselines sweep 6 P-states => at least 4 evictions with bound 2.
        collect_baselines(engine, apps=[ep])
        assert engine.cache.evictions >= 4
        assert engine.stats.cache_evictions == engine.cache.evictions
        assert (
            GLOBAL_ENGINE_STATS.cache_evictions - before
            == engine.stats.cache_evictions
        )

    def test_prometheus_exposition_includes_evictions(self):
        from repro.obs.adapters import render_engine_stats

        stats = EngineStats()
        stats.record_eviction()
        text = render_engine_stats(stats)
        assert "repro_engine_cache_evictions_total 1" in text
