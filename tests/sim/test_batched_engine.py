"""Batched steady-state solver: bit-identity, cache integration, freezing.

The contract under test is exact: for every scenario, the batched solver
must reproduce the serial per-scenario solve *bit for bit* — same
iteration counts, same float64 values — because collected datasets must
not depend on whether (or how) scenarios were batched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.reuse import ProfileStack, ProfileTable, ReuseProfile, ordered_sum
from repro.cache.sharing import waterfill, waterfill_batched
from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.sim import (
    BatchConvergenceError,
    SimulationEngine,
    SolveCache,
    SolveRequest,
)
from repro.workloads import all_applications, get_application


def assert_states_identical(serial, batched):
    assert serial.iterations == batched.iterations
    assert np.array_equal(
        serial.seconds_per_instruction, batched.seconds_per_instruction
    )
    assert np.array_equal(serial.miss_ratios, batched.miss_ratios)
    assert np.array_equal(serial.occupancies_bytes, batched.occupancies_bytes)
    assert serial.miss_bandwidth_bytes_per_s == batched.miss_bandwidth_bytes_per_s
    assert serial.dram_utilization == batched.dram_utilization
    assert serial.dram_latency_ns == batched.dram_latency_ns


# ------------------------------------------------------------ bit-identity


@pytest.mark.parametrize(
    "processor,counts",
    [(XEON_E5649, (1, 3, 5)), (XEON_E5_2697V2, (1, 3, 5, 7, 9, 11))],
    ids=["e5649", "e5-2697v2"],
)
def test_batched_bit_identical_to_serial_table5_sweep(processor, counts):
    """Full Table V-style sweep: every app count, co-app, and P-state."""
    targets = [get_application(n) for n in ("canneal", "sp", "fluidanimate", "ep")]
    co_apps = [get_application(n) for n in ("cg", "ep")]
    requests = [
        SolveRequest(apps=(target,) + (co,) * count, pstate=pstate)
        for pstate in processor.pstates
        for target in targets
        for co in co_apps
        for count in counts
    ]
    serial_engine = SimulationEngine(processor)
    batch_engine = SimulationEngine(processor)
    serial = [serial_engine.solve_steady_state(r.apps, r.pstate) for r in requests]
    batched = batch_engine.solve_steady_state_batched(requests)
    assert len(batched) == len(requests)
    for a, b in zip(serial, batched):
        assert_states_identical(a, b)


def test_batched_mixed_widths_and_pstates_in_one_batch():
    """Solo, mid-width, and full-width scenarios at different P-states."""
    proc = XEON_E5649
    cg, ep, canneal = (get_application(n) for n in ("cg", "ep", "canneal"))
    slow, fast = proc.pstates[0], proc.pstates.fastest
    requests = [
        SolveRequest(apps=(canneal,), pstate=fast),
        SolveRequest(apps=(canneal, cg, cg, cg), pstate=slow),
        SolveRequest(apps=(ep, cg, cg, cg, cg, cg), pstate=fast),
        SolveRequest(apps=(cg, ep, ep), pstate=slow),
    ]
    serial = [
        SimulationEngine(proc).solve_steady_state(r.apps, r.pstate)
        for r in requests
    ]
    batched = SimulationEngine(proc).solve_steady_state_batched(requests)
    for a, b in zip(serial, batched):
        assert_states_identical(a, b)


def test_batched_pinned_occupancies_match_serial():
    proc = XEON_E5649
    cg, ep = get_application("cg"), get_application("ep")
    cap = float(proc.llc.size_bytes)
    requests = [
        SolveRequest(apps=(cg, ep), fixed_occupancies=(cap / 2, cap / 4)),
        SolveRequest(apps=(cg, ep, ep)),
        SolveRequest(apps=(ep,), fixed_occupancies=(cap / 8,)),
    ]
    eng = SimulationEngine(proc)
    serial = [
        SimulationEngine(proc).solve_steady_state(
            r.apps,
            r.pstate,
            fixed_occupancies=(
                None
                if r.fixed_occupancies is None
                else np.asarray(r.fixed_occupancies, dtype=float)
            ),
        )
        for r in requests
    ]
    batched = eng.solve_steady_state_batched(requests)
    for a, b in zip(serial, batched):
        assert_states_identical(a, b)


def test_batched_relabels_apps_and_pstate_per_member():
    """Dedupe members get their own apps/pstate back, not the solved twin's."""
    proc = XEON_E5649
    cg = get_application("cg")
    # Same behaviour, different identity: the solve key ignores names.
    from dataclasses import replace as dc_replace

    cg_alias = dc_replace(cg, name="cg-alias")
    requests = [SolveRequest(apps=(cg,)), SolveRequest(apps=(cg_alias,))]
    engine = SimulationEngine(proc)
    states = engine.solve_steady_state_batched(requests)
    assert states[0].apps[0].name == "cg"
    assert states[1].apps[0].name == "cg-alias"
    assert engine.stats.solves == 1
    assert engine.stats.batch_dedupe_hits == 1


def test_bare_app_tuples_accepted_as_requests():
    proc = XEON_E5649
    cg, ep = get_application("cg"), get_application("ep")
    engine = SimulationEngine(proc)
    states = engine.solve_steady_state_batched([(cg, ep), (ep,)])
    serial = SimulationEngine(proc).solve_steady_state((cg, ep))
    assert_states_identical(serial, states[0])
    assert states[1].pstate is proc.pstates.fastest


def test_empty_batch_returns_empty_list():
    engine = SimulationEngine(XEON_E5649)
    assert engine.solve_steady_state_batched([]) == []
    assert engine.stats.batches == 0


def test_batch_validation_names_offending_scenario():
    proc = XEON_E5649
    cg = get_application("cg")
    engine = SimulationEngine(proc)
    with pytest.raises(ValueError, match="batch scenario 1"):
        engine.solve_steady_state_batched(
            [SolveRequest(apps=(cg,)), SolveRequest(apps=())]
        )
    with pytest.raises(ValueError, match="batch scenario 0"):
        engine.solve_steady_state_batched(
            [SolveRequest(apps=(cg,) * (proc.num_cores + 1))]
        )
    with pytest.raises(ValueError, match="batch scenario 0.*occupancy"):
        engine.solve_steady_state_batched(
            [SolveRequest(apps=(cg,), fixed_occupancies=(1.0, 2.0))]
        )


# -------------------------------------------------------- failure handling


def test_batch_convergence_error_names_scenario_and_keeps_good_states():
    proc = XEON_E5649
    cg, ep = get_application("cg"), get_application("ep")
    good = SolveRequest(apps=(ep,))
    bad = SolveRequest(apps=(cg, ep, ep), pstate=proc.pstates[0])
    # Cap the iterations between the two scenarios' convergence points so
    # exactly one member of the batch fails.
    ref_engine = SimulationEngine(proc)
    good_iters = ref_engine.solve_steady_state(good.apps).iterations
    bad_iters = ref_engine.solve_steady_state(bad.apps, bad.pstate).iterations
    assert good_iters < bad_iters
    engine = SimulationEngine(proc, max_iterations=good_iters)
    with pytest.raises(BatchConvergenceError) as excinfo:
        engine.solve_steady_state_batched([good, bad])
    err = excinfo.value
    assert len(err.failures) == 1
    failure = err.failures[0]
    assert failure.index == 1
    assert failure.target == "cg"
    assert failure.co_runners == ("ep", "ep")
    assert failure.frequency_ghz == proc.pstates[0].frequency_ghz
    assert "cg" in str(err) and "batch index 1" in str(err)
    # The non-diverging scenario still produced a result.
    assert err.states[1] is None
    ref = SimulationEngine(proc, max_iterations=good_iters).solve_steady_state(
        good.apps
    )
    assert_states_identical(ref, err.states[0])
    assert engine.stats.convergence_failures == 1


# ------------------------------------------------------- cache integration


def test_cache_hits_served_without_entering_batch():
    proc = XEON_E5649
    cg, ep = get_application("cg"), get_application("ep")
    engine = SimulationEngine(proc, cache=SolveCache())
    warm = engine.solve_steady_state((cg, ep))
    solves_before = engine.stats.solves
    states = engine.solve_steady_state_batched(
        [SolveRequest(apps=(cg, ep)), SolveRequest(apps=(ep,))]
    )
    # The warm scenario was a pure cache hit; only the cold one solved.
    assert engine.stats.solves == solves_before + 1
    assert engine.stats.cache_hits == 1
    assert_states_identical(warm, states[0])


def test_duplicate_keys_in_one_batch_solved_once_and_inserted_once():
    proc = XEON_E5649
    cg, ep = get_application("cg"), get_application("ep")
    cache = SolveCache()
    engine = SimulationEngine(proc, cache=cache)
    requests = [
        SolveRequest(apps=(cg, ep)),
        SolveRequest(apps=(ep,)),
        SolveRequest(apps=(cg, ep)),
        SolveRequest(apps=(cg, ep)),
    ]
    states = engine.solve_steady_state_batched(requests)
    assert engine.stats.solves == 2  # two unique keys
    assert engine.stats.batch_dedupe_hits == 2
    assert engine.stats.cache_misses == 2  # one lookup per unique key
    assert len(cache) == 2  # each unique result inserted exactly once
    assert_states_identical(states[0], states[2])
    assert_states_identical(states[0], states[3])


def test_dedupe_works_without_a_cache():
    proc = XEON_E5649
    cg = get_application("cg")
    engine = SimulationEngine(proc)  # no cache
    states = engine.solve_steady_state_batched(
        [SolveRequest(apps=(cg,)), SolveRequest(apps=(cg,))]
    )
    assert engine.stats.solves == 1
    assert engine.stats.batch_dedupe_hits == 1
    assert_states_identical(states[0], states[1])


def test_warm_batch_does_zero_fixed_point_iterations():
    proc = XEON_E5649
    cg, ep = get_application("cg"), get_application("ep")
    engine = SimulationEngine(proc, cache=SolveCache())
    requests = [SolveRequest(apps=(cg, ep)), SolveRequest(apps=(ep,))]
    cold = engine.solve_steady_state_batched(requests)
    solves = engine.stats.solves
    iteration_counts = dict(engine.stats.iteration_counts)
    warm = engine.solve_steady_state_batched(requests)
    assert engine.stats.solves == solves
    assert engine.stats.iteration_counts == iteration_counts
    assert engine.stats.cache_hits == 2
    for a, b in zip(cold, warm):
        assert_states_identical(a, b)


# --------------------------------------------------------- stats counters


def test_batched_stats_counters_and_summary():
    proc = XEON_E5649
    cg, ep = get_application("cg"), get_application("ep")
    engine = SimulationEngine(proc)
    engine.solve_steady_state_batched(
        [
            SolveRequest(apps=(cg, ep, ep)),
            SolveRequest(apps=(ep,)),
            SolveRequest(apps=(ep,)),
        ]
    )
    stats = engine.stats
    assert stats.batches == 1
    assert stats.batched_scenarios == 3
    assert stats.batch_dedupe_hits == 1
    # The narrow solo solve converges before the 3-wide one: freezing saves
    # the difference in iterations.
    per_iter = sorted(stats.iteration_counts)
    assert stats.frozen_iterations_saved == max(per_iter) - min(per_iter)
    assert "batched solves: 1 batches" in stats.summary()
    merged = type(stats)()
    merged.merge(stats)
    assert merged.batches == 1
    assert merged.frozen_iterations_saved == stats.frozen_iterations_saved
    merged.reset()
    assert merged.batches == merged.batched_scenarios == 0


def test_batched_counters_rendered_in_metrics_exposition():
    from repro.obs.adapters import render_engine_stats

    proc = XEON_E5649
    engine = SimulationEngine(proc)
    engine.solve_steady_state_batched(
        [SolveRequest(apps=(get_application("ep"),))]
    )
    text = render_engine_stats(engine.stats)
    assert "repro_engine_batches_total 1" in text
    assert "repro_engine_batched_scenarios_total 1" in text
    assert "repro_engine_batch_dedupe_hits_total 0" in text
    assert "repro_engine_frozen_iterations_saved_total 0" in text


# ------------------------------------------------- vectorized ingredients


def test_ordered_sum_invariant_under_zero_padding():
    rng = np.random.default_rng(3)
    x = rng.uniform(0.1, 5.0, size=7)
    padded = np.zeros((2, 12))
    padded[0, :7] = x
    padded[1, :7] = x[::-1]
    assert float(ordered_sum(x)) == float(ordered_sum(padded)[0])
    assert float(ordered_sum(x[::-1])) == float(ordered_sum(padded)[1])


def test_profile_stack_matches_profile_table_bitwise():
    rng = np.random.default_rng(5)
    apps = all_applications()
    rows = [
        [apps[i].reuse for i in rng.choice(len(apps), size=n, replace=True)]
        for n in (1, 3, 6)
    ]
    stack = ProfileStack(rows, pad_apps=6)
    occ = np.zeros((3, 6))
    for i, row in enumerate(rows):
        occ[i, : len(row)] = rng.uniform(0.0, 2**21, size=len(row))
    batched = stack.miss_ratio(occ)
    for i, row in enumerate(rows):
        serial = ProfileTable(row).miss_ratio(occ[i, : len(row)])
        assert np.array_equal(serial, batched[i, : len(row)])
        # Pad columns are exactly zero-miss contributions.
        assert np.all(batched[i, len(row) :] == 0.0)


def test_waterfill_batched_matches_serial_bitwise():
    rng = np.random.default_rng(9)
    capacity = 12 * 2**20
    widths = (1, 2, 4, 6)
    a = max(widths)
    pressure = np.zeros((len(widths), a))
    demand = np.zeros((len(widths), a))
    valid = np.zeros((len(widths), a), dtype=bool)
    for i, n in enumerate(widths):
        pressure[i, :n] = rng.uniform(0.0, 1.0, size=n)
        demand[i, :n] = rng.uniform(0.0, 1.5, size=n) * capacity
        valid[i, :n] = True
    batched = waterfill_batched(pressure, demand, capacity, valid=valid)
    for i, n in enumerate(widths):
        serial = waterfill(pressure[i, :n].copy(), demand[i, :n], capacity)
        assert np.array_equal(serial, batched[i, :n])
        assert np.all(batched[i, n:] == 0.0)


def test_waterfill_batched_zero_pressure_even_split_excludes_pads():
    capacity = 1000.0
    pressure = np.zeros((1, 4))
    demand = np.array([[600.0, 600.0, 0.0, 0.0]])
    valid = np.array([[True, True, False, False]])
    alloc = waterfill_batched(pressure, demand, capacity, valid=valid)
    serial = waterfill(np.zeros(2), np.array([600.0, 600.0]), capacity)
    assert np.array_equal(alloc[0, :2], serial)
    assert np.all(alloc[0, 2:] == 0.0)


def test_waterfill_batched_shape_validation():
    with pytest.raises(ValueError, match="matching"):
        waterfill_batched(np.zeros((2, 3)), np.zeros((2, 4)), 10.0)
    with pytest.raises(ValueError, match="matching"):
        waterfill_batched(np.zeros(3), np.zeros(3), 10.0)


def test_dram_model_accepts_per_scenario_bandwidth_vectors():
    from repro.memsys.dram import DRAMModel

    proc = XEON_E5649
    model = DRAMModel(proc.dram)
    demands = np.array([0.0, 1e9, 5e9, 2e10])
    vec_util = model.utilization(demands)
    vec_lat = model.effective_latency_ns(demands)
    for i, d in enumerate(demands):
        assert float(model.utilization(float(d))) == vec_util[i]
        assert float(model.effective_latency_ns(float(d))) == vec_lat[i]


# -------------------------------------------------------------- run_batch


def test_run_batch_matches_run_with_noise():
    proc = XEON_E5649
    cg, ep = get_application("cg"), get_application("ep")
    items = [
        (cg, [ep, ep], None, np.random.default_rng(1)),
        (ep, [], proc.pstates[0], np.random.default_rng(2)),
        (ep, [cg], None, None),
    ]
    batched = SimulationEngine(proc).run_batch(items)
    serial_engine = SimulationEngine(proc)
    serial = [
        serial_engine.run(cg, [ep, ep], rng=np.random.default_rng(1)),
        serial_engine.run(ep, [], pstate=proc.pstates[0], rng=np.random.default_rng(2)),
        serial_engine.run(ep, [cg]),
    ]
    for a, b in zip(serial, batched):
        assert a.target.execution_time_s == b.target.execution_time_s
        assert a.frequency_ghz == b.frequency_ghz
        for ra, rb in zip(a.runs, b.runs):
            assert ra.execution_time_s == rb.execution_time_s
            assert ra.llc_misses == rb.llc_misses
            assert ra.occupancy_bytes == rb.occupancy_bytes
