"""Property-based physics tests for the analytic engine.

Hypothesis generates random applications (via the class-targeted workload
generator) and random co-location scenarios; every scenario must satisfy
the physical invariants of the contention model, regardless of parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.sim import SimulationEngine
from repro.workloads.classes import MemoryIntensityClass
from repro.workloads.generator import generate_application

ENGINES = {
    "e5649": SimulationEngine(XEON_E5649),
    "e5-2697v2": SimulationEngine(XEON_E5_2697V2),
}


def random_app(seed: int):
    rng = np.random.default_rng(seed)
    cls = list(MemoryIntensityClass)[seed % 4]
    return generate_application(cls, rng)


@given(
    seed_t=st.integers(min_value=0, max_value=5000),
    seed_c=st.integers(min_value=0, max_value=5000),
    count=st.integers(min_value=0, max_value=5),
    machine=st.sampled_from(["e5649", "e5-2697v2"]),
)
@settings(max_examples=40, deadline=None)
def test_colocation_never_speeds_up_target(seed_t, seed_c, count, machine):
    """Interference can only hurt: co-located time >= solo time."""
    engine = ENGINES[machine]
    target, co = random_app(seed_t), random_app(seed_c)
    solo = engine.baseline(target).target.execution_time_s
    loaded = engine.run(target, [co] * count).target.execution_time_s
    assert loaded >= solo * (1.0 - 1e-9)


@given(
    seed_t=st.integers(min_value=0, max_value=5000),
    seed_c=st.integers(min_value=0, max_value=5000),
    machine=st.sampled_from(["e5649", "e5-2697v2"]),
)
@settings(max_examples=25, deadline=None)
def test_degradation_monotone_in_count(seed_t, seed_c, machine):
    """More identical co-runners never help the target."""
    engine = ENGINES[machine]
    target, co = random_app(seed_t), random_app(seed_c)
    times = [
        engine.run(target, [co] * n).target.execution_time_s
        for n in (0, 2, engine.processor.max_co_located)
    ]
    assert times[0] <= times[1] * (1 + 1e-9)
    assert times[1] <= times[2] * (1 + 1e-9)


@given(seed=st.integers(min_value=0, max_value=5000))
@settings(max_examples=25, deadline=None)
def test_dvfs_bounds(seed):
    """Slowing the clock by k stretches time by at most k (memory time
    does not scale) and at least 1 (it never speeds things up)."""
    engine = ENGINES["e5649"]
    app = random_app(seed)
    ladder = engine.processor.pstates
    fast = engine.baseline(app, pstate=ladder.fastest).target.execution_time_s
    slow = engine.baseline(app, pstate=ladder.slowest).target.execution_time_s
    k = ladder.slowdown_factor(ladder.slowest)
    ratio = slow / fast
    assert 1.0 - 1e-9 <= ratio <= k + 1e-9


@given(
    seed_t=st.integers(min_value=0, max_value=5000),
    seed_c=st.integers(min_value=0, max_value=5000),
    count=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_counter_consistency(seed_t, seed_c, count):
    """TCM <= TCA <= NI-scaled bound; ratios within [0, 1]; bandwidth
    accounting matches the DRAM state reported."""
    engine = ENGINES["e5649"]
    target, co = random_app(seed_t), random_app(seed_c)
    run = engine.run(target, [co] * count)
    for app_run in run.runs:
        assert 0.0 <= app_run.miss_ratio <= 1.0
        assert app_run.llc_misses <= app_run.llc_accesses * (1 + 1e-9)
        assert app_run.llc_accesses == pytest.approx(
            app_run.instructions * app_run.app.accesses_per_instruction
        )
    assert 0.0 <= run.dram_utilization <= 0.96
    assert run.dram_latency_ns >= engine.processor.dram.idle_latency_ns - 1e-9


@given(
    seed=st.integers(min_value=0, max_value=5000),
    count=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_occupancies_within_llc(seed, count):
    engine = ENGINES["e5649"]
    target, co = random_app(seed), random_app(seed + 1)
    run = engine.run(target, [co] * count)
    total = sum(r.occupancy_bytes for r in run.runs)
    assert total <= engine.processor.llc.size_bytes * (1 + 1e-6)
    assert all(r.occupancy_bytes >= 0.0 for r in run.runs)


@given(
    seed=st.integers(min_value=0, max_value=5000),
    subset=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_removing_co_runners_never_hurts(seed, subset):
    """Dropping co-runners from a scenario cannot slow the target."""
    engine = ENGINES["e5649"]
    target = random_app(seed)
    co = [random_app(seed + 10 + i) for i in range(5)]
    full = engine.run(target, co).target.execution_time_s
    reduced = engine.run(target, co[:subset]).target.execution_time_s
    assert reduced <= full * (1 + 1e-9)
