"""Tests for the trace-driven sharing simulator."""

import numpy as np
import pytest

from repro.cache.reuse import ReuseProfile
from repro.machine.processor import CacheGeometry
from repro.sim.tracesim import TraceCompetitor, simulate_trace_sharing

KB = 1024.0


@pytest.fixture
def geometry():
    return CacheGeometry(size_bytes=128 * 1024, line_bytes=64, associativity=8)


class TestSimulateTraceSharing:
    def test_access_shares_follow_weights(self, geometry, rng):
        p = ReuseProfile.single(32 * KB)
        comps = [TraceCompetitor("a", p, 1.0), TraceCompetitor("b", p, 3.0)]
        result = simulate_trace_sharing(comps, geometry, 60_000, rng)
        share = result.accesses[1] / result.accesses.sum()
        assert share == pytest.approx(0.75, abs=0.03)

    def test_miss_ratios_in_bounds(self, geometry, rng):
        comps = [
            TraceCompetitor("small", ReuseProfile.single(16 * KB), 1.0),
            TraceCompetitor("big", ReuseProfile.single(512 * KB, compulsory=0.05), 1.0),
        ]
        result = simulate_trace_sharing(comps, geometry, 50_000, rng)
        assert np.all(result.miss_ratios >= 0.0)
        assert np.all(result.miss_ratios <= 1.0)
        # The big streaming competitor misses more.
        assert result.miss_ratios[1] > result.miss_ratios[0]

    def test_occupancies_bounded_by_capacity(self, geometry, rng):
        comps = [
            TraceCompetitor(f"s{i}", ReuseProfile.single(256 * KB), 1.0)
            for i in range(3)
        ]
        result = simulate_trace_sharing(comps, geometry, 50_000, rng)
        assert result.occupancies_bytes.sum() <= geometry.size_bytes

    def test_deterministic_with_seed(self, geometry):
        p = ReuseProfile.single(64 * KB)
        comps = [TraceCompetitor("a", p, 1.0), TraceCompetitor("b", p, 1.0)]
        r1 = simulate_trace_sharing(comps, geometry, 20_000, np.random.default_rng(4))
        r2 = simulate_trace_sharing(comps, geometry, 20_000, np.random.default_rng(4))
        np.testing.assert_array_equal(r1.miss_ratios, r2.miss_ratios)

    def test_names_preserved(self, geometry, rng):
        comps = [
            TraceCompetitor("alpha", ReuseProfile.single(16 * KB), 1.0),
            TraceCompetitor("beta", ReuseProfile.single(16 * KB), 2.0),
        ]
        result = simulate_trace_sharing(comps, geometry, 10_000, rng)
        assert result.names == ("alpha", "beta")

    def test_validation(self, geometry, rng):
        p = ReuseProfile.single(16 * KB)
        with pytest.raises(ValueError, match="at least one"):
            simulate_trace_sharing([], geometry, 100, rng)
        with pytest.raises(ValueError, match="positive"):
            simulate_trace_sharing([TraceCompetitor("a", p, 1.0)], geometry, 0, rng)
        with pytest.raises(ValueError, match="warmup"):
            simulate_trace_sharing(
                [TraceCompetitor("a", p, 1.0)], geometry, 100, rng, warmup_fraction=1.0
            )
        with pytest.raises(ValueError, match="weight"):
            TraceCompetitor("a", p, 0.0)
