"""Tests for the analytic steady-state execution engine."""

import numpy as np
import pytest

from repro.cache.reuse import ReuseProfile
from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.sim.engine import SimulationEngine
from repro.workloads.app import ApplicationPhase, ApplicationSpec, PhasedApplication
from repro.workloads.suite import get_application

MB = 1024.0 * 1024.0


@pytest.fixture
def cpu_bound_app():
    return ApplicationSpec(
        name="cpu",
        suite="TEST",
        instructions=1e11,
        base_cpi=1.0,
        accesses_per_instruction=1e-5,
        reuse=ReuseProfile.single(0.2 * MB),
        mlp=1.0,
    )


@pytest.fixture
def memory_bound_app():
    return ApplicationSpec(
        name="mem",
        suite="TEST",
        instructions=1e11,
        base_cpi=0.8,
        accesses_per_instruction=0.02,
        reuse=ReuseProfile.single(400 * MB, compulsory=0.05),
        mlp=1.5,
    )


class TestBaseline:
    def test_cpu_bound_time_is_cycles_over_frequency(self, engine_6core, cpu_bound_app):
        run = engine_6core.baseline(cpu_bound_app)
        f = XEON_E5649.pstates.fastest.frequency_hz
        expected = cpu_bound_app.instructions * cpu_bound_app.base_cpi / f
        assert run.target.execution_time_s == pytest.approx(expected, rel=0.01)

    def test_memory_bound_slower_than_compute_only(self, engine_6core, memory_bound_app):
        run = engine_6core.baseline(memory_bound_app)
        f = XEON_E5649.pstates.fastest.frequency_hz
        compute_only = memory_bound_app.instructions * memory_bound_app.base_cpi / f
        assert run.target.execution_time_s > compute_only * 1.5

    def test_counters_consistent(self, engine_6core, memory_bound_app):
        t = engine_6core.baseline(memory_bound_app).target
        assert t.instructions == memory_bound_app.instructions
        assert t.llc_accesses == pytest.approx(
            memory_bound_app.instructions
            * memory_bound_app.accesses_per_instruction
        )
        assert t.llc_misses == pytest.approx(t.llc_accesses * t.miss_ratio)
        assert 0.0 <= t.miss_ratio <= 1.0

    def test_derived_counter_ratios(self, engine_6core, memory_bound_app):
        t = engine_6core.baseline(memory_bound_app).target
        assert t.memory_intensity == pytest.approx(t.llc_misses / t.instructions)
        assert t.ca_per_ins == pytest.approx(
            memory_bound_app.accesses_per_instruction
        )
        assert t.cm_per_ca == pytest.approx(t.miss_ratio)


class TestDVFS:
    def test_cpu_bound_scales_with_frequency(self, engine_6core, cpu_bound_app):
        ladder = XEON_E5649.pstates
        fast = engine_6core.baseline(cpu_bound_app, pstate=ladder.fastest)
        slow = engine_6core.baseline(cpu_bound_app, pstate=ladder.slowest)
        ratio = slow.target.execution_time_s / fast.target.execution_time_s
        assert ratio == pytest.approx(ladder.slowdown_factor(ladder.slowest), rel=0.01)

    def test_memory_bound_scales_sublinearly(self, engine_6core, memory_bound_app):
        ladder = XEON_E5649.pstates
        fast = engine_6core.baseline(memory_bound_app, pstate=ladder.fastest)
        slow = engine_6core.baseline(memory_bound_app, pstate=ladder.slowest)
        ratio = slow.target.execution_time_s / fast.target.execution_time_s
        # Memory time does not scale with core frequency.
        assert 1.0 < ratio < ladder.slowdown_factor(ladder.slowest) * 0.95

    def test_baseline_time_decreases_with_frequency(self, engine_6core):
        app = get_application("canneal")
        times = [
            engine_6core.baseline(app, pstate=p).target.execution_time_s
            for p in XEON_E5649.pstates
        ]
        assert all(a < b for a, b in zip(times, times[1:]))


class TestColocation:
    def test_interference_slows_target(self, engine_6core):
        canneal, cg = get_application("canneal"), get_application("cg")
        base = engine_6core.baseline(canneal).target.execution_time_s
        co = engine_6core.run(canneal, [cg]).target.execution_time_s
        assert co > base

    def test_degradation_monotone_in_co_runner_count(self, engine_12core):
        canneal, cg = get_application("canneal"), get_application("cg")
        times = [
            engine_12core.run(canneal, [cg] * n).target.execution_time_s
            for n in range(0, 12, 2)
        ]
        assert all(a < b + 1e-9 for a, b in zip(times, times[1:]))

    def test_memory_intense_co_runners_hurt_more(self, engine_6core):
        target = get_application("canneal")
        with_cg = engine_6core.run(target, [get_application("cg")] * 3)
        with_ep = engine_6core.run(target, [get_application("ep")] * 3)
        assert (
            with_cg.target.execution_time_s > with_ep.target.execution_time_s
        )

    def test_cpu_bound_target_barely_affected(self, engine_6core, cpu_bound_app):
        cg = get_application("cg")
        base = engine_6core.baseline(cpu_bound_app).target.execution_time_s
        co = engine_6core.run(cpu_bound_app, [cg] * 5).target.execution_time_s
        assert co / base < 1.15

    def test_co_runner_results_reported(self, engine_6core):
        canneal, cg = get_application("canneal"), get_application("cg")
        run = engine_6core.run(canneal, [cg, cg])
        assert len(run.runs) == 3
        assert run.target.app.name == "canneal"
        assert all(r.app.name == "cg" for r in run.co_runners)
        # Identical co-runners behave identically.
        assert run.co_runners[0].execution_time_s == pytest.approx(
            run.co_runners[1].execution_time_s
        )

    def test_too_many_co_runners_rejected(self, engine_6core):
        cg = get_application("cg")
        with pytest.raises(ValueError, match="at most 5"):
            engine_6core.run(get_application("canneal"), [cg] * 6)

    def test_dram_state_reported(self, engine_6core):
        run = engine_6core.run(get_application("cg"), [get_application("cg")] * 5)
        assert 0.0 < run.dram_utilization <= 0.96
        assert run.dram_latency_ns >= XEON_E5649.dram.idle_latency_ns


class TestNoise:
    def test_no_rng_is_deterministic(self, engine_6core):
        app = get_application("sp")
        t1 = engine_6core.baseline(app).target.execution_time_s
        t2 = engine_6core.baseline(app).target.execution_time_s
        assert t1 == t2

    def test_noise_applied_with_rng(self, engine_6core):
        app = get_application("sp")
        clean = engine_6core.baseline(app).target.execution_time_s
        noisy = engine_6core.baseline(
            app, rng=np.random.default_rng(1)
        ).target.execution_time_s
        assert noisy != clean
        assert abs(noisy / clean - 1.0) < 0.05  # ~1% sigma

    def test_noise_seeded_reproducibly(self, engine_6core):
        app = get_application("sp")
        t1 = engine_6core.baseline(app, rng=np.random.default_rng(9)).target
        t2 = engine_6core.baseline(app, rng=np.random.default_rng(9)).target
        assert t1.execution_time_s == t2.execution_time_s

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            SimulationEngine(XEON_E5649, noise_sigma=-0.1)
        with pytest.raises(ValueError):
            SimulationEngine(XEON_E5649, damping=0.0)


class TestPhasedTargets:
    def make_phased(self):
        mem = ApplicationPhase(
            0.5, 0.8, 0.02, ReuseProfile.single(200 * MB, compulsory=0.05), mlp=1.5
        )
        cpu = ApplicationPhase(
            0.5, 1.0, 1e-4, ReuseProfile.single(0.5 * MB), mlp=1.0
        )
        return PhasedApplication(
            name="phased", suite="TEST", instructions=2e11, phases=(mem, cpu)
        )

    def test_phased_baseline_equals_sum_of_phases(self, engine_6core):
        phased = self.make_phased()
        total = engine_6core.baseline(phased).target.execution_time_s
        by_phase = sum(
            engine_6core.baseline(p).target.execution_time_s
            for p in phased.phase_specs()
        )
        assert total == pytest.approx(by_phase, rel=1e-9)

    def test_aggregate_close_to_phased_under_colocation(self, engine_6core):
        """The paper's claim: aggregate behaviour suffices."""
        phased = self.make_phased()
        cg = get_application("cg")
        exact = engine_6core.run(phased, [cg] * 3).target.execution_time_s
        approx = engine_6core.run(
            phased.aggregate(), [cg] * 3
        ).target.execution_time_s
        assert approx == pytest.approx(exact, rel=0.15)

    def test_phased_counters_accumulate(self, engine_6core):
        phased = self.make_phased()
        t = engine_6core.baseline(phased).target
        assert t.instructions == pytest.approx(2e11)
        assert t.llc_accesses > 0
        assert 0.0 <= t.miss_ratio <= 1.0


class TestPhasedCoRunners:
    def test_phased_co_runner_folds_to_aggregate(self, engine_6core):
        """A phased co-runner exerts its time-averaged pressure."""
        mem = ApplicationPhase(
            0.5, 0.8, 0.02, ReuseProfile.single(200 * MB, compulsory=0.05),
            mlp=1.5,
        )
        cpu = ApplicationPhase(
            0.5, 1.0, 1e-4, ReuseProfile.single(0.5 * MB), mlp=1.0,
        )
        phased = PhasedApplication(
            name="phased-co", suite="TEST", instructions=2e11,
            phases=(mem, cpu),
        )
        target = get_application("canneal")
        via_phased = engine_6core.run(target, [phased, phased])
        via_aggregate = engine_6core.run(
            target, [phased.aggregate(), phased.aggregate()]
        )
        assert via_phased.target.execution_time_s == pytest.approx(
            via_aggregate.target.execution_time_s
        )


class _PhaselessApplication(PhasedApplication):
    """A pathological phased app whose phase expansion comes up empty."""

    def phase_specs(self):
        return ()


class TestPhasedDegenerate:
    def test_zero_phases_raises_named_value_error(self, engine_6core):
        app = _PhaselessApplication(
            name="ghost", suite="TEST", instructions=1e9,
            phases=(ApplicationPhase(1.0, 1.0, 1e-4, ReuseProfile.single(MB)),),
        )
        with pytest.raises(ValueError, match="ghost"):
            engine_6core.run(app)
