"""Tests for steady-state solve memoization and engine observability."""

import numpy as np
import pytest

from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.sim.engine import ConvergenceError, SimulationEngine
from repro.sim.solve_cache import EngineStats, SolveCache, app_signature, solve_key
from repro.workloads.suite import get_application


@pytest.fixture
def cached_engine():
    return SimulationEngine(XEON_E5649, cache=SolveCache())


class TestAppSignature:
    def test_identity_free(self):
        """Name, suite, and run length do not enter the rate computation."""
        canneal = get_application("canneal")
        assert app_signature(canneal) == app_signature(canneal.scaled(2.0))

    def test_distinguishes_behaviour(self):
        assert app_signature(get_application("canneal")) != app_signature(
            get_application("cg")
        )


class TestSolveKey:
    def test_pstate_and_machine_in_key(self):
        apps = (get_application("canneal"),)
        fast = XEON_E5649.pstates.fastest
        slow = XEON_E5649.pstates.slowest
        assert solve_key("a", fast.frequency_hz, apps) != solve_key(
            "a", slow.frequency_hz, apps
        )
        assert solve_key("a", fast.frequency_hz, apps) != solve_key(
            "b", fast.frequency_hz, apps
        )

    def test_pinned_occupancies_in_key(self):
        apps = (get_application("canneal"),)
        f = XEON_E5649.pstates.fastest.frequency_hz
        assert solve_key("a", f, apps) != solve_key(
            "a", f, apps, np.array([1024.0])
        )


class TestSolveCache:
    def test_cached_solve_identical_to_fresh(self, cached_engine):
        apps = (get_application("canneal"), get_application("cg"))
        first = cached_engine.solve_steady_state(apps)
        again = cached_engine.solve_steady_state(apps)
        fresh = SimulationEngine(XEON_E5649).solve_steady_state(apps)
        for state in (again, fresh):
            assert np.array_equal(
                first.seconds_per_instruction, state.seconds_per_instruction
            )
            assert np.array_equal(first.miss_ratios, state.miss_ratios)
            assert np.array_equal(first.occupancies_bytes, state.occupancies_bytes)
            assert first.dram_latency_ns == state.dram_latency_ns
        assert cached_engine.cache.hits == 1

    def test_hit_relabels_requested_apps(self, cached_engine):
        canneal = get_application("canneal")
        cached_engine.solve_steady_state((canneal,))
        longer = canneal.scaled(3.0)
        state = cached_engine.solve_steady_state((longer,))
        assert cached_engine.cache.hits == 1
        assert state.apps == (longer,)

    def test_cached_run_times_identical(self, cached_engine):
        canneal = get_application("canneal")
        cg = get_application("cg")
        first = cached_engine.run(canneal, [cg] * 3)
        again = cached_engine.run(canneal, [cg] * 3)
        assert first.target.execution_time_s == again.target.execution_time_s
        assert cached_engine.stats.cache_hits == 1

    def test_pinned_occupancies_not_conflated(self, cached_engine):
        apps = (get_application("canneal"), get_application("cg"))
        shared = cached_engine.solve_steady_state(apps)
        cap = XEON_E5649.llc.size_bytes
        pinned = cached_engine.solve_steady_state(
            apps, fixed_occupancies=np.array([cap / 2, cap / 2])
        )
        assert cached_engine.cache.hits == 0
        assert not np.array_equal(
            shared.occupancies_bytes, pinned.occupancies_bytes
        )

    def test_lru_eviction(self):
        cache = SolveCache(max_entries=2)
        engine = SimulationEngine(XEON_E5649, cache=cache)
        a, b, c = (get_application(n) for n in ("canneal", "cg", "ep"))
        engine.solve_steady_state((a,))
        engine.solve_steady_state((b,))
        engine.solve_steady_state((a,))  # refresh a; b is now LRU
        engine.solve_steady_state((c,))  # evicts b
        assert len(cache) == 2
        engine.solve_steady_state((a,))
        assert cache.hits == 2
        engine.solve_steady_state((b,))  # must re-solve
        assert cache.hits == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            SolveCache(max_entries=0)

    def test_clear(self, cached_engine):
        cached_engine.solve_steady_state((get_application("canneal"),))
        cached_engine.cache.clear()
        assert len(cached_engine.cache) == 0
        assert cached_engine.cache.hits == 0
        assert cached_engine.cache.misses == 0


class TestEngineStats:
    def test_counts_and_histogram(self, cached_engine):
        canneal = get_application("canneal")
        cg = get_application("cg")
        cached_engine.run(canneal, [cg])
        cached_engine.run(canneal, [cg])
        stats = cached_engine.stats
        assert stats.solves == 1
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.requests == 2
        assert stats.cache_hit_rate == 0.5
        assert sum(stats.iteration_counts.values()) == 1
        assert sum(stats.iteration_histogram().values()) == 1

    def test_uncached_engine_counts_solves(self):
        engine = SimulationEngine(XEON_E5649)
        engine.baseline(get_application("ep"))
        assert engine.stats.solves == 1
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_hit_rate == 0.0

    def test_convergence_failures_recorded(self):
        engine = SimulationEngine(XEON_E5649, max_iterations=1)
        with pytest.raises(ConvergenceError):
            engine.baseline(get_application("canneal"))
        assert engine.stats.convergence_failures == 1
        assert engine.stats.solves == 0

    def test_merge_and_reset(self):
        a = EngineStats(solves=2, cache_hits=1, iteration_counts={10: 2})
        b = EngineStats(
            solves=1, cache_misses=3, convergence_failures=1,
            iteration_counts={10: 1, 80: 1},
        )
        a.merge(b)
        assert a.solves == 3
        assert a.cache_hits == 1
        assert a.cache_misses == 3
        assert a.convergence_failures == 1
        assert a.iteration_counts == {10: 3, 80: 1}
        assert a.iteration_histogram(25) == {"1-25": 3, "76-100": 1}
        a.reset()
        assert a.requests == 0 and a.iteration_counts == {}

    def test_summary_mentions_key_counters(self, cached_engine):
        cached_engine.baseline(get_application("ep"))
        text = cached_engine.stats.summary()
        assert "engine stats" in text
        assert "hit rate" in text
        assert "fixed-point iterations" in text

    def test_cache_shared_across_engines(self):
        cache = SolveCache()
        first = SimulationEngine(XEON_E5649, cache=cache)
        second = SimulationEngine(XEON_E5649, cache=cache)
        first.baseline(get_application("ep"))
        second.baseline(get_application("ep"))
        assert second.stats.cache_hits == 1

    def test_different_machines_never_conflate(self):
        cache = SolveCache()
        six = SimulationEngine(XEON_E5649, cache=cache)
        twelve = SimulationEngine(XEON_E5_2697V2, cache=cache)
        six.baseline(get_application("canneal"))
        twelve.baseline(get_application("canneal"))
        assert twelve.stats.cache_hits == 0
        assert twelve.stats.solves == 1
