"""Tests for the energy modeling extension."""

import pytest

from repro.energy.power import (
    EnergyEstimate,
    PowerModel,
    interference_energy_cost,
)
from repro.machine import XEON_E5649


@pytest.fixture
def model():
    return PowerModel(XEON_E5649, static_w_per_core=2.0, ceff_w_per_ghz_v2=5.0, uncore_w=10.0)


class TestPowerModel:
    def test_core_power_at_fastest(self, model):
        p0 = XEON_E5649.pstates.fastest
        expected = 2.0 + 5.0 * p0.voltage_v**2 * p0.frequency_ghz
        assert model.core_power_w(p0) == pytest.approx(expected)

    def test_dvfs_reduces_power(self, model):
        fast = model.core_power_w(XEON_E5649.pstates.fastest)
        slow = model.core_power_w(XEON_E5649.pstates.slowest)
        assert slow < fast

    def test_activity_scales_dynamic_only(self, model):
        p0 = XEON_E5649.pstates.fastest
        idle = model.core_power_w(p0, activity=0.0)
        busy = model.core_power_w(p0, activity=1.0)
        assert idle == pytest.approx(2.0)  # leakage only
        assert busy > idle

    def test_activity_validation(self, model):
        with pytest.raises(ValueError):
            model.core_power_w(XEON_E5649.pstates.fastest, activity=1.5)

    def test_chip_power_scales_with_cores(self, model):
        p0 = XEON_E5649.pstates.fastest
        assert model.chip_power_w(p0, 0) == pytest.approx(10.0)
        two = model.chip_power_w(p0, 2)
        four = model.chip_power_w(p0, 4)
        assert four - two == pytest.approx(2 * model.core_power_w(p0))

    def test_chip_power_core_bounds(self, model):
        with pytest.raises(ValueError):
            model.chip_power_w(XEON_E5649.pstates.fastest, 7)
        with pytest.raises(ValueError):
            model.chip_power_w(XEON_E5649.pstates.fastest, -1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PowerModel(XEON_E5649, static_w_per_core=-1.0)
        with pytest.raises(ValueError):
            PowerModel(XEON_E5649, uncore_w=-5.0)


class TestEnergyEstimate:
    def test_joules_and_wh(self):
        est = EnergyEstimate(execution_time_s=3600.0, chip_power_w=50.0)
        assert est.energy_j == pytest.approx(180_000.0)
        assert est.energy_wh == pytest.approx(50.0)


class TestInterferenceEnergyCost:
    def test_extra_energy(self, model):
        p0 = XEON_E5649.pstates.fastest
        cost = interference_energy_cost(model, p0, 200.0, 260.0, active_cores=4)
        assert cost == pytest.approx(60.0 * model.chip_power_w(p0, 4))

    def test_no_interference_no_cost(self, model):
        p0 = XEON_E5649.pstates.fastest
        assert interference_energy_cost(model, p0, 200.0, 200.0, 2) == 0.0

    def test_validation(self, model):
        p0 = XEON_E5649.pstates.fastest
        with pytest.raises(ValueError, match="baseline"):
            interference_energy_cost(model, p0, 0.0, 100.0, 2)
        with pytest.raises(ValueError, match="below the baseline"):
            interference_energy_cost(model, p0, 200.0, 150.0, 2)
