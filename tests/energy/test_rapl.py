"""Tests for the RAPL-style energy counter."""

import pytest

from repro.energy.power import PowerModel
from repro.energy.rapl import (
    DEFAULT_ENERGY_UNIT_J,
    RaplPackageCounter,
    measure_energy,
)
from repro.machine import XEON_E5649
from repro.workloads.suite import get_application


class TestRaplPackageCounter:
    def test_advance_accumulates(self):
        c = RaplPackageCounter(energy_unit_j=1.0)
        c.advance(power_w=10.0, duration_s=3.0)
        assert c.raw == 30

    def test_wraparound(self):
        c = RaplPackageCounter(energy_unit_j=1.0)
        c._raw = (1 << 32) - 5
        c.advance(power_w=1.0, duration_s=10.0)
        assert c.raw == 5  # wrapped

    def test_delta_simple(self):
        c = RaplPackageCounter(energy_unit_j=0.5)
        assert c.delta_joules(100, 140) == pytest.approx(20.0)

    def test_delta_across_wrap(self):
        c = RaplPackageCounter(energy_unit_j=1.0)
        before = (1 << 32) - 10
        after = 20
        assert c.delta_units(before, after) == 30

    def test_delta_validation(self):
        c = RaplPackageCounter()
        with pytest.raises(ValueError, match="32-bit"):
            c.delta_units(-1, 0)
        with pytest.raises(ValueError, match="32-bit"):
            c.delta_units(0, 1 << 32)

    def test_seconds_per_wrap(self):
        c = RaplPackageCounter()  # 2^-16 J units
        # 2^32 * 2^-16 J = 65536 J; at 100 W -> ~655 s.
        assert c.seconds_per_wrap(100.0) == pytest.approx(655.36)

    def test_validation(self):
        with pytest.raises(ValueError):
            RaplPackageCounter(energy_unit_j=0.0)
        c = RaplPackageCounter()
        with pytest.raises(ValueError):
            c.advance(-1.0, 1.0)
        with pytest.raises(ValueError):
            c.advance(1.0, -1.0)
        with pytest.raises(ValueError):
            c.seconds_per_wrap(0.0)


class TestMeasureEnergy:
    @pytest.fixture(scope="class")
    def power(self):
        return PowerModel(XEON_E5649)

    def test_energy_matches_power_times_time(self, engine_6core, power):
        app = get_application("canneal")
        cg = get_application("cg")
        m = measure_energy(engine_6core, power, app, [cg] * 2)
        p0 = XEON_E5649.pstates.fastest
        expected = (
            power.chip_power_w(p0, 3) * m.run.target.execution_time_s
        )
        # Quantization error is one energy unit per sample at most.
        assert m.energy_j == pytest.approx(
            expected, abs=m.samples * DEFAULT_ENERGY_UNIT_J + 1e-6
        )
        assert m.average_power_w == pytest.approx(
            power.chip_power_w(p0, 3), rel=1e-6
        )

    def test_wrap_corrected_measurement(self, engine_6core, power):
        """The run is long enough (and power high enough) that the 32-bit
        register wraps mid-run; the measurement must still be exact."""
        app = get_application("canneal")
        cg = get_application("cg")
        counter = RaplPackageCounter()
        p0 = XEON_E5649.pstates.fastest
        wrap_s = counter.seconds_per_wrap(power.chip_power_w(p0, 6))
        run_s = engine_6core.run(app, [cg] * 5).target.execution_time_s
        assert run_s > wrap_s  # the scenario really does wrap
        m = measure_energy(
            engine_6core, power, app, [cg] * 5, counter=counter,
            sample_interval_s=wrap_s / 4,
        )
        expected = power.chip_power_w(p0, 6) * run_s
        assert m.energy_j == pytest.approx(expected, rel=1e-3)

    def test_too_slow_sampling_rejected(self, engine_6core, power):
        app = get_application("canneal")
        cg = get_application("cg")
        counter = RaplPackageCounter()
        p0 = XEON_E5649.pstates.fastest
        wrap_s = counter.seconds_per_wrap(power.chip_power_w(p0, 6))
        with pytest.raises(ValueError, match="miss register wraps"):
            measure_energy(
                engine_6core, power, app, [cg] * 5, counter=counter,
                sample_interval_s=wrap_s * 2,
            )

    def test_solo_measurement(self, engine_6core, power):
        m = measure_energy(engine_6core, power, get_application("ep"))
        assert m.energy_j > 0
        assert m.samples >= 1

    def test_interval_validation(self, engine_6core, power):
        with pytest.raises(ValueError, match="sample interval"):
            measure_energy(
                engine_6core, power, get_application("ep"),
                sample_interval_s=0.0,
            )
