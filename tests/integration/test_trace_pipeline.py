"""Acceptance: one stitched trace across the whole fleet.

The tentpole requirement, end to end: with a collector running and the
2-worker serving tier streaming spans to it, a single request produces
*one* trace — the router's ``route.request`` span is the parent of the
worker's ``serve.request`` span — in both the Chrome-trace and the
OTLP/JSON exports.  And parallel collection (``workers=N``) no longer
drops worker spans: they ride home with each chunk (or stream to the
collector) instead of dying with the pool.
"""

from __future__ import annotations

import json

import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.harness.parallel import map_scenarios
from repro.obs.collector import CollectorThread
from repro.obs.otlp import hex_id
from repro.obs.stream import SpanSender, StreamingTracer
from repro.obs.summary import load_trace, span_forest
from repro.obs.trace import disable, enable, set_tracer
from repro.registry import ModelRegistry
from repro.serve.client import PredictionClient
from repro.serve.router import ServingTier


@pytest.fixture(scope="module")
def predictor(small_dataset):
    return PerformancePredictor(
        ModelKind.LINEAR, FeatureSet.F, seed=3
    ).fit(small_dataset)


@pytest.fixture(scope="module")
def features(small_dataset):
    obs = next(iter(small_dataset))
    return {
        f.value: float(obs.feature_value(f)) for f in FeatureSet.F.features
    }


@pytest.fixture
def tier_registry(tmp_path, predictor):
    registry = ModelRegistry(tmp_path / "registry")
    registry.push("point", predictor)
    return registry


class TestStitchedFleetTrace:
    @pytest.fixture
    def fleet_trace(self, tier_registry, features, tmp_path):
        """Run one request through the traced 2-worker tier; export both."""
        collector = CollectorThread().start()
        tracer = StreamingTracer(
            SpanSender(
                collector.endpoint, resource={"service": "serve-router"}
            )
        )
        previous = set_tracer(tracer)
        tier = ServingTier(
            tier_registry, workers=2, trace_stream=collector.endpoint
        )
        try:
            tier.start()
            with PredictionClient("127.0.0.1", tier.port) as client:
                body = client.predict(
                    features, model="point", request_id="stitch-1"
                )
                assert "prediction" in body
        finally:
            tier.stop()  # workers flush their senders during the drain
            set_tracer(previous)
            tracer.close()
            collector.stop()
        chrome_path = tmp_path / "fleet.trace.json"
        otlp_path = tmp_path / "fleet.otlp.json"
        assert collector.export_chrome(chrome_path) >= 2
        assert collector.export_otlp(otlp_path) >= 2
        return collector.records(), chrome_path, otlp_path

    def _request_spans(self, records):
        router = [
            r for r in records
            if r["name"] == "route.request"
            and r["attributes"].get("request_id") == "stitch-1"
        ]
        worker = [
            r for r in records
            if r["name"] == "serve.request"
            and r["attributes"].get("request_id") == "stitch-1"
        ]
        assert len(router) == 1, "router span missing from the collector"
        assert len(worker) == 1, "worker span missing from the collector"
        return router[0], worker[0]

    def test_collector_holds_one_stitched_trace(self, fleet_trace):
        records, _chrome, _otlp = fleet_trace
        router, worker = self._request_spans(records)
        # Same trace, parent/child across the process hop.
        assert worker["trace_id"] == router["trace_id"]
        assert worker["parent_id"] == router["span_id"]
        # Resources tell the processes apart.
        assert router["resource"]["service"] == "serve-router"
        assert worker["resource"]["service"].startswith("serve-worker-")
        assert worker["resource"]["pid"] != router["resource"]["pid"]

    def test_chrome_export_is_stitched(self, fleet_trace):
        records, chrome_path, _otlp = fleet_trace
        router, worker = self._request_spans(records)
        events = json.loads(chrome_path.read_text())["traceEvents"]
        spans = {
            (e["name"], e["args"].get("request_id")): e
            for e in events
            if e["ph"] == "X"
        }
        router_ev = spans[("route.request", "stitch-1")]
        worker_ev = spans[("serve.request", "stitch-1")]
        assert worker_ev["args"]["trace_id"] == router_ev["args"]["trace_id"]
        assert worker_ev["args"]["parent_id"] == router_ev["args"]["span_id"]
        assert worker_ev["pid"] != router_ev["pid"]
        # Process rows are named after the origin services.
        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert "serve-router" in names
        assert any(n.startswith("serve-worker-") for n in names)
        # The summary loader stitches the exported file into one tree.
        forest = span_forest(load_trace(chrome_path))
        stitched = {
            (node.name, child.name)
            for node in forest
            for child in node.children
        }
        assert ("route.request", "serve.request") in stitched

    def test_otlp_export_is_stitched(self, fleet_trace):
        records, _chrome, otlp_path = fleet_trace
        router, worker = self._request_spans(records)
        payload = json.loads(otlp_path.read_text())
        by_id = {}
        services = {}
        for group in payload["resourceSpans"]:
            attrs = {
                a["key"]: a["value"] for a in group["resource"]["attributes"]
            }
            service = attrs["service.name"]["stringValue"]
            for span in group["scopeSpans"][0]["spans"]:
                by_id[span["spanId"]] = span
                services[span["spanId"]] = service
        router_otlp = by_id[hex_id(router["span_id"], 8)]
        worker_otlp = by_id[hex_id(worker["span_id"], 8)]
        assert worker_otlp["parentSpanId"] == router_otlp["spanId"]
        assert worker_otlp["traceId"] == router_otlp["traceId"]
        assert services[router_otlp["spanId"]] == "serve-router"
        assert services[worker_otlp["spanId"]].startswith("serve-worker-")
        # OTLP files load back into the same stitched tree.
        forest = span_forest(load_trace(otlp_path))
        stitched = {
            (node.name, child.name)
            for node in forest
            for child in node.children
        }
        assert ("route.request", "serve.request") in stitched


def _solve_payload(engine, payload):
    app, pstate = payload
    return engine.run(app, (), pstate=pstate).target.execution_time_s


class TestParallelCollectionKeepsWorkerSpans:
    def payloads(self, engine):
        from repro.workloads.suite import get_application

        apps = [get_application(n) for n in ("cg", "ep")]
        return [
            (app, pstate)
            for app in apps
            for pstate in engine.processor.pstates[:2]
        ]

    def test_worker_spans_ingested_into_parent_ring(self, engine_6core):
        tracer = enable(service="collect")
        try:
            map_scenarios(
                engine_6core, _solve_payload, self.payloads(engine_6core),
                workers=2,
            )
            spans = {s.name: s for s in tracer.spans()}
            assert "harness.map_scenarios" in spans
            # The worker-side spans survived the pool teardown...
            chunk_spans = [
                s for s in tracer.spans() if s.name == "harness.worker_chunk"
            ]
            assert chunk_spans, "worker spans were dropped"
            # ...parented under the parent's map span, in the same trace.
            map_span = spans["harness.map_scenarios"]
            assert all(
                s.trace_id == map_span.trace_id
                and s.parent_id == map_span.span_id
                for s in chunk_spans
            )
            # And they carry their origin process's resource.
            assert all(
                s.resource is not None
                and s.resource["service"] == "collect-worker"
                for s in chunk_spans
            )
            # The engine instrumentation inside the workers came home too.
            assert any(s.name == "engine.solve" for s in tracer.spans())
        finally:
            disable()

    def test_streaming_workers_send_to_collector(self, engine_6core):
        collector = CollectorThread().start()
        tracer = StreamingTracer(
            SpanSender(collector.endpoint, resource={"service": "collect"})
        )
        set_tracer(tracer)
        try:
            map_scenarios(
                engine_6core, _solve_payload, self.payloads(engine_6core),
                workers=2,
            )
            tracer.flush()
            records = collector.records()
            names = [r["name"] for r in records]
            # Parent-side and worker-side spans meet at the collector.
            assert "harness.map_scenarios" in names
            assert "harness.worker_chunk" in names
            # Streaming workers ship their own spans; the parent does not
            # ingest (and so cannot double-stream) them.
            assert not any(
                s.name == "harness.worker_chunk" for s in tracer.spans()
            )
            # Worker batches carried their resource to the collector.
            chunk = next(
                r for r in records if r["name"] == "harness.worker_chunk"
            )
            assert chunk["resource"]["service"] == "collect-worker"
        finally:
            disable()
            tracer.close()
            collector.stop()
