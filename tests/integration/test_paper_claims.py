"""The paper's headline empirical claims, asserted at reduced repetitions.

Each test pins one qualitative result from Section V.  The full-fidelity
(100-repetition) numbers are produced by the benchmark suite and recorded
in EXPERIMENTS.md; these tests run the same pipeline with fewer repetitions
and assert the *shape*, which is stable.
"""

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.features import Feature, feature_matrix
from repro.core.methodology import ModelKind
from repro.core.pca import rank_features
from repro.harness.experiments import ExperimentContext, figure_series, table6_rows


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=7, repetitions=5)


@pytest.fixture(scope="module")
def mpe_6core(ctx):
    return figure_series(ctx, "e5649", "mpe")[1]


@pytest.fixture(scope="module")
def mpe_12core(ctx):
    return figure_series(ctx, "e5-2697v2", "mpe")[1]


class TestSectionVC_LinearModels:
    def test_linear_improvement_is_modest(self, mpe_6core):
        """'The more advanced linear models provide only a modest
        improvement over the baseline linear model.'"""
        lin = mpe_6core["linear test"]
        assert lin[0] - lin[-1] < 5.0  # a few points of MPE, not a collapse

    def test_linear_baseline_error_near_paper(self, mpe_6core):
        """6-core linear baseline MPE ~8% in the paper; same regime here."""
        assert 4.0 < mpe_6core["linear test"][0] < 12.0

    def test_training_matches_testing_for_linear(self, mpe_6core):
        """'Performance of the testing data very closely matches that of
        the training data.'"""
        np.testing.assert_allclose(
            mpe_6core["linear train"], mpe_6core["linear test"], atol=1.0
        )


class TestSectionVD_NeuralModels:
    def test_neural_beats_linear_everywhere_with_cache_info(self, mpe_6core, mpe_12core):
        """'The neural network models provide a clear improvement ... over
        the linear models' once cache features arrive (sets C onward)."""
        for series in (mpe_6core, mpe_12core):
            assert np.all(series["neural test"][2:] < series["linear test"][2:])

    def test_neural_error_decreases_with_features(self, mpe_6core):
        """'The addition of application cache use helps to improve the
        predictions of each model.'"""
        nn = mpe_6core["neural test"]
        assert nn[-1] < nn[0] * 0.5
        # Broadly decreasing: every later set at least as good as A.
        assert np.all(nn[1:] <= nn[0] + 0.5)

    def test_full_model_reaches_paper_accuracy(self, mpe_6core, mpe_12core):
        """'Operating with only a 2% MPE error on the testing data for
        both multicore processors' — we allow a little slack at reduced
        repetitions."""
        assert mpe_6core["neural test"][-1] < 3.0
        assert mpe_12core["neural test"][-1] < 3.0

    def test_co_app_features_matter_most(self, mpe_6core):
        """'The most important features are the features measuring the
        cache use information of the applications that are co-located':
        the C->E drops (co-app features) exceed the D and F drops (target
        features) combined, for the neural model."""
        nn = mpe_6core["neural test"]
        drop_co_app = (nn[1] - nn[2]) + (nn[3] - nn[4])  # B->C and D->E
        drop_target = (nn[2] - nn[3]) + (nn[4] - nn[5])  # C->D and E->F
        assert drop_co_app > 0.0
        # Co-app info alone already recovers most of the headroom.
        assert nn[2] < nn[0]


class TestSectionVE_NRMSE:
    def test_nrmse_trends_follow_mpe(self, ctx):
        """'The NRMSE results show that the variance ... decreases with
        generally the same trends as the MPE graphs.'"""
        _l, mpe_series = figure_series(ctx, "e5649", "mpe")
        _l, nrmse_series = figure_series(ctx, "e5649", "nrmse")
        for key in mpe_series:
            m, n = mpe_series[key], nrmse_series[key]
            # Same direction of improvement from A to F.
            assert np.sign(m[0] - m[-1]) == np.sign(n[0] - n[-1])

    def test_neural_f_nrmse_near_one_percent(self, ctx):
        """'An NRMSE of around 1%' for the full neural model."""
        _l, series = figure_series(ctx, "e5649", "nrmse")
        assert series["neural test"][-1] < 2.5


class TestSectionVB_Table6:
    def test_degradation_reaches_tens_of_percent(self, ctx):
        """Co-location 'increasing application execution time by as much
        as 33%' (ours is of the same order)."""
        rows = table6_rows(ctx)
        max_norm = max(r[2] for r in rows)
        assert 1.25 < max_norm < 2.0

    def test_tight_confidence_intervals(self, ctx):
        """'The error for each partition ... did not vary much', i.e. the
        per-partition spread of test MPE is small."""
        evals = ctx.evaluations("e5649")
        for e in evals:
            if e.kind is ModelKind.LINEAR:
                assert e.result.test_mpe_std < 1.5


class TestSectionIIIB_PCA:
    def test_table1_features_rank_above_noise(self, ctx):
        """PCA ranks the Table I observables above an injected pure-noise
        column — the selection argument behind the feature list."""
        observations = list(ctx.dataset("e5649"))
        X, _y = feature_matrix(observations, tuple(Feature))
        rng = np.random.default_rng(0)
        X_aug = np.column_stack([X, rng.normal(size=X.shape[0]) * 1e-12])
        names = [f.value for f in Feature] + ["noise"]
        ranking = rank_features(X_aug, names)
        assert ranking[-1][0] == "noise"
