"""Acceptance: the router tier drains cleanly under concurrent load.

The satellite requirement, end to end: while client threads hammer
``/v1/predict`` through the router, the tier is stopped (gracefully, and
separately via SIGTERM to the workers).  Every accepted request must
complete with the bit-identical prediction and its own request id;
queued rows drain rather than erroring; workers exit 0; and the workers'
own request ledgers balance exactly against client-side successes — no
request dropped after acceptance, none double-predicted.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.registry import ModelRegistry
from repro.serve.client import ClientError, PredictionClient
from repro.serve.router import ServingTier


@pytest.fixture(scope="module")
def predictor(small_dataset):
    return PerformancePredictor(
        ModelKind.LINEAR, FeatureSet.F, seed=3
    ).fit(small_dataset)


@pytest.fixture(scope="module")
def instances(small_dataset):
    names = [f.value for f in FeatureSet.F.features]
    rows = [
        [obs.feature_value(f) for f in FeatureSet.F.features]
        for obs in list(small_dataset)[:8]
    ]
    return [
        {name: float(value) for name, value in zip(names, row)}
        for row in rows
    ]


@pytest.fixture
def tier_registry(tmp_path, predictor):
    registry = ModelRegistry(tmp_path / "registry")
    registry.push("point", predictor)
    return registry


class _LoadThread(threading.Thread):
    """One closed-loop client: unique ids, outcome per attempt."""

    def __init__(self, index: int, port: int, instances, expected):
        super().__init__(name=f"load-{index}", daemon=True)
        self.index = index
        self.port = port
        self.instances = instances
        self.expected = expected
        self.successes: list[str] = []
        self.refused: list[str] = []
        self.wrong: list[str] = []
        self.stop_flag = threading.Event()

    def run(self) -> None:
        with PredictionClient("127.0.0.1", self.port, timeout=30.0) as client:
            attempt = 0
            while not self.stop_flag.is_set():
                attempt += 1
                uid = f"load-{self.index}-{attempt}"
                row = attempt % len(self.instances)
                try:
                    body = client.predict(
                        self.instances[row], model="point", request_id=uid
                    )
                except (ClientError, OSError):
                    # The tier is stopping: the listener refused us, or a
                    # shard became unreachable (502).  Both are clean
                    # refusals — the request was never accepted.
                    self.refused.append(uid)
                    continue
                if (
                    body["prediction"] == self.expected[row]
                    and client.last_request_id == uid
                ):
                    self.successes.append(uid)
                else:
                    self.wrong.append(uid)


def _run_load_until(tier, instances, expected, trigger, n_threads=4):
    """Drive load threads, fire ``trigger`` mid-load, stop, collect."""
    threads = [
        _LoadThread(i, tier.port, instances, expected)
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    # Let real concurrent load build up before pulling the trigger.
    deadline = threading.Event()
    deadline.wait(0.4)
    trigger()
    for thread in threads:
        thread.stop_flag.set()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)
    return threads


class TestGracefulStopUnderLoad:
    def test_no_request_dropped_or_double_predicted(
        self, tier_registry, instances, predictor
    ):
        import numpy as np

        rows = np.array(
            [[inst[f.value] for f in FeatureSet.F.features]
             for inst in instances]
        )
        expected = [float(v) for v in predictor.predict_rows(rows)]
        tier = ServingTier(
            tier_registry,
            workers=2,
            max_batch=64,
            max_wait_ms=20.0,  # rows genuinely queue; stop must drain them
        ).start()
        threads = _run_load_until(tier, instances, expected, tier.stop)

        successes = [uid for t in threads for uid in t.successes]
        assert successes, "load never reached the tier"
        # Every accepted request completed with the exact prediction and
        # its own correlation id; nothing was silently wrong.
        assert [uid for t in threads for uid in t.wrong] == []
        # No response was delivered twice.
        assert len(successes) == len(set(successes))
        # Workers ran the drain protocol and exited cleanly.
        assert tier.worker_exitcodes == [0, 0]
        # The workers' own ledgers balance against client successes:
        # every request a worker handled produced exactly one success at
        # a client — none dropped after acceptance, none double-served.
        handled = [w.final_request_count for w in tier.workers]
        assert all(count is not None for count in handled)
        assert sum(handled) == len(successes)

    def test_stop_is_idempotent_and_quiet(self, tier_registry):
        tier = ServingTier(tier_registry, workers=2).start()
        tier.stop()
        exitcodes = list(tier.worker_exitcodes)
        tier.stop()  # second stop: no-op, exit codes unchanged
        assert tier.worker_exitcodes == exitcodes == [0, 0]


class TestSigtermUnderLoad:
    def test_workers_drain_and_exit_zero_on_sigterm(
        self, tier_registry, instances, predictor
    ):
        import numpy as np

        rows = np.array(
            [[inst[f.value] for f in FeatureSet.F.features]
             for inst in instances]
        )
        expected = [float(v) for v in predictor.predict_rows(rows)]
        tier = ServingTier(
            tier_registry, workers=2, max_batch=64, max_wait_ms=20.0
        ).start()
        try:
            def sigterm_workers():
                for worker in tier.workers:
                    os.kill(worker._process.pid, signal.SIGTERM)
                for worker in tier.workers:
                    worker._process.join(timeout=15.0)

            threads = _run_load_until(
                tier, instances, expected, sigterm_workers
            )
            # SIGTERM ran the same drain: in-flight requests finished
            # correctly (successes, no wrong results), then the shards
            # went unreachable (clean refusals), and both workers exited
            # 0 — not killed, not erroring.
            assert [uid for t in threads for uid in t.wrong] == []
            assert [t for t in threads if t.successes]
            assert [
                worker._process.exitcode for worker in tier.workers
            ] == [0, 0]
        finally:
            tier.stop()
        assert tier.worker_exitcodes == [0, 0]
