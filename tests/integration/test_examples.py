"""Smoke tests: every shipped example must run to completion.

Examples are executed in-process (runpy) with stdout captured; each test
asserts the example's key claim appears in its output, so a regression
that silently breaks an example's story — not just its syntax — fails.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "canneal alone" in out
        assert "1320 co-location observations" in out
        # All four predictions printed with errors under 10%.
        for line in out.splitlines():
            if line.strip().endswith("%") and "error" not in line:
                err = float(line.split()[-1].rstrip("%"))
                assert err < 10.0

    def test_phase_analysis(self, capsys):
        out = run_example("phase_analysis.py", capsys)
        assert "Worst aggregate-vs-phase gap" in out
        gap = float(out.split("Worst aggregate-vs-phase gap:")[1].split("%")[0])
        assert gap < 10.0

    def test_interference_scheduler(self, capsys):
        out = run_example("interference_scheduler.py", capsys)
        assert "interference-aware (model)" in out
        assert "cuts mean slowdown" in out
        gain = float(out.split("cuts mean slowdown by")[1].split("%")[0])
        assert gain > 0.0

    def test_energy_modeling(self, capsys):
        out = run_example("energy_modeling.py", capsys)
        assert "Minimum-energy P-state" in out
        assert "Wh" in out

    def test_portability(self, capsys):
        out = run_example("portability.py", capsys)
        assert "Best model: neural/F" in out

    def test_uncertainty_and_governor(self, capsys):
        out = run_example("uncertainty_and_governor.py", capsys)
        assert "relative disagreement" in out
        assert "deadline" in out
