"""Acceptance: the scheduler drains cleanly under submission load.

The tentpole requirement, end to end: the scheduler places jobs via a
*real* prediction tier (HTTP, micro-batched) while client threads keep
submitting, and is then stopped mid-stream.  Every job the service
accepted must end the drain either completed (with a realized slowdown)
or explicitly requeued — none lost, none left queued/running — and the
server-side ledger must balance exactly against the ids the clients
collected.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.machine import XEON_E5649
from repro.registry import ModelRegistry
from repro.sched.fleet import FleetState, MachineConfig
from repro.sched.queue import JobStatus
from repro.sched.service import RemoteScorer, SchedulerClient, SchedulerThread
from repro.serve.client import ClientError
from repro.serve.server import ServerThread

APPS = ["cg", "fluidanimate", "streamcluster", "ep"]


@pytest.fixture(scope="module")
def predictor(small_dataset):
    return PerformancePredictor(
        ModelKind.LINEAR, FeatureSet.F, seed=3
    ).fit(small_dataset)


class _SubmitThread(threading.Thread):
    """Closed-loop submitter; records accepted ids until refused."""

    def __init__(self, index: int, port: int):
        super().__init__(name=f"submit-{index}", daemon=True)
        self.index = index
        self.port = port
        self.accepted: list[int] = []
        self.refused = 0

    def run(self):
        with SchedulerClient("127.0.0.1", self.port) as client:
            for i in range(200):
                app = APPS[(self.index + i) % len(APPS)]
                try:
                    body = client.submit(app)
                except ClientError as exc:
                    assert exc.status == 503  # draining, not an error
                    self.refused += 1
                    return
                except OSError:
                    return  # listener already closed
                self.accepted.extend(body["ids"])


def test_drain_under_load_loses_nothing(
    tmp_path, predictor, baselines_6core
):
    registry = ModelRegistry(tmp_path / "registry")
    registry.push("colo", predictor)
    fleet = FleetState([MachineConfig(XEON_E5649, count=2)])
    with ServerThread(registry, max_wait_ms=1.0) as predict_handle:
        scorer = RemoteScorer(
            "127.0.0.1", predict_handle.port, model="colo"
        )
        handle = SchedulerThread(
            fleet,
            baselines_6core,
            scorer=scorer,
            policy="model",
            round_size=8,
            pace_s=0.05,
        ).start()
        try:
            threads = [
                _SubmitThread(i, handle.port) for i in range(3)
            ]
            for t in threads:
                t.start()
            # Let load build up, then stop mid-stream: stop() drains —
            # in-flight rounds commit, running jobs complete, the rest
            # of the queue is explicitly requeued.
            deadline = threading.Event()
            deadline.wait(0.3)
            handle.stop()
            for t in threads:
                t.join(timeout=10.0)
                assert not t.is_alive()
        finally:
            handle.stop()
            scorer.close()

    accepted = sorted(
        job_id for t in threads for job_id in t.accepted
    )
    assert accepted, "no job was accepted before the drain"
    jobs = {j.id: j for j in handle.server.queue.jobs()}
    # The ledgers balance: the service knows exactly the accepted ids.
    assert sorted(jobs) == accepted
    by_status = {
        status: [j for j in jobs.values() if j.status is status]
        for status in JobStatus
    }
    assert not by_status[JobStatus.QUEUED]
    assert not by_status[JobStatus.RUNNING]
    assert by_status[JobStatus.COMPLETED], "drain completed nothing"
    for job in by_status[JobStatus.COMPLETED]:
        assert job.realized_slowdown is not None
        assert job.realized_slowdown >= 1.0 - 1e-6
    # Under a 2-node fleet and steady submitters, the queue was deep
    # when the drain began — the remainder must be explicitly requeued,
    # and the metric must say so.
    assert by_status[JobStatus.REQUEUED], "drain requeued nothing"
    metrics = handle.server.sched_metrics
    assert metrics.requeued == len(by_status[JobStatus.REQUEUED])
    assert metrics.completions == len(by_status[JobStatus.COMPLETED])
    # The model policy really went through the prediction tier.
    assert metrics.predict_batches > 0
