"""End-to-end integration: the full pipeline on reduced-scale data."""

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.metrics import mpe
from repro.core.methodology import ModelKind, PerformancePredictor, evaluate_models
from repro.harness.baselines import collect_baselines
from repro.harness.collection import collect_training_data
from repro.harness.datasets import ObservationDataset
from repro.machine import XEON_E5_2697V2
from repro.machine.processor import CacheGeometry, DRAMConfig, MulticoreProcessor
from repro.machine.pstates import PStateLadder
from repro.sim import SimulationEngine
from repro.workloads.suite import all_applications, get_application


class TestFullPipeline6Core:
    def test_collect_train_predict_unseen_scenarios(
        self, engine_6core, baselines_6core, small_dataset
    ):
        """Train on the reduced dataset, predict scenarios that were never
        in the training loop nest (different co-app count), and check the
        predictions track the simulator."""
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=1)
        predictor.fit(list(small_dataset))

        # Count 2 and 4 were withheld (training used 1, 3, 5).
        fmax = engine_6core.processor.pstates.fastest
        preds, actuals = [], []
        for count in (2, 4):
            for target_name in ("canneal", "fluidanimate"):
                target = get_application(target_name)
                cg = get_application("cg")
                run = engine_6core.run(target, [cg] * count, pstate=fmax)
                actuals.append(run.target.execution_time_s)
                preds.append(
                    predictor.predict_time(
                        baselines_6core.get(target_name, fmax.frequency_ghz),
                        [baselines_6core.get("cg", fmax.frequency_ghz)] * count,
                    )
                )
        assert mpe(np.array(preds), np.array(actuals)) < 8.0

    def test_generalizes_to_unseen_co_app(
        self, engine_6core, baselines_6core, small_dataset
    ):
        """The paper designs training data to 'extend beyond the set of
        four co-location applications': predict with a co-app (canneal)
        never used as a co-runner during training."""
        predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.F, seed=1)
        predictor.fit(list(small_dataset))
        fmax = engine_6core.processor.pstates.fastest
        target = get_application("sp")
        canneal = get_application("canneal")
        actual = engine_6core.run(target, [canneal] * 3, pstate=fmax)
        pred = predictor.predict_time(
            baselines_6core.get("sp", fmax.frequency_ghz),
            [baselines_6core.get("canneal", fmax.frequency_ghz)] * 3,
        )
        assert pred == pytest.approx(actual.target.execution_time_s, rel=0.10)

    def test_csv_roundtrip_preserves_model_quality(self, small_dataset, tmp_path):
        path = tmp_path / "train.csv"
        small_dataset.to_csv(path)
        restored = ObservationDataset.from_csv(path)
        p1 = PerformancePredictor(ModelKind.LINEAR, FeatureSet.D)
        p1.fit(list(small_dataset))
        p2 = PerformancePredictor(ModelKind.LINEAR, FeatureSet.D)
        p2.fit(list(restored))
        preds1 = p1.predict_observations(list(small_dataset))
        preds2 = p2.predict_observations(list(restored))
        np.testing.assert_allclose(preds1, preds2, rtol=1e-9)


class TestPortability:
    """Section VI: the methodology ports to machines outside the catalog."""

    @pytest.fixture(scope="class")
    def custom_machine(self):
        return MulticoreProcessor(
            name="Custom 8-core",
            num_cores=8,
            llc=CacheGeometry(size_bytes=16 * 1024 * 1024, associativity=16,
                              hit_latency_ns=14.0),
            dram=DRAMConfig(idle_latency_ns=90.0, peak_bandwidth_gbs=18.0),
            pstates=PStateLadder.from_frequencies([2.8, 2.2, 1.6]),
        )

    def test_pipeline_on_custom_machine(self, custom_machine):
        engine = SimulationEngine(custom_machine)
        baselines = collect_baselines(engine, all_applications())
        dataset = collect_training_data(
            engine,
            baselines=baselines,
            targets=[get_application(n) for n in ("canneal", "sp", "ep")],
            co_apps=[get_application("cg")],
            counts=(1, 4, 7),
            rng=np.random.default_rng(0),
        )
        # 3 pstates x 3 targets x 1 co-app x 3 counts
        assert len(dataset) == 27
        evals = evaluate_models(
            list(dataset),
            kinds=(ModelKind.LINEAR,),
            feature_sets=(FeatureSet.C,),
            repetitions=5,
        )
        assert evals[0].result.mean_test_mpe < 25.0


class TestCrossMachineIsolation:
    def test_12core_model_not_trained_on_6core_data(
        self, engine_12core, small_dataset
    ):
        """Datasets are machine-tagged; mixing machines is an error."""
        ds = ObservationDataset(engine_12core.processor.name)
        with pytest.raises(ValueError):
            ds.add(small_dataset.observations[0])
