"""Acceptance: train -> push -> registry serve -> predict, end to end.

The issue's distributed-registry criteria through real entry points:

* a prediction server pointed at a registry *URL* serves bit-identical
  predictions to one reading the same store as a local directory;
* a newly pushed version is picked up by hot-reload — no restart;
* a tombstoned version is refused through the remote path; and
* a repeat ``get()`` of a cached version succeeds after the registry
  server has stopped (outage survival).
"""

import time

import numpy as np
import pytest

from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.registry import (
    HttpBackend,
    ModelRegistry,
    RegistryServerThread,
    TombstoneError,
)
from repro.serve.client import ClientError, PredictionClient
from repro.serve.server import ServerThread


def _wait_until(predicate, timeout_s=10.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture(scope="module")
def trained_models(small_dataset):
    """Two distinct predictors trained on the real reduced dataset."""
    observations = list(small_dataset)
    first = PerformancePredictor(
        ModelKind.LINEAR, FeatureSet.F, seed=3
    ).fit(observations)
    second = PerformancePredictor(
        ModelKind.LINEAR, FeatureSet.F, seed=7
    ).fit(observations)
    return first, second


@pytest.fixture(scope="module")
def instances(small_dataset):
    """JSON-ready feature dicts for the first eight observations."""
    names = [f.value for f in FeatureSet.F.features]
    rows = [
        [obs.feature_value(f) for f in FeatureSet.F.features]
        for obs in list(small_dataset)[:8]
    ]
    return [
        {name: float(v) for name, v in zip(names, row)} for row in rows
    ]


def test_remote_registry_serving_end_to_end(
    tmp_path, trained_models, instances
):
    first, second = trained_models
    store = ModelRegistry(tmp_path / "store")
    store.push("perf", first)

    with RegistryServerThread(store) as registry_handle:
        remote = HttpBackend(
            f"http://127.0.0.1:{registry_handle.port}",
            tmp_path / "cache",
        )
        with ServerThread(
            store, max_wait_ms=1.0
        ) as local_serving, ServerThread(
            remote, max_wait_ms=1.0, hot_reload_s=0.05
        ) as remote_serving:
            with PredictionClient(
                "127.0.0.1", local_serving.port
            ) as local_client, PredictionClient(
                "127.0.0.1", remote_serving.port
            ) as remote_client:
                # --- bit-identical serving through the remote backend
                local = local_client.predict_batch(instances, model="perf")
                remote_body = remote_client.predict_batch(
                    instances, model="perf"
                )
                assert remote_body["model"] == "perf@1" == local["model"]
                assert remote_body["predictions"] == local["predictions"]

                # --- a new push arrives via hot-reload, no restart
                store.push("perf", second)
                assert _wait_until(
                    lambda: remote_client.predict(
                        instances[0], model="perf"
                    )["model"]
                    == "perf@2"
                )
                v2 = remote_client.predict_batch(instances, model="perf@2")
                expected = second.predict_rows(
                    np.array(
                        [
                            [row[f.value] for f in FeatureSet.F.features]
                            for row in instances
                        ]
                    )
                )
                assert v2["predictions"] == [float(v) for v in expected]

                # --- tombstoning is honoured through the remote path
                store.tombstone("perf@2", reason="bad calibration")

                def _refused() -> bool:
                    try:
                        remote_client.predict(instances[0], model="perf@2")
                    except ClientError:
                        return True
                    return False  # still resident; poller hasn't evicted

                assert _wait_until(_refused)
                with pytest.raises(ClientError) as excinfo:
                    remote_client.predict(instances[0], model="perf@2")
                assert excinfo.value.status == 404
                assert "tombstoned" in str(excinfo.value)
                assert "bad calibration" in str(excinfo.value)
                # The bare name floats back to the surviving version.
                assert _wait_until(
                    lambda: remote_client.predict(
                        instances[0], model="perf"
                    )["model"]
                    == "perf@1"
                )

        # Warm the cache with a pinned get while the registry is up.
        artifact, manifest = remote.get("perf@1")
        assert manifest.ref == "perf@1"

    # --- outage survival: the registry server is gone now
    before = remote.http_requests
    artifact, manifest = remote.get("perf@1")
    assert manifest.ref == "perf@1"
    assert remote.http_requests == before  # served purely from cache
    with pytest.raises(TombstoneError, match="bad calibration"):
        remote.get("perf@2")

    # A fresh serving stack over the cached backend still predicts.
    with ServerThread(remote, max_wait_ms=1.0) as offline_serving:
        with PredictionClient("127.0.0.1", offline_serving.port) as client:
            body = client.predict_batch(instances, model="perf@1")
            expected = trained_models[0].predict_rows(
                np.array(
                    [
                        [row[f.value] for f in FeatureSet.F.features]
                        for row in instances
                    ]
                )
            )
            assert body["predictions"] == [float(v) for v in expected]
