"""Acceptance: one observability layer across sim, fitting, and serving.

The issue's acceptance criteria, end to end through real entry points:

* a local ``evaluate --trace`` run records spans and writes a loadable
  Chrome trace;
* one ``GET /metrics`` scrape of a server that has served traffic
  exposes samples from all three sources — simulation, fitting, and
  serving — in valid Prometheus text; and
* ``repro obs summary out.json`` prints a span tree whose request spans
  carry the client-sent ``X-Request-Id``.
"""

import json

import pytest

from repro.cli import main
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.obs.trace import NullTracer, disable, enable, get_tracer
from repro.serve.client import PredictionClient, parse_prometheus
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServerThread


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory, small_dataset):
    path = tmp_path_factory.mktemp("obs") / "dataset.csv"
    small_dataset.to_csv(path)
    return path


def test_evaluate_trace_records_fit_and_validation_spans(
    dataset_csv, tmp_path, capsys
):
    trace_path = tmp_path / "evaluate.json"
    exit_code = main(
        [
            "evaluate",
            "--data", str(dataset_csv),
            "--repetitions", "1",
            "--trace", str(trace_path),
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert f"trace span(s) to {trace_path}" in out
    assert isinstance(get_tracer(), NullTracer)  # CLI uninstalled the tracer

    payload = json.loads(trace_path.read_text())
    names = {e["name"] for e in payload["traceEvents"] if e.get("ph") == "X"}
    assert "validation.subsampling" in names
    assert "fit.neural" in names
    assert "fit.scg_restart" in names or "fit.scg_batched" in names


def test_scrape_after_traffic_exposes_all_three_sources(
    small_dataset, tmp_path, capsys
):
    # A neural model, so the fit feeds the process-global fitting
    # aggregate even when this test runs alone (linear fits only feed it
    # through the validation layer).
    predictor = PerformancePredictor(ModelKind.NEURAL, FeatureSet.B, seed=3).fit(
        list(small_dataset)
    )
    registry = ModelRegistry(tmp_path / "registry")
    registry.push("point", predictor)
    observation = next(iter(small_dataset))
    features = {
        f.value: float(observation.feature_value(f))
        for f in FeatureSet.B.features
    }

    trace_path = tmp_path / "serve.json"
    tracer = enable(service="acceptance")
    try:
        with ServerThread(registry, max_batch=4, max_wait_ms=1.0) as handle:
            with PredictionClient("127.0.0.1", handle.port) as client:
                body = client.predict(
                    features, model="point", request_id="acceptance-42"
                )
                assert "prediction" in body
                assert client.last_request_id == "acceptance-42"
                scrape = client.metrics_text()
        tracer.export_chrome(trace_path)
    finally:
        disable()

    samples = parse_prometheus(scrape)
    assert samples["repro_engine_solves_total"] > 0       # simulation
    assert samples["repro_fit_fits_total"] > 0            # fitting
    assert (
        samples['repro_serve_requests_total{endpoint="/v1/predict",status="200"}']
        >= 1.0
    )                                                     # serving
    assert (
        samples['repro_serve_phase_latency_seconds_count{phase="predict"}'] >= 1.0
    )

    # The span tree printed by the CLI carries the client-sent request id.
    assert main(["obs", "summary", str(trace_path)]) == 0
    summary = capsys.readouterr().out
    assert "serve.request" in summary
    assert "request_id=acceptance-42" in summary
