"""Local registry backend: tombstones, GC, blobs, latest-version cache.

The original push/resolve/get semantics are pinned by
``tests/serve/test_registry.py`` (which now exercises the compat shim);
this module covers what the registry subsystem added on top.
"""

import json
import os

import pytest

from repro.registry import (
    LocalBackend,
    ModelRegistry,
    RegistryBackend,
    RegistryError,
    TombstoneError,
)


class TestBackendProtocol:
    def test_local_registry_satisfies_protocol(self, store):
        assert isinstance(store, RegistryBackend)

    def test_local_backend_alias(self):
        assert LocalBackend is ModelRegistry

    def test_describe_names_the_root(self, store):
        assert str(store.root) == store.describe()


class TestTombstones:
    def test_pinned_tombstoned_version_is_refused(self, populated_store):
        populated_store.tombstone("point@2", reason="bad calibration")
        with pytest.raises(TombstoneError, match="bad calibration") as exc:
            populated_store.resolve("point@2")
        assert exc.value.reason == "bad calibration"
        assert "bytes retained" in str(exc.value)
        with pytest.raises(TombstoneError):
            populated_store.get("point@2")

    def test_bare_name_floats_past_tombstone(self, populated_store):
        populated_store.tombstone("point@2", reason="rollback")
        assert populated_store.resolve("point").version == 1
        assert populated_store.latest("point").version == 1
        assert populated_store.latest_version("point") == 1

    def test_all_versions_tombstoned(self, populated_store):
        populated_store.tombstone("point@1")
        populated_store.tombstone("point@2")
        with pytest.raises(TombstoneError, match="every version"):
            populated_store.resolve("point")

    def test_bytes_survive_tombstoning(self, populated_store):
        populated_store.tombstone("point@2")
        assert (populated_store.root / "point" / "2" / "model.json").is_file()

    def test_untombstone_restores_resolution(self, populated_store):
        populated_store.tombstone("point@2")
        assert populated_store.untombstone("point@2") is True
        assert populated_store.resolve("point").version == 2
        assert populated_store.untombstone("point@2") is False

    def test_tombstone_requires_pinned_ref(self, populated_store):
        with pytest.raises(RegistryError, match="explicit name@version"):
            populated_store.tombstone("point")
        with pytest.raises(RegistryError, match="explicit name@version"):
            populated_store.untombstone("point")

    def test_tombstone_unknown_version(self, populated_store):
        with pytest.raises(RegistryError, match="unknown version 9"):
            populated_store.tombstone("point@9")

    def test_unreadable_marker_fails_safe(self, populated_store):
        populated_store.tombstone("point@2")
        marker = populated_store.root / "point" / "2" / "tombstone.json"
        marker.write_text("{not json")
        reason = populated_store.tombstone_reason("point", 2)
        assert reason == "unreadable tombstone marker"
        with pytest.raises(TombstoneError):
            populated_store.resolve("point@2")

    def test_reason_none_for_live_and_unknown(self, populated_store):
        assert populated_store.tombstone_reason("point", 1) is None
        assert populated_store.tombstone_reason("point", 99) is None

    def test_listing_includes_tombstoned(self, populated_store):
        populated_store.tombstone("point@2")
        refs = [m.ref for m in populated_store.list()]
        assert "point@2" in refs


class TestGC:
    def _push_versions(self, store, artifact, n, name="m"):
        for _ in range(n):
            store.push(name, artifact)

    def test_keeps_newest_n(self, store, point_predictor):
        self._push_versions(store, point_predictor, 5)
        report = store.gc(keep=2)
        assert report.removed == ("m@1", "m@2", "m@3")
        assert sorted(store._versions("m")) == [4, 5]
        assert report.bytes_freed > 0
        assert "removed 3 version(s)" in report.summary()

    def test_dry_run_deletes_nothing(self, store, point_predictor):
        self._push_versions(store, point_predictor, 4)
        report = store.gc(keep=1, dry_run=True)
        assert report.dry_run and len(report.removed) == 3
        assert sorted(store._versions("m")) == [1, 2, 3, 4]
        assert "would remove" in report.summary()

    def test_version_numbers_never_reused(self, store, point_predictor):
        self._push_versions(store, point_predictor, 3)
        store.gc(keep=1)
        manifest = store.push("m", point_predictor)
        assert manifest.version == 4  # not 2: the max version survived

    def test_tombstoned_old_versions_are_pruned(self, store, point_predictor):
        self._push_versions(store, point_predictor, 4)
        store.tombstone("m@1", reason="bad")
        report = store.gc(keep=2)
        # live = [2, 3, 4]; cutoff = 3; versions 1 and 2 go.
        assert report.removed == ("m@1", "m@2")

    def test_recent_tombstoned_versions_keep_their_bytes(
        self, store, point_predictor
    ):
        self._push_versions(store, point_predictor, 3)
        store.tombstone("m@3", reason="bad")
        report = store.gc(keep=2)
        # live = [1, 2]; cutoff = 1: nothing is older than the cutoff.
        assert report.removed == ()
        assert (store.root / "m" / "3" / "model.json").is_file()

    def test_fully_tombstoned_name_is_untouched(self, store, point_predictor):
        self._push_versions(store, point_predictor, 2)
        store.tombstone("m@1")
        store.tombstone("m@2")
        report = store.gc(keep=1)
        assert report.removed == ()
        assert sorted(store._versions("m")) == [1, 2]

    def test_keep_must_be_positive(self, store):
        with pytest.raises(RegistryError, match="at least 1"):
            store.gc(keep=0)

    def test_gc_invalidates_latest_cache(self, store, point_predictor):
        self._push_versions(store, point_predictor, 3)
        assert store.latest_version("m") == 3
        store.gc(keep=1)
        assert store._latest_cache == {}
        assert store.latest_version("m") == 3


class TestBlobs:
    def test_blob_roundtrip(self, populated_store):
        manifest = populated_store.resolve("point@1")
        payload = populated_store.open_blob(manifest.content_hash)
        model_path = populated_store.root / "point" / "1" / "model.json"
        assert payload == model_path.read_bytes()

    def test_unknown_hash(self, populated_store):
        with pytest.raises(RegistryError, match="unknown blob"):
            populated_store.blob_path("0" * 64)

    def test_modified_blob_is_refused(self, populated_store):
        manifest = populated_store.resolve("band@1")
        path = populated_store.blob_path(manifest.content_hash)
        path.write_bytes(path.read_bytes() + b" ")
        with pytest.raises(RegistryError, match="modified after push"):
            populated_store.open_blob(manifest.content_hash)

    def test_index_heals_after_gc(self, store, point_predictor, ensemble):
        store.push("m", point_predictor)
        first = store.resolve("m@1")
        store.blob_path(first.content_hash)  # build the index
        store.push("m", ensemble)
        store.gc(keep=1)
        second = store.resolve("m@2")
        assert store.blob_path(second.content_hash).is_file()
        with pytest.raises(RegistryError, match="unknown blob"):
            store.blob_path(first.content_hash)


class TestLatestVersionCache:
    def test_cached_between_calls(self, populated_store):
        assert populated_store.latest_version("point") == 2
        assert "point" in populated_store._latest_cache
        assert populated_store.latest_version("point") == 2

    def test_same_second_push_is_seen(self, store, point_predictor):
        """Regression: two pushes within the directory-mtime granularity.

        The old cache compared only the name directory's mtime_ns, so on
        a coarse-mtime filesystem a second push landing in the same tick
        kept serving the stale version.  The signature now also counts
        versions.
        """
        store.push("m", point_predictor)
        assert store.latest_version("m") == 1
        stat = os.stat(store.root / "m")
        store.push("m", point_predictor)
        # Simulate coarse mtime: the second push leaves mtime unchanged.
        os.utime(store.root / "m", ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert store.latest_version("m") == 2

    def test_tombstone_invalidates_without_mtime_change(
        self, store, point_predictor
    ):
        """Tombstoning writes inside the version dir: the name dir's
        mtime and version count both stay put, so the signature counts
        tombstone markers too."""
        store.push("m", point_predictor)
        store.push("m", point_predictor)
        assert store.latest_version("m") == 2
        stat = os.stat(store.root / "m")
        store.tombstone("m@2", reason="bad")
        os.utime(store.root / "m", ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert store.latest_version("m") == 1
        store.untombstone("m@2")
        os.utime(store.root / "m", ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert store.latest_version("m") == 2

    def test_unknown_name_raises_through_cache(self, store):
        with pytest.raises(RegistryError, match="unknown model"):
            store.latest_version("ghost")


class TestManifestTamper:
    def test_swapped_version_dirs_detected(self, populated_store):
        one = populated_store.root / "point" / "1" / "manifest.json"
        data = json.loads(one.read_text())
        data["version"] = 2
        one.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="tampered"):
            populated_store.manifest("point", 1)
