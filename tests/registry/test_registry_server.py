"""The HTTP artifact service: routes, auth, error mapping, metrics."""

import hashlib
import http.client
import json

import pytest

from repro.registry import RegistryServerThread
from repro.serve.client import parse_prometheus

from .conftest import PUSH_TOKEN


def _http(handle, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10.0)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestReadRoutes:
    def test_healthz(self, registry_server):
        status, _headers, payload = _http(registry_server, "GET", "/healthz")
        assert status == 200
        body = json.loads(payload)
        assert body == {"status": "ok", "models": 2}

    def test_models_listing_with_tombstone_status(
        self, registry_server, populated_store
    ):
        populated_store.tombstone("point@1", reason="superseded")
        status, _headers, payload = _http(registry_server, "GET", "/v1/models")
        assert status == 200
        models = {m["name"] + "@" + str(m["version"]): m
                  for m in json.loads(payload)["models"]}
        assert set(models) == {"point@1", "point@2", "band@1"}
        assert models["point@1"]["tombstone"] == "superseded"
        assert models["point@2"]["tombstone"] is None

    def test_single_model_info(self, registry_server):
        status, _headers, payload = _http(
            registry_server, "GET", "/v1/models/point"
        )
        assert status == 200
        body = json.loads(payload)
        assert body["name"] == "point"
        assert [v["version"] for v in body["versions"]] == [1, 2]

    def test_manifest_bare_and_pinned(self, registry_server, populated_store):
        status, _headers, payload = _http(
            registry_server, "GET", "/v1/models/point/manifest"
        )
        assert status == 200 and json.loads(payload)["version"] == 2
        status, _headers, payload = _http(
            registry_server, "GET", "/v1/models/point@1/manifest"
        )
        assert status == 200
        body = json.loads(payload)
        assert body["version"] == 1
        assert body["content_hash"] == (
            populated_store.resolve("point@1").content_hash
        )

    def test_unknown_model_maps_to_404_with_local_wording(
        self, registry_server, populated_store
    ):
        with pytest.raises(Exception) as local:
            populated_store.resolve("ghost")
        status, _headers, payload = _http(
            registry_server, "GET", "/v1/models/ghost/manifest"
        )
        assert status == 404
        assert json.loads(payload)["error"] == str(local.value)

    def test_tombstoned_pin_maps_to_410(
        self, registry_server, populated_store
    ):
        populated_store.tombstone("point@1", reason="bad calibration")
        status, _headers, payload = _http(
            registry_server, "GET", "/v1/models/point@1/manifest"
        )
        assert status == 410
        message = json.loads(payload)["error"]
        assert "bad calibration" in message and "bytes retained" in message

    def test_tombstone_status_endpoint(self, registry_server, populated_store):
        populated_store.tombstone("point@1", reason="oops")
        status, _headers, payload = _http(
            registry_server, "GET", "/v1/models/point@1/tombstone"
        )
        assert status == 200
        assert json.loads(payload) == {"ref": "point@1", "reason": "oops"}
        status, _headers, payload = _http(
            registry_server, "GET", "/v1/models/point@2/tombstone"
        )
        assert json.loads(payload)["reason"] is None

    def test_blob_roundtrip(self, registry_server, populated_store):
        manifest = populated_store.resolve("band@1")
        status, _headers, payload = _http(
            registry_server, "GET", f"/v1/blobs/{manifest.content_hash}"
        )
        assert status == 200
        assert hashlib.sha256(payload).hexdigest() == manifest.content_hash

    def test_unknown_blob_404(self, registry_server):
        status, _headers, payload = _http(
            registry_server, "GET", "/v1/blobs/" + "0" * 64
        )
        assert status == 404
        assert "unknown blob" in json.loads(payload)["error"]

    def test_method_not_allowed(self, registry_server):
        status, _headers, _payload = _http(
            registry_server, "POST", "/v1/models"
        )
        assert status == 405

    def test_request_id_echoed(self, registry_server):
        _status, headers, _payload = _http(
            registry_server, "GET", "/healthz",
            headers={"X-Request-Id": "reg-req-1"},
        )
        assert headers["X-Request-Id"] == "reg-req-1"


class TestPush:
    def _push_body(self, populated_store):
        path = populated_store.root / "point" / "1" / "model.json"
        return json.dumps(
            {"name": "pushed", "artifact": json.loads(path.read_text())}
        ).encode()

    def test_authorized_push_creates_version(
        self, registry_server, populated_store
    ):
        status, _headers, payload = _http(
            registry_server, "POST", "/v1/push",
            body=self._push_body(populated_store),
            headers={"Authorization": f"Bearer {PUSH_TOKEN}"},
        )
        assert status == 200
        manifest = json.loads(payload)
        assert manifest["name"] == "pushed" and manifest["version"] == 1
        assert populated_store.resolve("pushed@1").content_hash == (
            manifest["content_hash"]
        )

    def test_wrong_token_401(self, registry_server, populated_store):
        status, _headers, payload = _http(
            registry_server, "POST", "/v1/push",
            body=self._push_body(populated_store),
            headers={"Authorization": "Bearer nope"},
        )
        assert status == 401
        assert "Bearer" in json.loads(payload)["error"]

    def test_missing_token_401(self, registry_server, populated_store):
        status, _headers, _payload = _http(
            registry_server, "POST", "/v1/push",
            body=self._push_body(populated_store),
        )
        assert status == 401

    def test_push_disabled_without_server_token(self, populated_store):
        with RegistryServerThread(populated_store) as handle:
            status, _headers, payload = _http(
                handle, "POST", "/v1/push",
                body=self._push_body(populated_store),
                headers={"Authorization": f"Bearer {PUSH_TOKEN}"},
            )
        assert status == 403
        assert "read-only" in json.loads(payload)["error"]

    def test_malformed_artifact_400(self, registry_server):
        status, _headers, payload = _http(
            registry_server, "POST", "/v1/push",
            body=json.dumps({"name": "x", "artifact": {"bad": 1}}).encode(),
            headers={"Authorization": f"Bearer {PUSH_TOKEN}"},
        )
        assert status == 400
        assert "artifact payload rejected" in json.loads(payload)["error"]

    def test_versioned_name_400(self, registry_server, populated_store):
        body = json.loads(self._push_body(populated_store))
        body["name"] = "pushed@3"
        status, _headers, payload = _http(
            registry_server, "POST", "/v1/push",
            body=json.dumps(body).encode(),
            headers={"Authorization": f"Bearer {PUSH_TOKEN}"},
        )
        assert status == 400
        assert "bare name" in json.loads(payload)["error"]


class TestMetrics:
    def test_registry_prefix_and_inventory(
        self, registry_server, populated_store
    ):
        populated_store.tombstone("point@1")
        _http(registry_server, "GET", "/v1/models")
        status, _headers, payload = _http(registry_server, "GET", "/metrics")
        assert status == 200
        samples = parse_prometheus(payload.decode())
        assert (
            samples['repro_registry_requests_total{endpoint="/v1/models",status="200"}']
            >= 1.0
        )
        assert samples["repro_registry_models"] == 2.0
        assert samples["repro_registry_versions"] == 3.0
        assert samples["repro_registry_tombstones"] == 1.0
        # the merged scrape still carries the process-wide sources
        assert "repro_engine_solves_total" in samples
        assert "repro_fit_fits_total" in samples

    def test_dynamic_paths_bucketed(self, registry_server):
        _http(registry_server, "GET", "/v1/models/point/manifest")
        _http(registry_server, "GET", "/v1/blobs/" + "0" * 64)
        _status, _headers, payload = _http(registry_server, "GET", "/metrics")
        samples = parse_prometheus(payload.decode())
        assert (
            samples['repro_registry_requests_total{endpoint="/v1/models/*",status="200"}']
            >= 1.0
        )
        assert (
            samples['repro_registry_requests_total{endpoint="/v1/blobs/*",status="404"}']
            >= 1.0
        )
