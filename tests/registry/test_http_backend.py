"""HTTP backend: content-addressed cache, outage survival, error parity.

Satellite requirement: a truncated blob, a hash mismatch, a corrupted
payload, and a tombstoned fetch must raise the *same* descriptive errors
through :class:`HttpBackend` as through the local backend.  Parity is
asserted by string equality against errors captured from a
:class:`ModelRegistry` over the identical store state.
"""

import hashlib
import json

import pytest

from repro.core.persistence import artifact_to_dict
from repro.registry import (
    HttpBackend,
    RegistryBackend,
    RegistryError,
    RegistryServerThread,
    TombstoneError,
)

from .conftest import PUSH_TOKEN


@pytest.fixture
def remote(registry_server, cache_dir):
    """A fresh-cache HTTP backend talking to the live registry server."""
    return HttpBackend(
        f"http://127.0.0.1:{registry_server.port}",
        cache_dir,
        token=PUSH_TOKEN,
    )


def _local_error(store, ref, exc_type=RegistryError):
    with pytest.raises(exc_type) as excinfo:
        store.get(ref)
    return excinfo.value


class TestBasics:
    def test_satisfies_protocol(self, remote):
        assert isinstance(remote, RegistryBackend)

    def test_describe_is_the_url(self, remote, registry_server):
        assert remote.describe() == f"http://127.0.0.1:{registry_server.port}"

    def test_rejects_non_http_url(self, cache_dir):
        with pytest.raises(RegistryError, match="http://host:port"):
            HttpBackend("ftp://example.com", cache_dir)

    def test_names_and_list(self, remote, populated_store):
        assert remote.names() == ["band", "point"]
        assert [m.ref for m in remote.list()] == [
            m.ref for m in populated_store.list()
        ]

    def test_latest_helpers(self, remote):
        assert remote.latest_version("point") == 2
        assert remote.latest("point").version == 2
        with pytest.raises(RegistryError, match="bare name"):
            remote.latest("point@1")


class TestCache:
    def test_roundtrip_matches_local(self, remote, populated_store):
        artifact, manifest = remote.get("point@1")
        local_artifact, local_manifest = populated_store.get("point@1")
        assert manifest == local_manifest
        assert artifact_to_dict(artifact) == artifact_to_dict(local_artifact)

    def test_pinned_cached_get_does_zero_http(self, remote):
        remote.get("band@1")
        before = remote.http_requests
        artifact, manifest = remote.get("band@1")
        assert remote.http_requests == before
        assert manifest.ref == "band@1"
        assert artifact is not None

    def test_first_get_is_manifest_plus_blob(self, remote):
        remote.get("band@1")
        assert remote.http_requests == 2

    def test_content_addressing_dedups_blobs(self, remote, populated_store):
        # point@1 and point@2 hold identical bytes (same artifact pushed
        # twice), so the second version's payload is already cached.
        assert (
            populated_store.resolve("point@1").content_hash
            == populated_store.resolve("point@2").content_hash
        )
        remote.get("point@1")
        before = remote.http_requests
        remote.get("point@2")
        assert remote.http_requests == before + 1  # manifest only, no blob

    def test_corrupt_cached_blob_self_heals(self, remote):
        _, manifest = remote.get("band@1")
        cached = remote._blob_cache_path(manifest.content_hash)
        cached.write_bytes(b"{garbage")
        before = remote.http_requests
        artifact, _ = remote.get("band@1")
        assert artifact is not None
        assert remote.http_requests == before + 1  # one re-download
        digest = hashlib.sha256(cached.read_bytes()).hexdigest()
        assert digest == manifest.content_hash  # cache repaired

    def test_bare_name_always_consults_server(self, remote):
        remote.get("point")
        before = remote.http_requests
        remote.get("point")  # manifest re-resolved; blob from cache
        assert remote.http_requests == before + 1


class TestPush:
    def test_push_creates_next_version(
        self, remote, populated_store, other_predictor
    ):
        manifest = remote.push("point", other_predictor)
        assert manifest.version == 3
        assert populated_store.latest_version("point") == 3
        # The returned manifest was cached: the follow-up pinned get
        # only needs the blob.
        before = remote.http_requests
        remote.get("point@3")
        assert remote.http_requests == before + 1

    def test_push_versioned_name_matches_local_wording(
        self, remote, populated_store, other_predictor
    ):
        with pytest.raises(RegistryError) as local:
            populated_store.push("m@2", other_predictor)
        with pytest.raises(RegistryError) as http:
            remote.push("m@2", other_predictor)
        assert str(http.value) == str(local.value)

    def test_push_wrong_token(
        self, registry_server, cache_dir, other_predictor
    ):
        backend = HttpBackend(
            f"http://127.0.0.1:{registry_server.port}",
            cache_dir,
            token="wrong",
        )
        with pytest.raises(RegistryError, match="Bearer"):
            backend.push("m", other_predictor)

    def test_push_without_token(
        self, registry_server, cache_dir, other_predictor
    ):
        backend = HttpBackend(
            f"http://127.0.0.1:{registry_server.port}", cache_dir
        )
        with pytest.raises(RegistryError, match="Bearer"):
            backend.push("m", other_predictor)


class TestErrorParity:
    """Identical store damage -> identical error text on both backends."""

    def test_truncated_blob(self, remote, populated_store):
        path = populated_store.root / "band" / "1" / "model.json"
        path.write_bytes(path.read_bytes()[: 40])
        local_err = _local_error(populated_store, "band@1")
        with pytest.raises(RegistryError) as http_err:
            remote.get("band@1")
        assert str(http_err.value) == str(local_err)
        assert "content hash mismatch" in str(http_err.value)

    def test_sha256_mismatch(self, remote, populated_store):
        path = populated_store.root / "band" / "1" / "model.json"
        data = json.loads(path.read_text())
        data["members"], data["seed"] = data["members"][:1], 999
        path.write_text(json.dumps(data))
        local_err = _local_error(populated_store, "band@1")
        with pytest.raises(RegistryError) as http_err:
            remote.get("band@1")
        assert str(http_err.value) == str(local_err)
        assert "modified after push" in str(http_err.value)

    def test_corrupted_payload_with_matching_hash(
        self, remote, populated_store
    ):
        model = populated_store.root / "band" / "1" / "model.json"
        model.write_bytes(b"{this is not json")
        manifest_path = populated_store.root / "band" / "1" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["content_hash"] = hashlib.sha256(
            model.read_bytes()
        ).hexdigest()
        manifest_path.write_text(json.dumps(manifest))
        local_err = _local_error(populated_store, "band@1")
        with pytest.raises(RegistryError) as http_err:
            remote.get("band@1")
        assert str(http_err.value) == str(local_err)
        assert "not valid JSON" in str(http_err.value)

    def test_tombstoned_fetch(self, remote, populated_store):
        populated_store.tombstone("point@2", reason="bad calibration")
        local_err = _local_error(populated_store, "point@2", TombstoneError)
        with pytest.raises(TombstoneError) as http_err:
            remote.get("point@2")
        assert str(http_err.value) == str(local_err)
        assert http_err.value.reason == "bad calibration"

    def test_tombstoned_without_reason(self, remote, populated_store):
        populated_store.tombstone("point@2")
        local_err = _local_error(populated_store, "point@2", TombstoneError)
        with pytest.raises(TombstoneError) as http_err:
            remote.resolve("point@2")
        assert str(http_err.value) == str(local_err)
        assert http_err.value.reason == ""

    def test_unknown_model(self, remote, populated_store):
        local_err = _local_error(populated_store, "ghost")
        with pytest.raises(RegistryError) as http_err:
            remote.get("ghost")
        assert str(http_err.value) == str(local_err)

    def test_unknown_version(self, remote, populated_store):
        local_err = _local_error(populated_store, "point@9")
        with pytest.raises(RegistryError) as http_err:
            remote.get("point@9")
        assert str(http_err.value) == str(local_err)

    def test_invalid_ref_rejected_before_any_http(
        self, remote, populated_store
    ):
        local_err = _local_error(populated_store, "bad name!")
        with pytest.raises(RegistryError) as http_err:
            remote.get("bad name!")
        assert str(http_err.value) == str(local_err)
        assert remote.http_requests == 0

    def test_tombstone_reason_matches_local(self, remote, populated_store):
        populated_store.tombstone("point@1", reason="drift")
        assert remote.tombstone_reason("point", 1) == "drift"
        assert remote.tombstone_reason("point", 2) is None
        assert remote.tombstone_reason("point", 99) is None


class TestOutageSurvival:
    @pytest.fixture
    def offline(self, populated_store, cache_dir):
        """A backend whose cache was warmed before the server vanished."""
        populated_store.tombstone("point@2", reason="rollback")
        with RegistryServerThread(populated_store) as handle:
            backend = HttpBackend(
                f"http://127.0.0.1:{handle.port}", cache_dir
            )
            backend.list()  # caches every manifest (with tombstone flags)
            backend.get("point@1")
            backend.get("band@1")
        return backend  # the server is now stopped

    def test_cached_pinned_get_survives_outage(self, offline):
        artifact, manifest = offline.get("point@1")
        assert manifest.ref == "point@1"
        assert artifact is not None

    def test_bare_name_floats_to_newest_cached_live(self, offline):
        # point@2 is tombstoned; the cache knows and floats to point@1.
        assert offline.resolve("point").version == 1
        artifact, manifest = offline.get("point")
        assert manifest.version == 1

    def test_offline_tombstone_still_refused(self, offline):
        with pytest.raises(TombstoneError, match="rollback") as exc:
            offline.get("point@2")
        assert exc.value.reason == "rollback"

    def test_uncached_version_names_the_unreachable_registry(self, offline):
        with pytest.raises(RegistryError, match="unreachable") as exc:
            offline.resolve("point@7")
        assert "not cached" in str(exc.value)

    def test_unknown_name_offline(self, offline):
        with pytest.raises(RegistryError, match="unreachable"):
            offline.resolve("ghost")

    def test_names_and_list_fall_back_to_cache(self, offline):
        assert offline.names() == ["band", "point"]
        refs = [m.ref for m in offline.list()]
        assert refs == ["band@1", "point@1", "point@2"]

    def test_push_offline_fails_loudly(self, offline, other_predictor):
        with pytest.raises(RegistryError, match="unreachable"):
            offline.push("m", other_predictor)

    def test_tombstone_reason_offline(self, offline):
        assert offline.tombstone_reason("point", 2) == "rollback"
        assert offline.tombstone_reason("point", 1) is None


class TestConcurrentCacheWrites:
    """Atomic blob-cache writes under the worker tier's process fan-out.

    The serving tier guarantees several processes share one cache
    directory; with a *fixed* temp name (``<path>.tmp``) two writers
    interleave — A's ``os.replace`` publishes the temp inode while B is
    still writing into it — leaving a torn final file.  These tests pin
    the fix: every writer gets its own temp file, and concurrent pulls
    of the same version always leave an intact cache entry.
    """

    def test_every_writer_gets_a_distinct_temp_file(
        self, remote, monkeypatch
    ):
        import os as os_module

        from repro.registry import client as client_module

        replaced_sources: list[str] = []
        original_replace = os_module.replace

        def recording_replace(src, dst):
            replaced_sources.append(str(src))
            return original_replace(src, dst)

        monkeypatch.setattr(client_module.os, "replace", recording_replace)
        target = remote.cache_dir / "blobs" / "concurrency-probe"
        for payload in (b"a" * 64, b"b" * 64, b"c" * 64):
            remote._atomic_write(target, payload)
        assert len(replaced_sources) == 3
        assert len(set(replaced_sources)) == 3  # fixed ".tmp" would collide
        assert target.read_bytes() == b"c" * 64

    def test_interleaved_writers_never_tear_the_file(self, remote):
        import threading

        target = remote.cache_dir / "blobs" / "contended"
        payloads = [bytes([i]) * 256_000 for i in range(4)]
        errors: list[BaseException] = []

        def writer(payload: bytes) -> None:
            try:
                for _ in range(25):
                    remote._atomic_write(target, payload)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(p,)) for p in payloads
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        # The survivor is one complete payload, never a mix of two.
        assert target.read_bytes() in payloads
        # No temp-file litter left behind in the cache directory.
        assert list(target.parent.glob("*.tmp")) == []

    def test_concurrent_pulls_share_one_intact_cache(
        self, registry_server, cache_dir, populated_store
    ):
        import threading

        from repro.core.persistence import artifact_to_dict

        # Several backends (one per "process") over one cache directory,
        # all pulling the same uncached version at once.
        backends = [
            HttpBackend(
                f"http://127.0.0.1:{registry_server.port}", cache_dir
            )
            for _ in range(4)
        ]
        results: list[dict] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(backends))

        def pull(backend: HttpBackend) -> None:
            try:
                barrier.wait(timeout=10.0)
                artifact, manifest = backend.get("band@1")
                results.append(artifact_to_dict(artifact))
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=pull, args=(b,)) for b in backends]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        assert len(results) == len(backends)
        expected = artifact_to_dict(populated_store.get("band@1")[0])
        assert all(r == expected for r in results)
        # The blob each pull published is intact: a fresh cache-only read
        # (zero HTTP) decodes and hash-verifies.
        probe = HttpBackend(
            f"http://127.0.0.1:{registry_server.port}", cache_dir
        )
        before = probe.http_requests
        artifact, manifest = probe.get("band@1")
        assert probe.http_requests == before
        assert artifact_to_dict(artifact) == expected
