"""Shared fixtures for the registry subsystem tests.

Linear artifacts only — they fit instantly and the registry contract
(hashing, tombstones, GC, HTTP transport) is identical for every kind.
"""

from __future__ import annotations

import pytest

from repro.core.ensemble import EnsemblePredictor
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.registry import ModelRegistry, RegistryServerThread

PUSH_TOKEN = "test-push-token"


@pytest.fixture(scope="session")
def observations(small_dataset):
    """The reduced training dataset as a plain list."""
    return list(small_dataset)


@pytest.fixture(scope="session")
def point_predictor(observations):
    """A fitted linear point predictor on feature set F."""
    return PerformancePredictor(
        ModelKind.LINEAR, FeatureSet.F, seed=3
    ).fit(observations)


@pytest.fixture(scope="session")
def other_predictor(observations):
    """A second, distinct artifact (different seed => different bytes)."""
    return PerformancePredictor(
        ModelKind.LINEAR, FeatureSet.D, seed=7
    ).fit(observations)


@pytest.fixture(scope="session")
def ensemble(observations):
    """A fitted 3-member linear bootstrap ensemble."""
    return EnsemblePredictor(
        ModelKind.LINEAR, FeatureSet.F, n_members=3, seed=3
    ).fit(observations)


@pytest.fixture
def store(tmp_path):
    """A fresh empty local registry."""
    return ModelRegistry(tmp_path / "store")


@pytest.fixture
def populated_store(store, point_predictor, ensemble):
    """A local registry holding ``point@1``, ``point@2``, and ``band@1``."""
    store.push("point", point_predictor)
    store.push("point", point_predictor)
    store.push("band", ensemble)
    return store


@pytest.fixture
def registry_server(populated_store):
    """A live registry server over the populated store (push enabled)."""
    with RegistryServerThread(populated_store, token=PUSH_TOKEN) as handle:
        yield handle


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "client-cache"
