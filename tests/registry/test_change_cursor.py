"""Change cursor: incremental sync for pollers, end to end.

Satellite requirement: ``GET /v1/models?since=<cursor>`` returns only
what changed since the cursor (O(changes), not O(models)), and clients
talking to servers that predate the feature detect the missing
``cursor`` field and fall back to full listings.
"""

import json
import urllib.request

import pytest

from repro.registry import HttpBackend, RegistryServerThread
from repro.registry.local import decode_change_cursor, encode_change_cursor

from .conftest import PUSH_TOKEN


class TestCursorCodec:
    def test_round_trip(self):
        signatures = {"point": "1:2:0", "band": "9:1:1"}
        assert decode_change_cursor(encode_change_cursor(signatures)) == (
            signatures
        )

    def test_garbage_decodes_to_none(self):
        assert decode_change_cursor("0") is None
        assert decode_change_cursor("not base64 at all!") is None
        # Valid base64 ("[1]"), but not a JSON object.
        assert decode_change_cursor("WzFd") is None

    def test_url_safe(self):
        cursor = encode_change_cursor({"a" * 40: "1:2:3"})
        assert all(c.isalnum() or c in "-_" for c in cursor)


class TestLocalChangedModels:
    def test_initial_call_reports_everything(self, populated_store):
        changed, cursor = populated_store.changed_models(None)
        assert changed == ["band", "point"]
        assert cursor == populated_store.change_cursor()

    def test_quiet_store_reports_nothing(self, populated_store):
        _, cursor = populated_store.changed_models(None)
        changed, again = populated_store.changed_models(cursor)
        assert changed == []
        assert again == cursor

    def test_push_changes_one_name(self, populated_store, other_predictor):
        _, cursor = populated_store.changed_models(None)
        populated_store.push("band", other_predictor)
        changed, _ = populated_store.changed_models(cursor)
        assert changed == ["band"]

    def test_tombstone_and_rollback_both_change(self, populated_store):
        _, cursor = populated_store.changed_models(None)
        populated_store.tombstone("point@1", reason="drift")
        changed, cursor = populated_store.changed_models(cursor)
        assert "point" in changed
        populated_store.untombstone("point@1")
        changed, _ = populated_store.changed_models(cursor)
        assert "point" in changed

    def test_invalid_cursor_degrades_to_full_sync(self, populated_store):
        changed, _ = populated_store.changed_models("0")
        assert changed == ["band", "point"]

    def test_removed_name_is_reported(self, store, point_predictor):
        import shutil

        store.push("doomed", point_predictor)
        _, cursor = store.changed_models(None)
        shutil.rmtree(store.root / "doomed")
        changed, _ = store.changed_models(cursor)
        assert changed == ["doomed"]


def _get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}"
    ) as response:
        return json.loads(response.read().decode())


class TestServerSinceParam:
    def test_plain_listing_is_unchanged(self, registry_server):
        body = _get(registry_server.port, "/v1/models")
        assert "cursor" not in body
        assert len(body["models"]) == 3

    def test_since_zero_is_a_full_sync_with_cursor(self, registry_server):
        body = _get(registry_server.port, "/v1/models?since=0")
        assert body["changed"] == ["band", "point"]
        assert len(body["models"]) == 3
        assert isinstance(body["cursor"], str)

    def test_incremental_listing_carries_only_changes(
        self, registry_server, populated_store, other_predictor
    ):
        cursor = _get(registry_server.port, "/v1/models?since=0")["cursor"]
        body = _get(registry_server.port, f"/v1/models?since={cursor}")
        assert body == {"models": [], "changed": [], "cursor": cursor}
        populated_store.push("band", other_predictor)
        body = _get(registry_server.port, f"/v1/models?since={cursor}")
        assert body["changed"] == ["band"]
        assert {m["name"] for m in body["models"]} == {"band"}
        assert body["cursor"] != cursor


class _CursorlessStore:
    """A backend proxy hiding ``changed_models``: an old-style registry."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, attr):
        if attr in ("changed_models", "change_cursor"):
            raise AttributeError(attr)
        return getattr(self._inner, attr)


class TestHttpBackendChangedModels:
    @pytest.fixture
    def remote(self, registry_server, cache_dir):
        return HttpBackend(
            f"http://127.0.0.1:{registry_server.port}",
            cache_dir,
            token=PUSH_TOKEN,
        )

    def test_sync_then_incremental(
        self, remote, populated_store, other_predictor
    ):
        changed, cursor = remote.changed_models(None)
        assert changed == ["band", "point"]
        assert remote.changed_models(cursor) == ([], cursor)
        populated_store.push("point", other_predictor)
        changed, _ = remote.changed_models(cursor)
        assert changed == ["point"]

    def test_manifests_land_in_the_cache(self, remote):
        remote.changed_models(None)
        # All three manifests arrived with the initial sync — resolving
        # a pinned version now needs no further listing.
        assert remote._cached_manifest("point", 2) is not None
        assert remote._cached_manifest("band", 1) is not None

    def test_never_counts_as_a_full_listing(self, remote):
        _, cursor = remote.changed_models(None)
        remote.changed_models(cursor)
        assert remote.full_list_requests == 0
        remote.names()
        assert remote.full_list_requests == 1

    def test_old_server_yields_none(self, populated_store, cache_dir):
        with RegistryServerThread(_CursorlessStore(populated_store)) as old:
            remote = HttpBackend(
                f"http://127.0.0.1:{old.port}", cache_dir
            )
            assert remote.changed_models(None) is None
