"""Read-replica mirroring: serving an HttpBackend as a pull-through cache.

``repro registry serve --mirror URL`` wraps an :class:`HttpBackend` in a
:class:`RegistryServer`.  The replica answers manifest reads from the
upstream and blob reads through :meth:`HttpBackend.blob_path`, which
caches by content hash — so the upstream is hit once per artifact, no
matter how many clients read through the replica.
"""

import pytest

from repro.registry import (
    HttpBackend,
    RegistryError,
    RegistryServerThread,
)


@pytest.fixture
def upstream(populated_store):
    """The origin registry server (read-only is fine for replicas)."""
    with RegistryServerThread(populated_store) as handle:
        yield handle


@pytest.fixture
def replica_backend(upstream, tmp_path):
    """An HttpBackend on the upstream, acting as the replica's storage."""
    return HttpBackend(
        f"http://127.0.0.1:{upstream.port}", tmp_path / "replica-cache"
    )


@pytest.fixture
def replica(replica_backend):
    """A live replica server whose backend is the pull-through client."""
    with RegistryServerThread(replica_backend) as handle:
        yield handle


class TestBlobPullThrough:
    def test_miss_pulls_verifies_and_caches(self, replica_backend, populated_store):
        manifest = populated_store.resolve("point@1")
        path = replica_backend.blob_path(manifest.content_hash)
        assert path.is_file()
        assert path.read_bytes() == populated_store.blob_path(
            manifest.content_hash
        ).read_bytes()

    def test_hit_is_served_without_http(self, replica_backend, populated_store):
        manifest = populated_store.resolve("point@1")
        replica_backend.blob_path(manifest.content_hash)
        before = replica_backend.http_requests
        path = replica_backend.blob_path(manifest.content_hash)
        assert replica_backend.http_requests == before
        assert path.is_file()

    def test_unknown_blob_refused(self, replica_backend):
        with pytest.raises(RegistryError, match="unknown blob|refused blob"):
            replica_backend.blob_path("0" * 64)

    def test_unreachable_upstream_with_cold_cache(self, tmp_path):
        backend = HttpBackend(
            "http://127.0.0.1:1", tmp_path / "cache", timeout_s=0.2
        )
        with pytest.raises(RegistryError, match="unreachable"):
            backend.blob_path("0" * 64)


class TestReplicaServing:
    def test_client_reads_through_replica(
        self, replica, populated_store, tmp_path
    ):
        client = HttpBackend(
            f"http://127.0.0.1:{replica.port}", tmp_path / "client-cache"
        )
        artifact, manifest = client.get("point@1")
        want = populated_store.resolve("point@1")
        assert manifest.content_hash == want.content_hash
        assert artifact.is_fitted

    def test_replica_lists_upstream_models(self, replica, tmp_path):
        client = HttpBackend(
            f"http://127.0.0.1:{replica.port}", tmp_path / "client-cache"
        )
        assert set(client.names()) == {"band", "point"}

    def test_second_read_skips_upstream(
        self, replica, replica_backend, populated_store, tmp_path
    ):
        manifest = populated_store.resolve("point@1")
        first = HttpBackend(
            f"http://127.0.0.1:{replica.port}", tmp_path / "c1"
        )
        first.get("point@1")
        upstream_calls = replica_backend.http_requests
        second = HttpBackend(
            f"http://127.0.0.1:{replica.port}", tmp_path / "c2"
        )
        second.get("point@1")
        # The second client's blob read is served from the replica's
        # cache: the replica may re-resolve the manifest upstream, but
        # never re-downloads the blob.
        assert replica_backend.blob_path(manifest.content_hash).is_file()
        assert replica_backend.http_requests <= upstream_calls + 2

    def test_replica_is_read_only(self, replica, tmp_path, populated_store):
        client = HttpBackend(
            f"http://127.0.0.1:{replica.port}",
            tmp_path / "client-cache",
            token="any-token",
        )
        artifact, _ = client.get("point@1")
        with pytest.raises(RegistryError, match="read-only|403|push"):
            client.push("point", artifact)
