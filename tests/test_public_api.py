"""Public API surface checks.

Guards the import contract a downstream user relies on: every name in
every subpackage's ``__all__`` resolves, the root package re-exports all
subpackages, and key entry points are importable exactly as the README
shows them.
"""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "cache",
    "core",
    "counters",
    "energy",
    "harness",
    "machine",
    "memsys",
    "obs",
    "reporting",
    "sched",
    "sim",
    "workloads",
]


class TestPackageLayout:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_root_reexports_subpackages(self):
        for name in SUBPACKAGES:
            assert name in repro.__all__
            assert hasattr(repro, name)

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, name):
        module = importlib.import_module(f"repro.{name}")
        assert module.__all__, f"repro.{name} exports nothing"
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"repro.{name}.{symbol} missing"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_all_sorted(self, name):
        module = importlib.import_module(f"repro.{name}")
        assert list(module.__all__) == sorted(
            module.__all__
        ), f"repro.{name}.__all__ not sorted"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_has_docstring(self, name):
        module = importlib.import_module(f"repro.{name}")
        assert module.__doc__ and len(module.__doc__) > 20


class TestReadmeImports:
    def test_quickstart_imports(self):
        from repro.core import FeatureSet, ModelKind, PerformancePredictor  # noqa: F401
        from repro.harness import collect_baselines, collect_training_data  # noqa: F401
        from repro.machine import XEON_E5649  # noqa: F401
        from repro.sim import SimulationEngine  # noqa: F401
        from repro.workloads import all_applications, get_application  # noqa: F401

    def test_cli_entry_point(self):
        from repro.cli import build_parser, main  # noqa: F401

        assert callable(main)

    def test_all_public_modules_have_docstrings(self):
        import pkgutil

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name == "repro.__main__":
                continue  # importing it runs the CLI
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"
