"""Tests for application specs and phased applications."""

import pytest

from repro.cache.reuse import ReuseProfile
from repro.workloads.app import ApplicationPhase, ApplicationSpec, PhasedApplication

MB = 1024.0 * 1024.0


def make_spec(**overrides):
    defaults = dict(
        name="test",
        suite="NAS",
        instructions=1e9,
        base_cpi=1.0,
        accesses_per_instruction=0.01,
        reuse=ReuseProfile.single(4 * MB),
        mlp=1.5,
    )
    defaults.update(overrides)
    return ApplicationSpec(**defaults)


class TestApplicationSpec:
    def test_llc_accesses(self):
        spec = make_spec(instructions=1e9, accesses_per_instruction=0.02)
        assert spec.llc_accesses() == pytest.approx(2e7)

    def test_footprint_delegates_to_profile(self):
        spec = make_spec()
        assert spec.footprint_bytes == spec.reuse.footprint_bytes

    def test_solo_miss_ratio_capped_by_capacity(self):
        spec = make_spec(reuse=ReuseProfile.single(100 * MB))
        small = spec.solo_miss_ratio(1 * MB)
        large = spec.solo_miss_ratio(1000 * MB)
        assert small > large

    def test_solo_memory_intensity(self):
        spec = make_spec()
        cap = 50 * MB
        assert spec.solo_memory_intensity(cap) == pytest.approx(
            spec.accesses_per_instruction * spec.solo_miss_ratio(cap)
        )

    def test_scaled(self):
        spec = make_spec(instructions=1e9)
        assert spec.scaled(2.0).instructions == pytest.approx(2e9)
        assert spec.scaled(2.0).name == spec.name
        with pytest.raises(ValueError):
            spec.scaled(0.0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"instructions": 0.0},
            {"base_cpi": -1.0},
            {"accesses_per_instruction": 1.5},
            {"accesses_per_instruction": -0.1},
            {"mlp": 0.5},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            make_spec(**overrides)


class TestApplicationPhase:
    def test_valid_phase(self):
        phase = ApplicationPhase(
            fraction=0.5,
            base_cpi=1.0,
            accesses_per_instruction=0.01,
            reuse=ReuseProfile.single(1 * MB),
        )
        assert phase.fraction == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fraction": 0.0},
            {"fraction": 1.5},
            {"base_cpi": 0.0},
            {"accesses_per_instruction": 2.0},
            {"mlp": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(
            fraction=0.5,
            base_cpi=1.0,
            accesses_per_instruction=0.01,
            reuse=ReuseProfile.single(1 * MB),
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            ApplicationPhase(**defaults)


class TestPhasedApplication:
    def make_phased(self):
        return PhasedApplication(
            name="phased",
            suite="NAS",
            instructions=1e9,
            phases=(
                ApplicationPhase(0.6, 0.8, 0.02, ReuseProfile.single(1 * MB), mlp=2.0),
                ApplicationPhase(0.4, 1.2, 0.001, ReuseProfile.single(8 * MB), mlp=1.0),
            ),
        )

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PhasedApplication(
                name="bad",
                suite="NAS",
                instructions=1e9,
                phases=(
                    ApplicationPhase(0.5, 1.0, 0.01, ReuseProfile.single(1 * MB)),
                ),
            )

    def test_phase_specs_partition_instructions(self):
        phased = self.make_phased()
        specs = phased.phase_specs()
        assert sum(s.instructions for s in specs) == pytest.approx(1e9)
        assert specs[0].instructions == pytest.approx(0.6e9)

    def test_aggregate_cpi_is_instruction_weighted(self):
        phased = self.make_phased()
        agg = phased.aggregate()
        assert agg.base_cpi == pytest.approx(0.6 * 0.8 + 0.4 * 1.2)

    def test_aggregate_api_is_instruction_weighted(self):
        phased = self.make_phased()
        agg = phased.aggregate()
        assert agg.accesses_per_instruction == pytest.approx(
            0.6 * 0.02 + 0.4 * 0.001
        )

    def test_aggregate_mlp_is_access_weighted(self):
        phased = self.make_phased()
        agg = phased.aggregate()
        w0 = 0.6 * 0.02
        w1 = 0.4 * 0.001
        expected = (w0 * 2.0 + w1 * 1.0) / (w0 + w1)
        assert agg.mlp == pytest.approx(expected)

    def test_aggregate_reuse_mixture_spans_phases(self):
        phased = self.make_phased()
        agg = phased.aggregate()
        working_sets = {c.working_set_bytes for c in agg.reuse.components}
        assert 1 * MB in working_sets
        assert 8 * MB in working_sets

    def test_single_phase_aggregate_roundtrip(self):
        p = ReuseProfile.single(2 * MB, compulsory=0.05)
        phased = PhasedApplication(
            name="one",
            suite="PARSEC",
            instructions=5e8,
            phases=(ApplicationPhase(1.0, 1.1, 0.005, p, mlp=1.3),),
        )
        agg = phased.aggregate()
        assert agg.base_cpi == pytest.approx(1.1)
        assert agg.accesses_per_instruction == pytest.approx(0.005)
        assert agg.mlp == pytest.approx(1.3)
        assert agg.reuse.compulsory == pytest.approx(0.05)

    def test_zero_access_phases_fall_back_to_fraction_weights(self):
        phased = PhasedApplication(
            name="cpu-only",
            suite="NAS",
            instructions=1e9,
            phases=(
                ApplicationPhase(0.5, 1.0, 0.0, ReuseProfile.single(1 * MB), mlp=2.0),
                ApplicationPhase(0.5, 2.0, 0.0, ReuseProfile.single(1 * MB), mlp=4.0),
            ),
        )
        agg = phased.aggregate()
        assert agg.accesses_per_instruction == 0.0
        assert agg.mlp == pytest.approx(3.0)
