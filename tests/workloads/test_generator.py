"""Tests for the random application generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import XEON_E5649
from repro.sim import SimulationEngine
from repro.workloads.classes import MemoryIntensityClass, classify_intensity
from repro.workloads.generator import generate_application, generate_batch

REF = 12.0 * 1024 * 1024


class TestGenerateApplication:
    @pytest.mark.parametrize("cls", list(MemoryIntensityClass))
    def test_lands_in_requested_class(self, cls, rng):
        for _ in range(5):
            app = generate_application(cls, rng)
            assert classify_intensity(app.solo_memory_intensity(REF)) is cls

    def test_deterministic_given_seed(self):
        a = generate_application(
            MemoryIntensityClass.CLASS_II, np.random.default_rng(7)
        )
        b = generate_application(
            MemoryIntensityClass.CLASS_II, np.random.default_rng(7)
        )
        assert a == b

    def test_custom_name(self, rng):
        app = generate_application(MemoryIntensityClass.CLASS_I, rng, name="mine")
        assert app.name == "mine"

    def test_auto_names_unique(self, rng):
        apps = [
            generate_application(MemoryIntensityClass.CLASS_III, rng)
            for _ in range(10)
        ]
        assert len({a.name for a in apps}) == 10

    def test_generated_apps_run_on_engine(self, engine_6core, rng):
        """Any generated app must simulate cleanly, solo and co-located."""
        from repro.workloads.suite import get_application

        cg = get_application("cg")
        for cls in MemoryIntensityClass:
            app = generate_application(cls, rng)
            solo = engine_6core.baseline(app)
            loaded = engine_6core.run(app, [cg] * 3)
            assert solo.target.execution_time_s > 0
            assert (
                loaded.target.execution_time_s
                >= solo.target.execution_time_s * 0.999
            )

    def test_custom_reference_capacity(self, rng):
        big_ref = 30.0 * 1024 * 1024
        app = generate_application(
            MemoryIntensityClass.CLASS_II, rng, reference_capacity_bytes=big_ref
        )
        assert (
            classify_intensity(app.solo_memory_intensity(big_ref))
            is MemoryIntensityClass.CLASS_II
        )

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_property_always_in_class(self, seed):
        rng = np.random.default_rng(seed)
        cls = list(MemoryIntensityClass)[seed % 4]
        app = generate_application(cls, rng)
        assert classify_intensity(app.solo_memory_intensity(REF)) is cls
        assert 0.0 < app.accesses_per_instruction <= 0.05
        assert app.mlp >= 1.0


class TestGenerateBatch:
    def test_composition(self, rng):
        batch = generate_batch(
            {
                MemoryIntensityClass.CLASS_I: 2,
                MemoryIntensityClass.CLASS_IV: 3,
            },
            rng,
        )
        assert len(batch) == 5
        classes = [classify_intensity(a.solo_memory_intensity(REF)) for a in batch]
        assert classes.count(MemoryIntensityClass.CLASS_I) == 2
        assert classes.count(MemoryIntensityClass.CLASS_IV) == 3

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_batch({MemoryIntensityClass.CLASS_I: -1}, rng)

    def test_empty_batch(self, rng):
        assert generate_batch({}, rng) == []
