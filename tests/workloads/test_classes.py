"""Tests for memory intensity classes (Table III groupings)."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.classes import (
    CLASS_BOUNDARIES,
    MemoryIntensityClass,
    class_representative_intensity,
    classify_intensity,
)


class TestClassification:
    @pytest.mark.parametrize(
        "intensity,expected",
        [
            (1e-1, MemoryIntensityClass.CLASS_I),
            (2e-3, MemoryIntensityClass.CLASS_I),
            (1.9e-3, MemoryIntensityClass.CLASS_II),
            (2e-4, MemoryIntensityClass.CLASS_II),
            (1.9e-4, MemoryIntensityClass.CLASS_III),
            (2e-5, MemoryIntensityClass.CLASS_III),
            (1.9e-5, MemoryIntensityClass.CLASS_IV),
            (0.0, MemoryIntensityClass.CLASS_IV),
        ],
    )
    def test_boundaries(self, intensity, expected):
        assert classify_intensity(intensity) is expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            classify_intensity(-1e-6)

    def test_boundaries_are_orders_of_magnitude_apart(self):
        bounds = list(CLASS_BOUNDARIES.values())
        for upper, lower in zip(bounds, bounds[1:]):
            assert upper / lower == pytest.approx(10.0)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_property_total_and_ordered(self, intensity):
        cls = classify_intensity(intensity)
        assert cls in MemoryIntensityClass
        # Higher intensity never yields a higher-numbered (less intense) class.
        weaker = classify_intensity(intensity / 100.0) if intensity > 0 else cls
        assert weaker.value >= cls.value


class TestRepresentatives:
    def test_representative_lands_in_its_class(self):
        for cls in MemoryIntensityClass:
            rep = class_representative_intensity(cls)
            assert classify_intensity(rep) is cls

    def test_representatives_strictly_ordered(self):
        reps = [class_representative_intensity(c) for c in MemoryIntensityClass]
        assert all(a > b for a, b in zip(reps, reps[1:]))


class TestEnumCosmetics:
    def test_roman_labels(self):
        assert MemoryIntensityClass.CLASS_I.roman == "I"
        assert MemoryIntensityClass.CLASS_IV.roman == "IV"

    def test_str(self):
        assert str(MemoryIntensityClass.CLASS_II) == "Class II"
