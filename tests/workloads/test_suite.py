"""Calibration tests for the Table III benchmark suite.

These assert the *scientific* content of Table III: eleven applications,
two suites, four classes spanning orders of magnitude of memory intensity,
with the designed class placement holding on the reference machine.
"""

import pytest

from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.workloads.classes import MemoryIntensityClass, classify_intensity
from repro.workloads.suite import (
    BENCHMARK_SUITE,
    TRAINING_CO_APP_NAMES,
    all_applications,
    get_application,
    intended_class,
    measured_class,
    training_co_apps,
)


class TestSuiteComposition:
    def test_eleven_applications(self):
        assert len(BENCHMARK_SUITE) == 11

    def test_names_unique(self):
        names = [a.name for a in BENCHMARK_SUITE]
        assert len(set(names)) == 11

    def test_both_suites_present(self):
        suites = {a.suite for a in BENCHMARK_SUITE}
        assert suites == {"PARSEC", "NAS"}

    def test_every_class_represented(self):
        classes = {intended_class(a.name) for a in BENCHMARK_SUITE}
        assert classes == set(MemoryIntensityClass)

    def test_lookup_case_insensitive(self):
        assert get_application("CG") is get_application("cg")

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="unknown application"):
            get_application("doom")

    def test_intended_class_unknown(self):
        with pytest.raises(KeyError):
            intended_class("doom")


class TestTrainingCoApps:
    def test_one_per_class(self):
        apps = training_co_apps()
        assert [a.name for a in apps] == list(TRAINING_CO_APP_NAMES)
        classes = [intended_class(a.name) for a in apps]
        assert classes == [
            MemoryIntensityClass.CLASS_I,
            MemoryIntensityClass.CLASS_II,
            MemoryIntensityClass.CLASS_III,
            MemoryIntensityClass.CLASS_IV,
        ]


class TestCalibration:
    """The suite lands in its designed classes when actually measured."""

    @pytest.mark.parametrize("app", BENCHMARK_SUITE, ids=lambda a: a.name)
    def test_class_on_reference_machine(self, app):
        assert (
            measured_class(app, XEON_E5649.llc.size_bytes)
            is intended_class(app.name)
        )

    @pytest.mark.parametrize("app", BENCHMARK_SUITE, ids=lambda a: a.name)
    def test_class_stable_across_machines(self, app):
        """Paper: intensities "do not vary widely between the machines"."""
        assert (
            measured_class(app, XEON_E5_2697V2.llc.size_bytes)
            is intended_class(app.name)
        )

    def test_classes_span_orders_of_magnitude(self):
        cap = XEON_E5649.llc.size_bytes
        class_i = min(
            a.solo_memory_intensity(cap)
            for a in BENCHMARK_SUITE
            if intended_class(a.name) is MemoryIntensityClass.CLASS_I
        )
        class_iv = max(
            a.solo_memory_intensity(cap)
            for a in BENCHMARK_SUITE
            if intended_class(a.name) is MemoryIntensityClass.CLASS_IV
        )
        assert class_i / class_iv > 100.0

    @pytest.mark.parametrize("app", BENCHMARK_SUITE, ids=lambda a: a.name)
    def test_baseline_times_in_paper_range(self, app, engine_6core):
        """Execution times land in the paper's 150–1000+ second range."""
        t = engine_6core.baseline(app).target.execution_time_s
        assert 100.0 < t < 1500.0

    def test_class_i_footprints_exceed_both_llcs(self):
        for app in BENCHMARK_SUITE:
            if intended_class(app.name) is MemoryIntensityClass.CLASS_I:
                assert app.footprint_bytes > XEON_E5_2697V2.llc.size_bytes

    def test_class_iv_working_sets_fit_both_llcs(self):
        # Class IV is defined by intensity; structurally, their working-set
        # knees sit inside even the smaller LLC, so they are cache friendly.
        for app in BENCHMARK_SUITE:
            if intended_class(app.name) is MemoryIntensityClass.CLASS_IV:
                assert app.reuse.max_working_set_bytes < XEON_E5649.llc.size_bytes
