"""Tests for synthetic trace generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.reuse import ReuseProfile
from repro.machine.processor import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.workloads.tracegen import generate_trace, scaled_profile

KB = 1024.0


class TestScaledProfile:
    def test_preserves_shape(self, small_profile):
        scaled = scaled_profile(small_profile, 0.25)
        caps = np.geomspace(1 * KB, 512 * KB, 16)
        orig = np.asarray(small_profile.miss_ratio(caps))
        shrunk = np.asarray(scaled.miss_ratio(caps * 0.25))
        np.testing.assert_allclose(shrunk, orig, rtol=1e-9)

    def test_footprint_scales(self, small_profile):
        scaled = scaled_profile(small_profile, 0.5)
        assert scaled.footprint_bytes == pytest.approx(
            small_profile.footprint_bytes * 0.5
        )

    def test_rejects_bad_factor(self, small_profile):
        with pytest.raises(ValueError):
            scaled_profile(small_profile, 0.0)


class TestGenerateTrace:
    def test_length_and_dtype(self, small_profile, rng):
        trace = generate_trace(small_profile, 64, 1000, rng)
        assert trace.shape == (1000,)
        assert trace.dtype == np.int64
        assert np.all(trace >= 0)

    def test_deterministic_given_seed(self, small_profile):
        t1 = generate_trace(small_profile, 64, 500, np.random.default_rng(3))
        t2 = generate_trace(small_profile, 64, 500, np.random.default_rng(3))
        np.testing.assert_array_equal(t1, t2)

    def test_distinct_lines_bounded_by_locality(self, small_profile, rng):
        trace = generate_trace(small_profile, 64, 20_000, rng)
        distinct = len(np.unique(trace))
        # With reuse, far fewer distinct lines than references.
        assert distinct < 20_000 * 0.6

    def test_high_compulsory_profile_is_streaming(self, rng):
        p = ReuseProfile.single(8 * KB, compulsory=0.9)
        trace = generate_trace(p, 64, 5000, rng)
        distinct = len(np.unique(trace))
        assert distinct > 5000 * 0.6  # mostly cold lines

    def test_rejects_bad_args(self, small_profile, rng):
        with pytest.raises(ValueError):
            generate_trace(small_profile, 64, 0, rng)
        with pytest.raises(ValueError):
            generate_trace(small_profile, 64, 10, rng, max_stack_lines=0)

    def test_replay_miss_ratio_matches_profile(self, rng):
        """The core tracegen invariant: the profile's MRC is realized."""
        p = ReuseProfile.single(64 * KB, compulsory=0.02)
        trace = generate_trace(p, 64, 150_000, rng)
        for cap_kb in (16, 48, 128):
            geo = CacheGeometry(
                size_bytes=int(cap_kb * KB), line_bytes=64, associativity=8
            )
            cache = SetAssociativeCache(geo)
            split = len(trace) // 4
            cache.access_trace(trace[:split])
            cache.reset_stats()
            stats = cache.access_trace(trace[split:])
            expected = float(p.miss_ratio(cap_kb * KB))
            assert stats.miss_ratio == pytest.approx(expected, abs=0.08)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_property_trace_lines_contiguous_from_zero(self, seed):
        p = ReuseProfile.single(16 * KB, compulsory=0.1)
        trace = generate_trace(p, 64, 3000, np.random.default_rng(seed))
        # Line numbers are allocated sequentially: max < allocations <= refs.
        assert trace.max() < 3000
        uniq = np.unique(trace)
        np.testing.assert_array_equal(uniq, np.arange(uniq.size))
