"""Tests for the analytic shared-cache occupancy model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.reuse import ReuseProfile
from repro.cache.sharing import (
    CacheCompetitor,
    solve_shared_cache,
    waterfill,
)

MB = 1024.0 * 1024.0


class TestWaterfill:
    def test_proportional_when_unconstrained(self):
        alloc = waterfill(np.array([1.0, 3.0]), np.array([100.0, 100.0]), 40.0)
        np.testing.assert_allclose(alloc, [10.0, 30.0])

    def test_caps_at_demand_and_redistributes(self):
        alloc = waterfill(np.array([1.0, 1.0]), np.array([5.0, 100.0]), 40.0)
        np.testing.assert_allclose(alloc, [5.0, 35.0])

    def test_never_exceeds_capacity(self):
        alloc = waterfill(np.array([2.0, 5.0, 1.0]), np.array([10.0, 10.0, 10.0]), 12.0)
        assert alloc.sum() <= 12.0 + 1e-9
        assert np.all(alloc <= 10.0 + 1e-9)

    def test_zero_pressure_splits_evenly(self):
        alloc = waterfill(np.zeros(2), np.array([100.0, 100.0]), 10.0)
        np.testing.assert_allclose(alloc, [5.0, 5.0])

    def test_all_demand_satisfiable(self):
        alloc = waterfill(np.array([1.0, 1.0]), np.array([3.0, 4.0]), 100.0)
        np.testing.assert_allclose(alloc, [3.0, 4.0])

    @given(
        n=st.integers(min_value=1, max_value=6),
        cap=st.floats(min_value=1.0, max_value=1000.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60)
    def test_property_feasible_allocation(self, n, cap, seed):
        rng = np.random.default_rng(seed)
        pressure = rng.uniform(0.0, 10.0, n)
        demand = rng.uniform(0.1, 500.0, n)
        alloc = waterfill(pressure, demand, cap)
        assert np.all(alloc >= -1e-9)
        assert np.all(alloc <= demand + 1e-6)
        assert alloc.sum() <= cap + 1e-6
        # Capacity is exhausted unless all demand is satisfied.
        if demand.sum() > cap:
            assert alloc.sum() == pytest.approx(cap, rel=1e-6)


class TestSolveSharedCache:
    def test_single_app_gets_min_footprint_capacity(self, small_profile):
        sol = solve_shared_cache(
            [CacheCompetitor(small_profile, access_rate=1e6)], 10 * MB
        )
        assert sol.converged
        assert sol.occupancies_bytes[0] == pytest.approx(
            min(small_profile.footprint_bytes, 10 * MB)
        )
        assert sol.miss_ratios[0] == pytest.approx(
            float(small_profile.miss_ratio(sol.occupancies_bytes[0])), rel=1e-6
        )

    def test_everything_fits_no_competition(self):
        p = ReuseProfile.single(64 * 1024)
        comps = [CacheCompetitor(p, 1e6), CacheCompetitor(p, 1e6)]
        sol = solve_shared_cache(comps, 10 * MB)
        assert sol.iterations == 0
        np.testing.assert_allclose(
            sol.occupancies_bytes, [p.footprint_bytes] * 2
        )

    def test_identical_competitors_split_evenly(self):
        p = ReuseProfile.single(8 * MB)
        comps = [CacheCompetitor(p, 1e6), CacheCompetitor(p, 1e6)]
        sol = solve_shared_cache(comps, 10 * MB)
        assert sol.converged
        assert sol.occupancies_bytes[0] == pytest.approx(
            sol.occupancies_bytes[1], rel=1e-3
        )
        assert sol.occupancies_bytes.sum() == pytest.approx(10 * MB, rel=1e-3)

    def test_higher_rate_wins_capacity(self):
        p = ReuseProfile.single(8 * MB)
        comps = [CacheCompetitor(p, 1e7), CacheCompetitor(p, 1e6)]
        sol = solve_shared_cache(comps, 10 * MB)
        assert sol.occupancies_bytes[0] > sol.occupancies_bytes[1]

    def test_adding_competitors_raises_target_misses(self):
        target = ReuseProfile.single(6 * MB)
        aggressor = ReuseProfile.single(64 * MB)
        prev = None
        for n in range(0, 4):
            comps = [CacheCompetitor(target, 1e6)] + [
                CacheCompetitor(aggressor, 1e7) for _ in range(n)
            ]
            sol = solve_shared_cache(comps, 12 * MB)
            mr = sol.miss_ratios[0]
            if prev is not None:
                assert mr >= prev - 1e-9
            prev = mr

    def test_occupancies_within_capacity(self, small_profile):
        comps = [CacheCompetitor(small_profile, 10 ** (5 + i)) for i in range(5)]
        sol = solve_shared_cache(comps, 256 * 1024)
        assert sol.occupancies_bytes.sum() <= 256 * 1024 * (1 + 1e-6)
        assert np.all(sol.occupancies_bytes >= 0.0)

    def test_validation(self, small_profile):
        comp = CacheCompetitor(small_profile, 1e6)
        with pytest.raises(ValueError, match="capacity"):
            solve_shared_cache([comp], 0.0)
        with pytest.raises(ValueError, match="at least one"):
            solve_shared_cache([], 1 * MB)
        with pytest.raises(ValueError, match="damping"):
            solve_shared_cache([comp], 1 * MB, damping=0.0)
        with pytest.raises(ValueError, match="access rate"):
            CacheCompetitor(small_profile, -1.0)

    @given(
        rates=st.lists(
            st.floats(min_value=1e3, max_value=1e9), min_size=2, max_size=6
        ),
        cap_mb=st.floats(min_value=1.0, max_value=32.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_fixed_point_feasible(self, rates, cap_mb):
        p = ReuseProfile.mixture([(2 * MB, 0.5), (16 * MB, 0.5)], compulsory=0.01)
        comps = [CacheCompetitor(p, r) for r in rates]
        sol = solve_shared_cache(comps, cap_mb * MB)
        assert sol.occupancies_bytes.sum() <= cap_mb * MB * (1 + 1e-6)
        assert np.all(sol.miss_ratios >= 0.0)
        assert np.all(sol.miss_ratios <= 1.0)
