"""Tests for reuse profiles and miss-ratio curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.reuse import (
    MissRatioCurve,
    ProfileTable,
    ReuseComponent,
    ReuseProfile,
)

KB = 1024.0
MB = 1024.0 * 1024.0


class TestReuseComponent:
    def test_miss_fraction_half_at_working_set(self):
        comp = ReuseComponent(working_set_bytes=1 * MB, weight=1.0)
        assert comp.miss_fraction(1 * MB) == pytest.approx(0.5)

    def test_miss_fraction_limits(self):
        comp = ReuseComponent(working_set_bytes=1 * MB, weight=1.0)
        assert comp.miss_fraction(0.0) == pytest.approx(1.0)
        assert comp.miss_fraction(100 * MB) < 1e-4

    def test_sharpness_controls_knee(self):
        soft = ReuseComponent(1 * MB, 1.0, sharpness=1.0)
        sharp = ReuseComponent(1 * MB, 1.0, sharpness=6.0)
        # Above the knee the sharp component decays faster.
        assert sharp.miss_fraction(2 * MB) < soft.miss_fraction(2 * MB)

    def test_settled_capacity(self):
        comp = ReuseComponent(1 * MB, 1.0, sharpness=3.0)
        settled = comp.settled_capacity(0.05)
        assert comp.miss_fraction(settled) == pytest.approx(0.05, rel=1e-6)
        assert settled > comp.working_set_bytes

    def test_settled_capacity_epsilon_validation(self):
        comp = ReuseComponent(1 * MB, 1.0)
        with pytest.raises(ValueError):
            comp.settled_capacity(0.0)
        with pytest.raises(ValueError):
            comp.settled_capacity(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"working_set_bytes": 0.0, "weight": 1.0},
            {"working_set_bytes": 1.0, "weight": 0.0},
            {"working_set_bytes": 1.0, "weight": 1.5},
            {"working_set_bytes": 1.0, "weight": 1.0, "sharpness": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReuseComponent(**kwargs)


class TestReuseProfile:
    def test_single(self):
        p = ReuseProfile.single(1 * MB, compulsory=0.1)
        assert p.miss_ratio(1e12) == pytest.approx(0.1, abs=1e-3)
        assert p.miss_ratio(0.0) == pytest.approx(1.0)

    def test_mixture_normalizes_weights(self):
        p = ReuseProfile.mixture([(1 * MB, 2.0), (4 * MB, 2.0)])
        assert sum(c.weight for c in p.components) == pytest.approx(1.0)

    def test_mixture_with_sharpness(self):
        p = ReuseProfile.mixture([(1 * MB, 1.0, 5.0)])
        assert p.components[0].sharpness == 5.0

    def test_weights_must_sum_to_one(self):
        comps = (ReuseComponent(1 * MB, 0.5),)
        with pytest.raises(ValueError, match="sum to 1"):
            ReuseProfile(components=comps)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReuseProfile(components=())
        with pytest.raises(ValueError):
            ReuseProfile.mixture([])

    def test_compulsory_bounds(self):
        with pytest.raises(ValueError):
            ReuseProfile.single(1 * MB, compulsory=1.0)
        with pytest.raises(ValueError):
            ReuseProfile.single(1 * MB, compulsory=-0.1)

    def test_miss_ratio_monotone_nonincreasing(self, small_profile):
        caps = np.linspace(0, 1 * MB, 200)
        mrs = np.asarray(small_profile.miss_ratio(caps))
        assert np.all(np.diff(mrs) <= 1e-12)

    def test_miss_ratio_bounded(self, small_profile):
        caps = np.geomspace(1.0, 100 * MB, 50)
        mrs = np.asarray(small_profile.miss_ratio(caps))
        assert np.all(mrs >= small_profile.compulsory - 1e-12)
        assert np.all(mrs <= 1.0)

    def test_miss_ratio_scalar_and_vector_agree(self, small_profile):
        caps = np.array([0.0, 16 * KB, 64 * KB, 1 * MB])
        vec = np.asarray(small_profile.miss_ratio(caps))
        scal = np.array([small_profile.miss_ratio(float(c)) for c in caps])
        np.testing.assert_allclose(vec, scal)

    def test_footprint_is_settled_capacity(self):
        p = ReuseProfile.mixture([(1 * MB, 0.5), (4 * MB, 0.5)])
        expected = max(c.settled_capacity() for c in p.components)
        assert p.footprint_bytes == pytest.approx(expected)
        assert p.max_working_set_bytes == pytest.approx(4 * MB)

    def test_curve_tabulation(self, small_profile):
        curve = small_profile.curve(1 * MB, points=64)
        assert curve.is_monotone_nonincreasing()
        assert curve(0.0) == pytest.approx(float(small_profile.miss_ratio(0.0)))
        mid = 128 * KB
        assert curve(mid) == pytest.approx(
            float(small_profile.miss_ratio(mid)), abs=0.02
        )

    def test_stack_distance_distribution_sums_to_one(self, small_profile):
        dist, prob = small_profile.stack_distance_distribution(64)
        assert prob.sum() == pytest.approx(1.0)
        assert np.all(prob >= 0.0)
        assert dist[-1] == np.iinfo(np.int64).max

    def test_stack_distance_cdf_matches_miss_ratio(self, small_profile):
        line = 64
        dist, prob = small_profile.stack_distance_distribution(line)
        # P(distance > d) should approximate miss_ratio(d * line).
        d_query = int(32 * KB // line)
        tail = prob[dist > d_query].sum()
        expected = float(small_profile.miss_ratio(d_query * line))
        assert tail == pytest.approx(expected, abs=0.03)

    def test_stack_distance_rejects_bad_args(self, small_profile):
        with pytest.raises(ValueError):
            small_profile.stack_distance_distribution(0)
        with pytest.raises(ValueError):
            small_profile.stack_distance_distribution(64, max_distance_lines=0)

    @given(
        ws=st.floats(min_value=1 * KB, max_value=10 * MB),
        compulsory=st.floats(min_value=0.0, max_value=0.5),
        sharp=st.floats(min_value=0.5, max_value=8.0),
    )
    @settings(max_examples=50)
    def test_property_monotone_any_profile(self, ws, compulsory, sharp):
        p = ReuseProfile.mixture([(ws, 1.0, sharp)], compulsory=compulsory)
        caps = np.geomspace(1.0, 20 * ws, 64)
        mrs = np.asarray(p.miss_ratio(caps))
        assert np.all(np.diff(mrs) <= 1e-9)
        assert mrs[0] <= 1.0 and mrs[-1] >= compulsory - 1e-9


class TestMissRatioCurve:
    def test_interpolation(self):
        curve = MissRatioCurve(
            capacities=np.array([0.0, 10.0, 20.0]),
            miss_ratios=np.array([1.0, 0.5, 0.0]),
        )
        assert curve(5.0) == pytest.approx(0.75)
        assert curve(15.0) == pytest.approx(0.25)

    def test_clamps_outside_range(self):
        curve = MissRatioCurve(
            capacities=np.array([10.0, 20.0]),
            miss_ratios=np.array([0.8, 0.2]),
        )
        assert curve(0.0) == pytest.approx(0.8)
        assert curve(100.0) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MissRatioCurve(np.array([1.0, 1.0]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError, match="within"):
            MissRatioCurve(np.array([0.0, 1.0]), np.array([1.5, 0.5]))
        with pytest.raises(ValueError, match="at least two"):
            MissRatioCurve(np.array([0.0]), np.array([0.5]))
        with pytest.raises(ValueError, match="equal-length"):
            MissRatioCurve(np.array([0.0, 1.0]), np.array([0.5]))

    def test_monotone_check(self):
        up = MissRatioCurve(np.array([0.0, 1.0]), np.array([0.2, 0.8]))
        assert not up.is_monotone_nonincreasing()


class TestProfileTable:
    def test_matches_scalar_path(self, rng):
        profiles = [
            ReuseProfile.mixture([(1 * MB, 0.7), (8 * MB, 0.3)], compulsory=0.01),
            ReuseProfile.single(512 * KB, compulsory=0.1),
            ReuseProfile.mixture([(64 * KB, 0.2, 2.0), (2 * MB, 0.8, 4.0)]),
        ]
        table = ProfileTable(profiles)
        occ = rng.uniform(0, 4 * MB, size=3)
        batched = table.miss_ratio(occ)
        scalar = np.array([p.miss_ratio(float(o)) for p, o in zip(profiles, occ)])
        np.testing.assert_allclose(batched, scalar, rtol=1e-12)

    def test_footprints_match(self):
        profiles = [ReuseProfile.single(1 * MB), ReuseProfile.single(4 * MB)]
        table = ProfileTable(profiles)
        np.testing.assert_allclose(
            table.footprints, [p.footprint_bytes for p in profiles]
        )

    def test_shape_validation(self):
        table = ProfileTable([ReuseProfile.single(1 * MB)])
        with pytest.raises(ValueError, match="expected 1"):
            table.miss_ratio(np.zeros(2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProfileTable([])
