"""Tests for LLC way-partitioning."""

import numpy as np
import pytest

from repro.cache.partition import (
    WayPartition,
    equal_partition,
    footprint_proportional_partition,
    protect_target_partition,
)
from repro.machine import XEON_E5649
from repro.workloads.suite import get_application

GEO = XEON_E5649.llc  # 12 MB, 16 ways


class TestWayPartition:
    def test_occupancy_conversion(self):
        p = WayPartition(geometry=GEO, ways=(8, 4, 4))
        occ = p.occupancies_bytes()
        assert occ.sum() == pytest.approx(GEO.size_bytes)
        assert occ[0] == pytest.approx(GEO.size_bytes / 2)

    def test_partial_assignment_allowed(self):
        p = WayPartition(geometry=GEO, ways=(4, 4))
        assert p.occupancies_bytes().sum() < GEO.size_bytes

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one application"):
            WayPartition(geometry=GEO, ways=())
        with pytest.raises(ValueError, match="at least one way"):
            WayPartition(geometry=GEO, ways=(0, 16))
        with pytest.raises(ValueError, match="16"):
            WayPartition(geometry=GEO, ways=(10, 10))


class TestPolicies:
    def test_equal_partition(self):
        p = equal_partition(3, GEO)
        assert sum(p.ways) == 16
        assert p.ways == (6, 5, 5)  # leftovers to the target

    def test_equal_partition_validation(self):
        with pytest.raises(ValueError):
            equal_partition(0, GEO)
        with pytest.raises(ValueError):
            equal_partition(17, GEO)

    def test_footprint_proportional(self):
        apps = [get_application("cg"), get_application("ep")]
        p = footprint_proportional_partition(apps, GEO)
        assert sum(p.ways) <= 16
        assert p.ways[0] > p.ways[1]  # cg's footprint dwarfs ep's

    def test_footprint_proportional_minimum_one_way(self):
        apps = [get_application("cg")] + [get_application("ep")] * 3
        p = footprint_proportional_partition(apps, GEO)
        assert all(w >= 1 for w in p.ways)

    def test_protect_target(self):
        p = protect_target_partition(3, GEO, target_fraction=0.5)
        assert p.ways[0] == 8
        assert sum(p.ways[1:]) == 8
        assert len(p.ways) == 4

    def test_protect_target_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            protect_target_partition(2, GEO, target_fraction=1.0)
        with pytest.raises(ValueError, match="cannot share"):
            protect_target_partition(10, GEO, target_fraction=0.9)

    def test_protect_target_solo(self):
        p = protect_target_partition(0, GEO, target_fraction=0.25)
        assert p.ways == (4,)


class TestPartitionedExecution:
    def test_protection_shields_the_victim(self, engine_6core):
        """Pinned ways insulate canneal from cg's cache pressure."""
        canneal = get_application("canneal")
        cg = get_application("cg")
        shared = engine_6core.run(canneal, [cg] * 3)
        partition = protect_target_partition(3, GEO, target_fraction=0.75)
        isolated = engine_6core.run(
            canneal, [cg] * 3, fixed_occupancies=partition.occupancies_bytes()
        )
        # Under sharing, cg squeezes canneal far below 75% of the LLC.
        assert shared.target.occupancy_bytes < 0.75 * GEO.size_bytes * 0.9
        assert isolated.target.miss_ratio < shared.target.miss_ratio
        assert (
            isolated.target.execution_time_s < shared.target.execution_time_s
        )

    def test_protection_costs_the_aggressors(self, engine_6core):
        canneal = get_application("canneal")
        cg = get_application("cg")
        shared = engine_6core.run(canneal, [cg] * 3)
        partition = protect_target_partition(3, GEO, target_fraction=0.75)
        isolated = engine_6core.run(
            canneal, [cg] * 3, fixed_occupancies=partition.occupancies_bytes()
        )
        # cg loses capacity it held under sharing -> runs slower.
        assert (
            isolated.co_runners[0].execution_time_s
            >= shared.co_runners[0].execution_time_s * 0.999
        )

    def test_occupancies_pinned_exactly(self, engine_6core):
        canneal = get_application("canneal")
        cg = get_application("cg")
        partition = equal_partition(3, GEO)
        run = engine_6core.run(
            canneal, [cg] * 2, fixed_occupancies=partition.occupancies_bytes()
        )
        expected = partition.occupancies_bytes()
        for app_run, alloc in zip(run.runs, expected):
            # Pinned, but never above what the app can use.
            cap = min(alloc, app_run.app.footprint_bytes)
            assert app_run.occupancy_bytes == pytest.approx(cap)

    def test_engine_validation(self, engine_6core):
        canneal = get_application("canneal")
        cg = get_application("cg")
        with pytest.raises(ValueError, match="one occupancy per"):
            engine_6core.run(
                canneal, [cg], fixed_occupancies=np.array([1e6, 1e6, 1e6])
            )
        with pytest.raises(ValueError, match="at most the LLC"):
            engine_6core.run(
                canneal, [cg],
                fixed_occupancies=np.array([GEO.size_bytes, GEO.size_bytes]),
            )

    def test_phased_target_rejected(self, engine_6core):
        from repro.cache.reuse import ReuseProfile
        from repro.workloads.app import ApplicationPhase, PhasedApplication

        phased = PhasedApplication(
            name="p", suite="T", instructions=1e10,
            phases=(ApplicationPhase(1.0, 1.0, 0.001,
                                     ReuseProfile.single(1e6)),),
        )
        with pytest.raises(ValueError, match="phased"):
            engine_6core.run(
                phased, [], fixed_occupancies=np.array([1e6])
            )
