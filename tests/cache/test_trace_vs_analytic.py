"""Cross-validation: analytic sharing model vs trace-driven ground truth.

The central substrate claim of DESIGN.md: the rate-proportional occupancy
equilibrium (`repro.cache.sharing`) predicts what actually emerges when
interleaved synthetic traces share a real (simulated) set-associative LRU
cache (`repro.sim.tracesim`).
"""

import numpy as np
import pytest

from repro.cache.reuse import ReuseProfile
from repro.cache.sharing import CacheCompetitor, solve_shared_cache
from repro.machine.processor import CacheGeometry
from repro.sim.tracesim import TraceCompetitor, simulate_trace_sharing

KB = 1024.0


@pytest.fixture(scope="module")
def geometry():
    # 256 KB shared cache, validation scale.
    return CacheGeometry(size_bytes=256 * 1024, line_bytes=64, associativity=8)


def run_both(profiles_weights, geometry, n_refs=300_000, seed=11):
    """Run the trace simulation and the analytic solver on the same setup."""
    rng = np.random.default_rng(seed)
    tcs = [
        TraceCompetitor(f"app{i}", p, w) for i, (p, w) in enumerate(profiles_weights)
    ]
    measured = simulate_trace_sharing(tcs, geometry, n_refs, rng)
    analytic = solve_shared_cache(
        [CacheCompetitor(p, w) for p, w in profiles_weights],
        geometry.size_bytes,
    )
    return measured, analytic


class TestAgreement:
    def test_two_equal_streams(self, geometry):
        p = ReuseProfile.single(96 * KB, compulsory=0.02)
        measured, analytic = run_both([(p, 1.0), (p, 1.0)], geometry)
        np.testing.assert_allclose(
            measured.miss_ratios, analytic.miss_ratios, atol=0.10
        )

    def test_aggressor_vs_victim_miss_ratios(self, geometry):
        victim = ReuseProfile.single(64 * KB, compulsory=0.01)
        aggressor = ReuseProfile.single(1024 * KB, compulsory=0.02)
        measured, analytic = run_both(
            [(victim, 1.0), (aggressor, 3.0)], geometry
        )
        # Both models agree the victim suffers and the aggressor streams.
        np.testing.assert_allclose(
            measured.miss_ratios, analytic.miss_ratios, atol=0.12
        )

    def test_victim_degrades_with_aggressor_pressure_in_both_models(self, geometry):
        victim = ReuseProfile.single(64 * KB, compulsory=0.01)
        aggressor = ReuseProfile.single(1024 * KB, compulsory=0.02)
        measured_mrs, analytic_mrs = [], []
        for weight in (0.5, 2.0, 8.0):
            measured, analytic = run_both(
                [(victim, 1.0), (aggressor, weight)], geometry, n_refs=200_000
            )
            measured_mrs.append(measured.miss_ratios[0])
            analytic_mrs.append(analytic.miss_ratios[0])
        # Monotone degradation of the victim, in both worlds.
        assert measured_mrs[0] <= measured_mrs[-1] + 0.02
        assert analytic_mrs[0] <= analytic_mrs[-1] + 1e-9

    def test_occupancy_split_direction_matches(self, geometry):
        small = ReuseProfile.single(48 * KB, compulsory=0.01)
        big = ReuseProfile.single(512 * KB, compulsory=0.01)
        measured, analytic = run_both([(small, 1.0), (big, 1.0)], geometry)
        # The big/high-miss stream holds more of the cache in both models.
        assert measured.occupancies_bytes[1] > measured.occupancies_bytes[0]
        assert analytic.occupancies_bytes[1] > analytic.occupancies_bytes[0]

    def test_solo_stream_matches_profile(self, geometry):
        p = ReuseProfile.single(96 * KB, compulsory=0.02)
        measured, analytic = run_both([(p, 1.0)], geometry)
        expected = float(p.miss_ratio(min(p.footprint_bytes, geometry.size_bytes)))
        assert measured.miss_ratios[0] == pytest.approx(expected, abs=0.08)
        assert analytic.miss_ratios[0] == pytest.approx(expected, rel=1e-6)
