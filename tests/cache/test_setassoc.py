"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.reuse import ReuseProfile
from repro.cache.setassoc import (
    CacheStats,
    SetAssociativeCache,
    measure_miss_ratio_curve,
)
from repro.machine.processor import CacheGeometry


def small_geometry(sets=4, assoc=2, line=64):
    return CacheGeometry(
        size_bytes=sets * assoc * line, line_bytes=line, associativity=assoc
    )


class TestCacheStats:
    def test_miss_ratio(self):
        s = CacheStats(accesses=10, hits=7, misses=3)
        assert s.miss_ratio == pytest.approx(0.3)

    def test_miss_ratio_empty(self):
        assert CacheStats().miss_ratio == 0.0

    def test_merge(self):
        a = CacheStats(accesses=5, hits=3, misses=2, evictions=1)
        b = CacheStats(accesses=1, hits=0, misses=1, evictions=0)
        m = a.merge(b)
        assert (m.accesses, m.hits, m.misses, m.evictions) == (6, 3, 3, 1)


class TestSetAssociativeCache:
    def test_first_access_misses_then_hits(self):
        cache = SetAssociativeCache(small_geometry())
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        # Direct-mapped would be trivial; use 2-way and force one set.
        cache = SetAssociativeCache(small_geometry(sets=4, assoc=2))
        # Lines 0, 4, 8 all map to set 0 (line % 4).
        cache.access(0)
        cache.access(4)
        cache.access(0)      # 0 is now MRU, 4 LRU
        cache.access(8)      # evicts 4
        assert cache.access(0) is True
        assert cache.access(4) is False  # was evicted
        assert cache.stats.evictions >= 1

    def test_capacity_never_exceeded(self):
        geo = small_geometry(sets=2, assoc=2)
        cache = SetAssociativeCache(geo)
        for line in range(100):
            cache.access(line)
        assert cache.occupancy() <= geo.num_lines

    def test_owners_do_not_alias(self):
        cache = SetAssociativeCache(small_geometry())
        cache.access(7, owner=0)
        # Same line number, different owner: must miss.
        assert cache.access(7, owner=1) is False
        assert cache.owner_stats(0).accesses == 1
        assert cache.owner_stats(1).misses == 1

    def test_per_owner_occupancy(self):
        cache = SetAssociativeCache(small_geometry(sets=8, assoc=4))
        for line in range(4):
            cache.access(line, owner=0)
        for line in range(2):
            cache.access(line, owner=1)
        assert cache.occupancy(0) == 4
        assert cache.occupancy(1) == 2
        assert cache.occupancy() == 6

    def test_reset_stats_keeps_contents(self):
        cache = SetAssociativeCache(small_geometry())
        cache.access(3)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.access(3) is True  # still resident

    def test_flush_clears_contents(self):
        cache = SetAssociativeCache(small_geometry())
        cache.access(3)
        cache.flush()
        assert cache.access(3) is False

    def test_access_trace_equals_scalar_loop(self, rng):
        geo = small_geometry(sets=8, assoc=2)
        trace = rng.integers(0, 64, size=500)
        c1 = SetAssociativeCache(geo)
        stats = c1.access_trace(trace)
        c2 = SetAssociativeCache(geo)
        hits = sum(c2.access(int(l)) for l in trace)
        assert stats.hits == hits
        assert stats.accesses == 500
        assert stats.misses == 500 - hits

    def test_access_trace_returns_delta_not_total(self, rng):
        cache = SetAssociativeCache(small_geometry())
        t1 = rng.integers(0, 8, size=100)
        t2 = rng.integers(0, 8, size=100)
        cache.access_trace(t1)
        stats2 = cache.access_trace(t2)
        assert stats2.accesses == 100
        assert cache.stats.accesses == 200

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        geo = small_geometry(sets=4, assoc=4)  # 16 lines
        cache = SetAssociativeCache(geo)
        trace = np.tile(np.arange(16), 10)
        cache.access_trace(trace[:16])
        cache.reset_stats()
        stats = cache.access_trace(trace[16:])
        assert stats.miss_ratio == 0.0

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_property_hits_plus_misses(self, assoc, sets):
        geo = CacheGeometry(
            size_bytes=sets * assoc * 64, line_bytes=64, associativity=assoc
        )
        cache = SetAssociativeCache(geo)
        rng = np.random.default_rng(sets * 10 + assoc)
        trace = rng.integers(0, 4 * sets, size=200)
        stats = cache.access_trace(trace)
        assert stats.hits + stats.misses == stats.accesses == 200
        assert cache.occupancy() <= geo.num_lines


class TestMeasureMissRatioCurve:
    def test_curve_monotone_for_looping_trace(self):
        # A cyclic trace over N lines has a cliff at N lines of capacity.
        geo = small_geometry(sets=16, assoc=4)
        trace = np.tile(np.arange(32), 60)
        caps = np.array([8, 16, 32, 64, 128]) * 64.0
        curve = measure_miss_ratio_curve(trace, geo, caps)
        assert curve.miss_ratios[0] >= curve.miss_ratios[-1]
        # Everything fits at 128 lines: essentially no misses post warmup.
        assert curve.miss_ratios[-1] < 0.05

    def test_matches_generating_profile(self, small_profile, rng):
        from repro.workloads.tracegen import generate_trace

        geo = CacheGeometry(size_bytes=256 * 1024, line_bytes=64, associativity=8)
        trace = generate_trace(small_profile, 64, 120_000, rng)
        caps = np.array([8, 32, 64, 128, 192, 320]) * 1024.0
        curve = measure_miss_ratio_curve(trace, geo, caps)
        predicted = np.asarray(small_profile.miss_ratio(caps))
        # Trace-driven set-associative measurements track the analytic MRC.
        np.testing.assert_allclose(curve.miss_ratios, predicted, atol=0.08)

    def test_validation(self):
        geo = small_geometry()
        with pytest.raises(ValueError, match="warmup"):
            measure_miss_ratio_curve(np.arange(10), geo, [64.0, 128.0], warmup_fraction=1.0)
        with pytest.raises(ValueError, match="two capacities"):
            measure_miss_ratio_curve(np.arange(10), geo, [64.0])
