"""Tests for cache replacement policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.replacement import ReplacementPolicy, make_set
from repro.cache.setassoc import SetAssociativeCache
from repro.machine.processor import CacheGeometry
from repro.workloads.tracegen import generate_trace
from repro.cache.reuse import ReuseProfile

ALL_POLICIES = list(ReplacementPolicy)


def geometry(sets=4, assoc=4, line=64):
    return CacheGeometry(
        size_bytes=sets * assoc * line, line_bytes=line, associativity=assoc
    )


def build_cache(policy, sets=4, assoc=4):
    return SetAssociativeCache(
        geometry(sets, assoc),
        policy=policy,
        rng=np.random.default_rng(0),
    )


class TestMakeSet:
    def test_all_policies_constructible(self, rng):
        for policy in ALL_POLICIES:
            s = make_set(policy, 4, rng)
            assert len(s) == 0

    def test_random_needs_rng(self):
        with pytest.raises(ValueError, match="rng"):
            make_set(ReplacementPolicy.RANDOM, 4, None)

    def test_plru_needs_power_of_two(self, rng):
        with pytest.raises(ValueError, match="power-of-two"):
            make_set(ReplacementPolicy.PLRU, 3, rng)

    def test_zero_associativity_rejected(self, rng):
        with pytest.raises(ValueError):
            make_set(ReplacementPolicy.LRU, 0, rng)


class TestPolicySemantics:
    def test_lru_promotes_on_hit(self, rng):
        s = make_set(ReplacementPolicy.LRU, 2, rng)
        s.lookup("a"); s.lookup("b"); s.lookup("a")  # a promoted
        s.lookup("c")  # evicts b
        assert s.evicted_last() == "b"

    def test_fifo_does_not_promote(self, rng):
        s = make_set(ReplacementPolicy.FIFO, 2, rng)
        s.lookup("a"); s.lookup("b"); s.lookup("a")  # hit, but no promote
        s.lookup("c")  # evicts a (oldest insertion)
        assert s.evicted_last() == "a"

    def test_plru_tracks_recency_for_two_ways(self, rng):
        """With 2 ways, tree-PLRU degenerates to exact LRU."""
        s = make_set(ReplacementPolicy.PLRU, 2, rng)
        s.lookup("a"); s.lookup("b"); s.lookup("a")
        s.lookup("c")
        assert s.evicted_last() == "b"

    def test_plru_never_evicts_most_recent(self, rng):
        s = make_set(ReplacementPolicy.PLRU, 8, rng)
        for key in "abcdefgh":
            s.lookup(key)
        s.lookup("h")  # most recent
        s.lookup("i")
        assert s.evicted_last() != "h"

    def test_random_evicts_uniformly(self):
        rng = np.random.default_rng(1)
        victims = []
        for _ in range(300):
            s = make_set(ReplacementPolicy.RANDOM, 4, rng)
            for key in "abcd":
                s.lookup(key)
            s.lookup("e")
            victims.append(s.evicted_last())
        counts = {k: victims.count(k) for k in "abcd"}
        # Every resident way gets evicted sometimes.
        assert all(c > 30 for c in counts.values())

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.value)
    def test_capacity_invariant(self, policy, rng):
        s = make_set(policy, 4, rng)
        for i in range(50):
            s.lookup(i)
        assert len(s) == 4
        assert len(s.keys()) == 4

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.value)
    def test_hit_after_insert(self, policy, rng):
        s = make_set(policy, 4, rng)
        assert s.lookup("x") is False
        assert s.lookup("x") is True

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.value)
    def test_working_set_within_ways_never_misses(self, policy, rng):
        s = make_set(policy, 4, rng)
        keys = ["a", "b", "c", "d"]
        for k in keys:
            s.lookup(k)
        for _ in range(5):
            for k in keys:
                assert s.lookup(k) is True


class TestCacheWithPolicies:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.value)
    def test_counters_consistent(self, policy, rng):
        cache = build_cache(policy)
        trace = rng.integers(0, 40, size=1000)
        stats = cache.access_trace(trace)
        assert stats.hits + stats.misses == 1000
        assert cache.occupancy() <= cache.geometry.num_lines

    def test_lru_beats_or_matches_others_on_stack_trace(self, rng):
        """For an LRU-friendly trace whose working set mostly fits, true
        LRU yields the lowest or equal miss ratio among the policies.
        (Under thrashing the ranking famously inverts — LRU is pessimal
        for loops beyond capacity — so this test stays in the fitting
        regime the analytic models target.)"""
        profile = ReuseProfile.single(12 * 1024, compulsory=0.02)
        trace = generate_trace(profile, 64, 60_000, rng)
        geo = geometry(sets=32, assoc=8)
        ratios = {}
        for policy in (ReplacementPolicy.LRU, ReplacementPolicy.FIFO,
                       ReplacementPolicy.RANDOM, ReplacementPolicy.PLRU):
            cache = SetAssociativeCache(
                geo, policy=policy, rng=np.random.default_rng(3)
            )
            cache.access_trace(trace[:15_000])
            cache.reset_stats()
            ratios[policy] = cache.access_trace(trace[15_000:]).miss_ratio
        for policy, ratio in ratios.items():
            assert ratios[ReplacementPolicy.LRU] <= ratio + 0.02, policy

    def test_plru_approximates_lru(self, rng):
        profile = ReuseProfile.single(24 * 1024, compulsory=0.02)
        trace = generate_trace(profile, 64, 60_000, rng)
        geo = geometry(sets=16, assoc=8)
        results = {}
        for policy in (ReplacementPolicy.LRU, ReplacementPolicy.PLRU):
            cache = SetAssociativeCache(geo, policy=policy)
            cache.access_trace(trace[:15_000])
            cache.reset_stats()
            results[policy] = cache.access_trace(trace[15_000:]).miss_ratio
        assert results[ReplacementPolicy.PLRU] == pytest.approx(
            results[ReplacementPolicy.LRU], abs=0.05
        )

    def test_flush_preserves_policy(self):
        cache = build_cache(ReplacementPolicy.FIFO)
        cache.access(1)
        cache.flush()
        assert cache.policy is ReplacementPolicy.FIFO
        assert cache.access(1) is False  # cold again

    @given(
        policy=st.sampled_from(ALL_POLICIES),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_occupancy_bounded(self, policy, seed):
        rng = np.random.default_rng(seed)
        cache = SetAssociativeCache(
            geometry(sets=2, assoc=2), policy=policy, rng=rng
        )
        trace = rng.integers(0, 16, size=300)
        cache.access_trace(trace)
        assert cache.occupancy() <= 4
