"""Shared fixtures for the test suite.

Heavy artifacts (engines, baseline tables, a reduced training dataset) are
session-scoped: collecting them once keeps the several-hundred-test suite
fast while still exercising the real code paths.
"""

from __future__ import annotations

# Imported eagerly on purpose: the hypothesis pytest plugin lazily imports
# `hypothesis` inside pytest_terminal_summary, at the bottom of the pluggy
# call stack, where CPython 3.11's assertion-rewrite ast.parse can fail
# with "SystemError: AST constructor recursion depth mismatch" when the
# selected test files did not already import it.  Importing here keeps the
# rewrite at collection depth, where it always succeeds.
import hypothesis  # noqa: F401
import numpy as np
import pytest

from repro.cache.reuse import ReuseProfile
from repro.harness.baselines import collect_baselines
from repro.harness.collection import collect_training_data
from repro.machine import XEON_E5649, XEON_E5_2697V2
from repro.sim import SimulationEngine
from repro.workloads import all_applications, get_application


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def engine_6core() -> SimulationEngine:
    """Engine for the 6-core Xeon E5649."""
    return SimulationEngine(XEON_E5649)


@pytest.fixture(scope="session")
def engine_12core() -> SimulationEngine:
    """Engine for the 12-core Xeon E5-2697v2."""
    return SimulationEngine(XEON_E5_2697V2)


@pytest.fixture(scope="session")
def baselines_6core(engine_6core):
    """Baseline table for all 11 apps on the 6-core machine."""
    return collect_baselines(engine_6core, all_applications())


@pytest.fixture(scope="session")
def small_dataset(engine_6core, baselines_6core):
    """A reduced-but-real training dataset on the 6-core machine.

    Four targets (one per class), two co-apps, three counts — 144
    observations, still spanning the contention space.
    """
    targets = [get_application(n) for n in ("canneal", "sp", "fluidanimate", "ep")]
    co_apps = [get_application(n) for n in ("cg", "ep")]
    return collect_training_data(
        engine_6core,
        baselines=baselines_6core,
        targets=targets,
        co_apps=co_apps,
        counts=(1, 3, 5),
        rng=np.random.default_rng(11),
    )


@pytest.fixture
def small_profile() -> ReuseProfile:
    """A validation-scale reuse profile (working sets in the tens of KB)."""
    return ReuseProfile.mixture(
        [(16 * 1024, 0.6, 3.0), (96 * 1024, 0.4, 3.0)], compulsory=0.02
    )
