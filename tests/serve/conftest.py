"""Shared fixtures for the serving subsystem tests.

Artifacts are linear models (instant to fit) except where a test needs
neural coverage explicitly; the served contract is identical for both.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import EnsemblePredictor
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind, PerformancePredictor
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="session")
def observations(small_dataset):
    """The reduced training dataset as a plain list."""
    return list(small_dataset)


@pytest.fixture(scope="session")
def point_predictor(observations):
    """A fitted linear point predictor on feature set F."""
    return PerformancePredictor(
        ModelKind.LINEAR, FeatureSet.F, seed=3
    ).fit(observations)


@pytest.fixture(scope="session")
def other_predictor(observations):
    """A second, distinct artifact (different seed => different bytes)."""
    return PerformancePredictor(
        ModelKind.LINEAR, FeatureSet.F, seed=7
    ).fit(observations)


@pytest.fixture(scope="session")
def neural_predictor(observations):
    """A fitted neural predictor (small feature set keeps it fast)."""
    return PerformancePredictor(
        ModelKind.NEURAL, FeatureSet.B, seed=3
    ).fit(observations)


@pytest.fixture(scope="session")
def ensemble(observations):
    """A fitted 3-member linear bootstrap ensemble."""
    return EnsemblePredictor(
        ModelKind.LINEAR, FeatureSet.F, n_members=3, seed=3
    ).fit(observations)


@pytest.fixture(scope="session")
def feature_rows(observations):
    """Feature-set-F rows for the first dozen observations."""
    return np.array(
        [
            [obs.feature_value(f) for f in FeatureSet.F.features]
            for obs in observations[:12]
        ]
    )


@pytest.fixture(scope="session")
def feature_dicts(feature_rows):
    """The same rows as JSON-ready feature dicts."""
    names = [f.value for f in FeatureSet.F.features]
    return [
        {name: float(value) for name, value in zip(names, row)}
        for row in feature_rows
    ]


@pytest.fixture
def registry(tmp_path):
    """A fresh empty registry rooted in the test's tmp dir."""
    return ModelRegistry(tmp_path / "registry")


@pytest.fixture
def populated_registry(registry, point_predictor, ensemble):
    """A registry holding ``point@1`` and ``band@1``."""
    registry.push("point", point_predictor)
    registry.push("band", ensemble)
    return registry
