"""Tests for the versioned on-disk model registry."""

import json

import numpy as np
import pytest

from repro.serve.registry import ModelRegistry, RegistryError


class TestPushAndVersioning:
    def test_first_push_is_version_1(self, registry, point_predictor):
        manifest = registry.push("m6core", point_predictor)
        assert manifest.ref == "m6core@1"
        assert manifest.version == 1

    def test_versions_increment(self, registry, point_predictor):
        assert registry.push("m", point_predictor).version == 1
        assert registry.push("m", point_predictor).version == 2
        assert registry.push("m", point_predictor).version == 3

    def test_latest_tracks_newest(self, registry, point_predictor):
        registry.push("m", point_predictor)
        registry.push("m", point_predictor)
        assert registry.latest("m").version == 2

    def test_manifest_provenance(self, registry, point_predictor):
        manifest = registry.push("m", point_predictor, created_at="2026-08-06T00:00:00+00:00")
        assert manifest.artifact == "predictor"
        assert manifest.kind == "linear"
        assert manifest.feature_set == "F"
        assert manifest.processor_name == point_predictor.processor_name
        assert manifest.train_size == point_predictor.train_size
        assert len(manifest.content_hash) == 64
        assert manifest.created_at == "2026-08-06T00:00:00+00:00"

    def test_push_rejects_versioned_name(self, registry, point_predictor):
        with pytest.raises(RegistryError, match="bare name"):
            registry.push("m@1", point_predictor)

    def test_push_rejects_unfitted(self, registry):
        from repro.core.methodology import PerformancePredictor

        with pytest.raises(RegistryError, match="unfitted"):
            registry.push("m", PerformancePredictor())

    def test_names_and_list_sorted(self, populated_registry):
        assert populated_registry.names() == ["band", "point"]
        refs = [m.ref for m in populated_registry.list()]
        assert refs == ["band@1", "point@1"]


class TestRoundtrip:
    def test_point_predictions_bit_identical(
        self, registry, point_predictor, feature_rows, observations
    ):
        registry.push("m", point_predictor)
        restored, manifest = registry.get("m@1")
        assert manifest.ref == "m@1"
        assert np.array_equal(
            restored.predict_rows(feature_rows),
            point_predictor.predict_rows(feature_rows),
        )
        assert np.array_equal(
            restored.predict_observations(observations),
            point_predictor.predict_observations(observations),
        )

    def test_neural_predictions_bit_identical(
        self, registry, neural_predictor, observations
    ):
        registry.push("nn", neural_predictor)
        restored, _manifest = registry.get("nn")
        assert np.array_equal(
            restored.predict_observations(observations),
            neural_predictor.predict_observations(observations),
        )

    def test_ensemble_roundtrip_bit_identical(
        self, registry, ensemble, feature_rows
    ):
        registry.push("band", ensemble)
        restored, manifest = registry.get("band@1")
        assert manifest.artifact == "ensemble"
        means0, stds0 = ensemble.predict_rows(feature_rows)
        means1, stds1 = restored.predict_rows(feature_rows)
        assert np.array_equal(means0, means1)
        assert np.array_equal(stds0, stds1)

    def test_bare_name_resolves_latest(self, registry, point_predictor, ensemble):
        registry.push("m", point_predictor)
        registry.push("m", ensemble)
        _artifact, manifest = registry.get("m")
        assert manifest.version == 2
        assert manifest.artifact == "ensemble"


class TestFailureModes:
    def test_empty_registry(self, registry):
        with pytest.raises(RegistryError, match="is empty"):
            registry.get("ghost")

    def test_unknown_name_lists_known(self, populated_registry):
        with pytest.raises(RegistryError, match=r"unknown model 'ghost'.*point"):
            populated_registry.get("ghost")

    def test_unknown_version_lists_available(self, populated_registry):
        with pytest.raises(RegistryError, match=r"unknown version 9.*\[1\]"):
            populated_registry.get("point@9")

    def test_bad_name_syntax(self, registry):
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.get("../etc/passwd")

    def test_bad_version_syntax(self, registry):
        with pytest.raises(RegistryError, match="invalid version"):
            registry.get("m@one")

    def test_version_zero_rejected(self, registry):
        with pytest.raises(RegistryError, match="start at 1"):
            registry.get("m@0")

    def test_hash_mismatch_rejected(self, registry, point_predictor):
        manifest = registry.push("m", point_predictor)
        path = registry.root / "m" / "1" / "model.json"
        data = json.loads(path.read_text())
        data["model"]["bias"] = data["model"]["bias"] + 1.0  # tamper
        path.write_text(json.dumps(data, indent=2))
        with pytest.raises(RegistryError, match="content hash mismatch"):
            registry.get(manifest.ref)

    def test_corrupted_payload_rejected(self, registry, point_predictor):
        import hashlib

        registry.push("m", point_predictor)
        path = registry.root / "m" / "1" / "model.json"
        path.write_text("{not json at all")
        # Re-sign the manifest so corruption (not tampering) is what trips.
        manifest_path = registry.root / "m" / "1" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["content_hash"] = hashlib.sha256(path.read_bytes()).hexdigest()
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(RegistryError, match="corrupted payload.*not valid JSON"):
            registry.get("m@1")

    def test_semantically_corrupt_payload_rejected(self, registry, point_predictor):
        import hashlib

        registry.push("m", point_predictor)
        path = registry.root / "m" / "1" / "model.json"
        data = json.loads(path.read_text())
        del data["model"]
        path.write_text(json.dumps(data))
        manifest_path = registry.root / "m" / "1" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["content_hash"] = hashlib.sha256(path.read_bytes()).hexdigest()
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(RegistryError, match="corrupted payload"):
            registry.get("m@1")

    def test_missing_model_payload(self, registry, point_predictor):
        registry.push("m", point_predictor)
        (registry.root / "m" / "1" / "model.json").unlink()
        with pytest.raises(RegistryError, match="missing model payload"):
            registry.get("m@1")

    def test_missing_manifest(self, registry, point_predictor):
        registry.push("m", point_predictor)
        (registry.root / "m" / "1" / "manifest.json").unlink()
        with pytest.raises(RegistryError, match="unknown model|missing manifest"):
            registry.get("m@1")

    def test_manifest_identity_mismatch(self, registry, point_predictor):
        registry.push("m", point_predictor)
        manifest_path = registry.root / "m" / "1" / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data["version"] = 7
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="tampered"):
            registry.get("m@1")

    def test_malformed_manifest(self, registry, point_predictor):
        registry.push("m", point_predictor)
        manifest_path = registry.root / "m" / "1" / "manifest.json"
        manifest_path.write_text(json.dumps({"name": "m"}))
        with pytest.raises(RegistryError, match="malformed manifest"):
            registry.get("m@1")

    def test_missing_root_reads_empty(self, tmp_path):
        registry = ModelRegistry(tmp_path / "nowhere")
        assert registry.list() == []
        assert registry.names() == []
        with pytest.raises(RegistryError, match="is empty"):
            registry.get("m")
