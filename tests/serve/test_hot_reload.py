"""Hot-reload: the server notices new pushes and tombstones, no restart.

A polling task pre-warms newly pushed latest versions into the
resident-model LRU (so the first request after a push pays no artifact
load) and evicts residents whose version was tombstoned.

Also pins the shutdown ordering: a poll in flight when ``stop()`` is
called must finish its current backend call, then *discard* its work —
never install a model or touch the backend again after the drain has
begun (cancelling the task alone leaves its ``asyncio.to_thread`` call
running in an abandoned executor thread).
"""

import threading
import time

import pytest

from repro.serve.client import PredictionClient
from repro.serve.server import ServerThread


def _wait_until(predicate, timeout_s=5.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture
def reloading_server(populated_registry):
    with ServerThread(
        populated_registry, max_wait_ms=1.0, hot_reload_s=0.05
    ) as handle:
        yield handle


@pytest.fixture
def client(reloading_server):
    with PredictionClient("127.0.0.1", reloading_server.port) as c:
        yield c


def _metric(client, name):
    return client.metrics().get(name, 0.0)


class TestPrewarm:
    def test_initial_poll_prewarms_every_model(self, client):
        assert _wait_until(
            lambda: _metric(client, "repro_serve_hot_reload_loads_total")
            >= 2.0
        )
        # Both models are resident before any /v1/predict arrived, so the
        # first prediction is a cache hit, not a miss.
        assert _metric(client, "repro_serve_model_cache_misses_total") == 0.0

    def test_new_push_is_picked_up_without_restart(
        self, client, populated_registry, other_predictor, feature_dicts
    ):
        _wait_until(
            lambda: _metric(client, "repro_serve_hot_reload_loads_total")
            >= 2.0
        )
        populated_registry.push("point", other_predictor)  # point@2
        assert _wait_until(
            lambda: _metric(client, "repro_serve_hot_reload_loads_total")
            >= 3.0
        )
        misses_before = _metric(
            client, "repro_serve_model_cache_misses_total"
        )
        body = client.predict(feature_dicts[0], model="point")
        assert body["model"] == "point@2"
        # The poller already loaded point@2: serving it cost no miss.
        assert (
            _metric(client, "repro_serve_model_cache_misses_total")
            == misses_before
        )


class TestTombstoneEviction:
    def test_tombstoned_resident_is_evicted(
        self, client, populated_registry, feature_dicts
    ):
        _wait_until(
            lambda: _metric(client, "repro_serve_hot_reload_loads_total")
            >= 2.0
        )
        populated_registry.tombstone("band@1", reason="drift")
        assert _wait_until(
            lambda: _metric(
                client, "repro_serve_hot_reload_evictions_total"
            )
            >= 1.0
        )
        # The evicted version is now refused end to end.
        from repro.serve.client import ClientError

        with pytest.raises(ClientError) as excinfo:
            client.predict(feature_dicts[0], model="band@1")
        assert excinfo.value.status == 404
        assert "tombstoned" in str(excinfo.value)

    def test_bare_name_floats_to_surviving_version(
        self, client, populated_registry, other_predictor, feature_dicts
    ):
        # Let the initial prewarm finish first, so point@1 is resident
        # before point@2 supersedes it as the latest.
        assert _wait_until(
            lambda: _metric(client, "repro_serve_hot_reload_loads_total")
            >= 2.0
        )
        populated_registry.push("point", other_predictor)  # point@2
        assert _wait_until(
            lambda: _metric(client, "repro_serve_hot_reload_loads_total")
            >= 3.0
        )
        assert (
            client.predict(feature_dicts[0], model="point")["model"]
            == "point@2"
        )
        populated_registry.tombstone("point@2", reason="rollback")
        assert _wait_until(
            lambda: _metric(
                client, "repro_serve_hot_reload_evictions_total"
            )
            >= 1.0
        )
        body = client.predict(feature_dicts[0], model="point")
        assert body["model"] == "point@1"


class _MidPollBackend:
    """A backend whose first poll call blocks until the test releases it.

    Not a ``ModelRegistry`` subclass, so the server resolves it via
    ``asyncio.to_thread`` — exactly the code path where a cancelled poll
    keeps running in its executor thread.  Both entry points a poll may
    start with are gated (``changed_models`` on the cursor path,
    ``names()`` on the full-scan fallback), and every call after the
    gate opens is recorded, so the test can prove the poll discarded its
    work instead of continuing into ``latest()``/``get()``.
    """

    def __init__(self, inner):
        self._inner = inner
        self.poll_entered = threading.Event()
        self.release_poll = threading.Event()
        self.poll_returned_at = None
        self.calls_after_poll = []

    def _gate(self):
        self.poll_entered.set()
        assert self.release_poll.wait(timeout=10.0)

    def changed_models(self, cursor):
        self._gate()
        result = self._inner.changed_models(cursor)
        self.poll_returned_at = time.monotonic()
        return result

    def names(self):
        self._gate()
        result = self._inner.names()
        self.poll_returned_at = time.monotonic()
        return result

    def latest(self, name):
        self.calls_after_poll.append(("latest", name))
        return self._inner.latest(name)

    def get(self, ref):
        self.calls_after_poll.append(("get", ref))
        return self._inner.get(ref)

    def tombstone_reason(self, name, version):
        self.calls_after_poll.append(("tombstone_reason", name))
        return self._inner.tombstone_reason(name, version)

    def __getattr__(self, attr):
        return getattr(self._inner, attr)


class TestStopDuringPoll:
    def test_stop_waits_for_the_poll_and_discards_its_work(
        self, populated_registry
    ):
        backend = _MidPollBackend(populated_registry)
        handle = ServerThread(
            backend, max_wait_ms=1.0, hot_reload_s=0.05
        ).start()
        server = handle.server
        try:
            # The first poll is now blocked inside its first backend
            # call on the executor thread — stop() begins mid-poll.
            assert backend.poll_entered.wait(timeout=10.0)

            def release_soon():
                time.sleep(0.2)
                backend.release_poll.set()

            releaser = threading.Thread(target=release_soon, daemon=True)
            releaser.start()
            handle.stop()
            stopped_at = time.monotonic()
            releaser.join(timeout=5.0)
        finally:
            backend.release_poll.set()
            handle.stop()
        # stop() waited for the in-flight backend call instead of
        # abandoning it mid-air...
        assert backend.poll_returned_at is not None
        assert stopped_at >= backend.poll_returned_at
        # ...and the poll then discarded its work: no further backend
        # calls, nothing installed into the LRU after the drain began.
        assert backend.calls_after_poll == []
        assert server._resident == {}
        assert server._hot_reload_loads == 0
    def test_polling_disabled_by_default(self, populated_registry):
        with ServerThread(populated_registry, max_wait_ms=1.0) as handle:
            with PredictionClient("127.0.0.1", handle.port) as client:
                time.sleep(0.15)
                assert (
                    _metric(client, "repro_serve_hot_reload_loads_total")
                    == 0.0
                )


class _CursorlessRegistry:
    """A local-store proxy without the change-cursor surface."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, attr):
        if attr in ("changed_models", "change_cursor"):
            raise AttributeError(attr)
        return getattr(self._inner, attr)


class TestChangeCursorPolling:
    """The poller syncs via ``?since=`` — no full listings after sync."""

    def test_remote_polls_issue_zero_full_listings(
        self, populated_registry, other_predictor, tmp_path
    ):
        import asyncio

        from repro.registry import HttpBackend, RegistryServerThread
        from repro.serve.server import PredictionServer

        with RegistryServerThread(populated_registry) as registry_handle:
            backend = HttpBackend(
                f"http://127.0.0.1:{registry_handle.port}",
                tmp_path / "hot-reload-cache",
            )
            server = PredictionServer(backend)

            async def drive():
                await server.hot_reload_once()  # initial sync
                assert {
                    r.manifest.ref for r in server._resident.values()
                } == {"point@1", "band@1"}
                # A quiet store costs exactly one ?since= round-trip.
                before = backend.http_requests
                await server.hot_reload_once()
                assert backend.http_requests == before + 1
                # A push is picked up through the cursor alone.
                populated_registry.push("point", other_predictor)
                await server.hot_reload_once()
                assert "point@2" in {
                    r.manifest.ref for r in server._resident.values()
                }

            asyncio.run(drive())
        assert backend.full_list_requests == 0
        assert server._reload_cursor_supported is True

    def test_cursorless_backend_falls_back_to_full_scan(
        self, populated_registry
    ):
        import asyncio

        from repro.serve.server import PredictionServer

        server = PredictionServer(_CursorlessRegistry(populated_registry))
        asyncio.run(server.hot_reload_once())
        assert server._reload_cursor_supported is False
        assert {r.manifest.ref for r in server._resident.values()} == {
            "point@1",
            "band@1",
        }

    def test_old_server_falls_back_to_full_scan(
        self, populated_registry, tmp_path
    ):
        """An HTTP backend on a cursor-less server: None => full scans."""
        import asyncio

        from repro.registry import HttpBackend, RegistryServerThread
        from repro.serve.server import PredictionServer

        with RegistryServerThread(
            _CursorlessRegistry(populated_registry)
        ) as registry_handle:
            backend = HttpBackend(
                f"http://127.0.0.1:{registry_handle.port}",
                tmp_path / "old-server-cache",
            )
            server = PredictionServer(backend)
            asyncio.run(server.hot_reload_once())
            assert server._reload_cursor_supported is False
            assert backend.full_list_requests >= 1
            assert {r.manifest.ref for r in server._resident.values()} == {
                "point@1",
                "band@1",
            }
