"""The multi-worker serving tier: routing, canary/shadow, merged metrics.

One module-scoped :class:`~repro.serve.router.ServingTier` (two spawned
worker processes behind the router) carries most tests — spawning
interpreters is the expensive part, the assertions are cheap.  The
registry holds two versions each of ``point`` (linear; distinct
artifacts, identical predictions) and ``band`` (ensembles with different
bootstrap seeds, so their predictions genuinely diverge — what the
shadow-divergence histogram must measure).
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.ensemble import EnsemblePredictor
from repro.core.feature_sets import FeatureSet
from repro.core.methodology import ModelKind
from repro.registry.local import ModelRegistry
from repro.serve.client import ClientError, PredictionClient
from repro.serve.router import ServingTier, parse_canary, parse_shadow
from repro.serve.shard import shard_for


@pytest.fixture(scope="module")
def shadow_ensemble(observations):
    """A second ensemble whose bootstrap seed differs from ``ensemble``."""
    return EnsemblePredictor(
        ModelKind.LINEAR, FeatureSet.F, n_members=3, seed=5
    ).fit(observations)


@pytest.fixture(scope="module")
def tier_registry(
    tmp_path_factory, point_predictor, other_predictor, ensemble,
    shadow_ensemble,
):
    """``point@1``/``point@2`` and ``band@1``/``band@2``, dated apart."""
    registry = ModelRegistry(tmp_path_factory.mktemp("tier") / "registry")
    registry.push("point", point_predictor,
                  created_at="2026-01-01T00:00:00+00:00")
    registry.push("point", other_predictor,
                  created_at="2026-01-02T00:00:00+00:00")
    registry.push("band", ensemble, created_at="2026-01-03T00:00:00+00:00")
    registry.push("band", shadow_ensemble,
                  created_at="2026-01-04T00:00:00+00:00")
    return registry


@pytest.fixture(scope="module")
def tier(tier_registry):
    """Two workers; 25% of bare ``point`` canaries to ``point@2``;
    every ``band`` request shadowed against ``band@1``."""
    with ServingTier(
        tier_registry,
        workers=2,
        canary=(parse_canary("point@2:25"),),
        shadow=(parse_shadow("band@1"),),
        max_batch=16,
        max_wait_ms=2.0,
    ) as handle:
        yield handle


@pytest.fixture()
def client(tier):
    with PredictionClient("127.0.0.1", tier.port) as handle:
        yield handle


class TestSpecParsing:
    def test_canary(self):
        spec = parse_canary("band@2:10")
        assert (spec.name, spec.version, spec.fraction) == ("band", 2, 0.10)
        assert spec.ref == "band@2"

    @pytest.mark.parametrize(
        "text", ["band@2", "band:10", "band@2:0", "band@2:101", "band@2:x"]
    )
    def test_canary_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_canary(text)

    def test_shadow(self):
        assert parse_shadow("band@1").ref == "band@1"

    def test_shadow_needs_a_version(self):
        with pytest.raises(ValueError, match="name@version"):
            parse_shadow("band")


class TestRouting:
    def test_predictions_bit_identical_to_the_artifact(
        self, client, feature_dicts, feature_rows, point_predictor
    ):
        # A pinned ref through router -> worker -> micro-batcher must
        # reproduce the artifact's own prediction bit for bit.
        expected = point_predictor.predict_rows(feature_rows[:4])
        body = client.predict_batch(feature_dicts[:4], model="point@1")
        assert body["model"] == "point@1"
        assert body["predictions"] == [float(v) for v in expected]

    def test_single_and_interval_bodies_pass_through(
        self, client, feature_dicts, shadow_ensemble, feature_rows
    ):
        means, stds = shadow_ensemble.predict_rows(feature_rows[0:1])
        body = client.predict(feature_dicts[0], model="band@2", interval=True)
        assert body["prediction"] == float(means[0])
        assert body["std"] == float(stds[0])
        assert body["interval"] == [
            float(means[0] - 2.0 * stds[0]), float(means[0] + 2.0 * stds[0])
        ]

    def test_unknown_model_propagates_the_worker_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.predict({"x": 1.0}, model="nope")
        assert excinfo.value.status == 404

    def test_request_id_echoes_through_the_tier(self, client, feature_dicts):
        client.predict(
            feature_dicts[0], model="point@1", request_id="hop-42"
        )
        assert client.last_request_id == "hop-42"

    def test_healthz_reports_every_worker(self, tier, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert [w["index"] for w in body["workers"]] == [0, 1]
        assert all(w["status"] == "ok" for w in body["workers"])

    def test_models_listing_served_from_the_router(self, client):
        names = {m["name"] for m in client.models()}
        assert names == {"point", "band"}

    def test_machine_metadata_routes_to_newest_compatible(
        self, client, feature_dicts
    ):
        # No "model" in the body: the router resolves the machine to the
        # newest live artifact trained for it (band@2, dated last).
        status, raw = _raw_predict(
            client, {"machine": "Xeon E5649", "features": feature_dicts[0]}
        )
        assert status == 200
        assert json.loads(raw)["model"] == "band@2"

    def test_unknown_machine_is_a_404_naming_known_machines(
        self, client, feature_dicts
    ):
        status, raw = _raw_predict(
            client, {"machine": "PDP-11", "features": feature_dicts[0]}
        )
        assert status == 404
        assert "Xeon E5649" in json.loads(raw)["error"]


def _raw_predict(client: PredictionClient, body: dict) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection(client.host, client.port, timeout=30.0)
    try:
        conn.request(
            "POST", "/v1/predict", body=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestCanary:
    def test_exact_fraction_and_baseline_pin(self, client, feature_dicts):
        # The 25% accumulator takes exactly one request in four — over
        # any 40 consecutive bare-name requests, exactly 10 — and the
        # remainder pins to the newest version older than the canary
        # (point@1), not to the float-to-latest point@2.
        served = [
            client.predict(feature_dicts[0], model="point")["model"]
            for _ in range(40)
        ]
        assert served.count("point@2") == 10
        assert served.count("point@1") == 30

    def test_pinned_requests_are_never_rerouted(self, client, feature_dicts):
        for _ in range(8):
            body = client.predict(feature_dicts[0], model="point@1")
            assert body["model"] == "point@1"


class TestShadow:
    def test_primary_response_is_the_primary_version(
        self, client, feature_dicts, shadow_ensemble, feature_rows
    ):
        means, _stds = shadow_ensemble.predict_rows(feature_rows[0:1])
        body = client.predict(feature_dicts[0], model="band")
        # Bare "band" floats to band@2; the shadow (band@1) never leaks
        # into the client-visible response.
        assert body["model"] == "band@2"
        assert body["prediction"] == float(means[0])

    def test_divergence_visible_in_one_merged_scrape(
        self, client, feature_dicts
    ):
        n = 6
        for i in range(n):
            client.predict(feature_dicts[i], model="band")
        samples = client.metrics()
        sent = samples[
            'repro_serve_shadow_requests_total{model="band",ref="band@1"}'
        ]
        assert sent >= n
        count = samples['repro_serve_shadow_divergence_count{model="band"}']
        assert count >= n
        # Different bootstrap seeds genuinely disagree: the divergence
        # sum is positive and not every observation landed in the
        # bit-identical (le="0.0") bucket.
        assert samples['repro_serve_shadow_divergence_sum{model="band"}'] > 0.0
        identical = samples[
            'repro_serve_shadow_divergence_bucket{le="0.0",model="band"}'
        ]
        assert identical < count
        assert samples['repro_serve_shadow_errors_total{model="band"}'] == 0.0


class TestMergedMetrics:
    def test_one_scrape_aggregates_router_and_workers(
        self, client, feature_dicts
    ):
        for i in range(4):
            client.predict(feature_dicts[i], model="point@1")
        samples = client.metrics()
        # Tier shape.
        assert samples["repro_serve_workers"] == 2.0
        assert samples['repro_serve_worker_up{worker="0"}'] == 1.0
        assert samples['repro_serve_worker_up{worker="1"}'] == 1.0
        # Worker-side serving counters and router-side routing counters
        # arrive in the same exposition.
        worker_ok = samples[
            'repro_serve_requests_total{endpoint="/v1/predict",status="200"}'
        ]
        router_ok = samples[
            'repro_router_requests_total{endpoint="/v1/predict",status="200"}'
        ]
        assert worker_ok >= 4.0
        assert router_ok >= 4.0
        assert samples["repro_serve_predictions_total"] >= 4.0

    def test_all_versions_of_a_name_share_one_shard(self, client, tier):
        # The canary/shadow versions must batch on the same worker as
        # the primary: the shard key is the bare name.
        assert shard_for("band", 2) == shard_for("band", 2)
        samples = client.metrics()
        band_worker = shard_for("band", 2)
        for version in (1, 2):
            key = f'repro_serve_batcher_backlog{{model="band@{version}"}}'
            if key in samples:  # resident on exactly the shard's worker
                assert tier.workers[band_worker].alive


class TestBackpressurePassthrough:
    def test_429_and_retry_after_cross_the_router(
        self, tier_registry, feature_dicts
    ):
        with ServingTier(
            tier_registry,
            workers=1,
            max_batch=64,
            max_wait_ms=100.0,
            max_backlog=2,
        ) as tight:
            conn = http.client.HTTPConnection(
                "127.0.0.1", tight.port, timeout=30.0
            )
            try:
                conn.request(
                    "POST",
                    "/v1/predict",
                    body=json.dumps(
                        {"model": "point", "instances": feature_dicts[:6]}
                    ).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 429
                assert response.getheader("Retry-After") == "1"
                assert b"backlog full" in response.read()
            finally:
                conn.close()
        assert tight.worker_exitcodes == [0]
