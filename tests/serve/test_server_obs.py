"""Observability on the serving request path.

Covers the :mod:`repro.obs` integration the server threads through:
``X-Request-Id`` accept/echo, per-phase latency metrics, the batcher
backlog gauge and shed counter, the merged three-source ``/metrics``
scrape, and ``serve.request`` spans when tracing is enabled.
"""

import pytest

from repro.obs.trace import disable, enable
from repro.serve.client import PredictionClient
from repro.serve.server import ServerThread, _header_safe


@pytest.fixture
def server(populated_registry):
    with ServerThread(populated_registry, max_batch=8, max_wait_ms=1.0) as handle:
        yield handle


@pytest.fixture
def client(server):
    with PredictionClient("127.0.0.1", server.port) as c:
        yield c


class TestRequestId:
    def test_client_id_echoed(self, client, feature_dicts):
        client.predict(feature_dicts[0], model="point", request_id="req-abc-123")
        assert client.last_request_id == "req-abc-123"

    def test_server_mints_when_absent(self, client, feature_dicts):
        client.predict(feature_dicts[0], model="point")
        first = client.last_request_id
        client.predict(feature_dicts[0], model="point")
        second = client.last_request_id
        assert first and second and first != second
        int(first, 16)  # server-minted ids are hex

    def test_echoed_on_every_endpoint(self, client):
        client._json("GET", "/healthz", headers={"X-Request-Id": "health-1"})
        assert client.last_request_id == "health-1"

    def test_header_safe_sanitizes(self):
        assert _header_safe("plain-id-42") == "plain-id-42"
        assert _header_safe("evil\r\nInjected: yes") == "evilInjected: yes"
        assert _header_safe("\r\n\x00") == "invalid"
        assert len(_header_safe("x" * 500)) == 128


class TestPhaseMetrics:
    def test_all_four_phases_recorded(self, client, feature_dicts):
        client.predict_batch(feature_dicts[:4], model="point")
        samples = client.metrics()
        for phase in ("queue", "batch_wait", "predict", "serialize"):
            key = f'repro_serve_phase_latency_seconds_count{{phase="{phase}"}}'
            assert samples[key] >= 1.0, f"phase {phase} never observed"

    def test_batch_wait_counts_rows_predict_counts_flushes(
        self, client, feature_dicts
    ):
        client.predict_batch(feature_dicts[:5], model="point")
        samples = client.metrics()
        waits = samples['repro_serve_phase_latency_seconds_count{phase="batch_wait"}']
        predicts = samples['repro_serve_phase_latency_seconds_count{phase="predict"}']
        assert waits >= 5.0       # one observation per queued row
        assert predicts < waits   # one observation per vectorized flush


class TestBatcherMetrics:
    def test_backlog_gauge_per_resident_model(self, client, feature_dicts):
        client.predict(feature_dicts[0], model="point")
        client.predict(feature_dicts[0], model="band")
        samples = client.metrics()
        assert samples['repro_serve_batcher_backlog{model="point@1"}'] == 0.0
        assert samples['repro_serve_batcher_backlog{model="band@1"}'] == 0.0

    def test_shed_counter_exported_and_zero(self, client, feature_dicts):
        client.predict(feature_dicts[0], model="point")
        assert client.metrics()["repro_serve_shed_total"] == 0.0


class TestMergedScrape:
    def test_single_scrape_covers_all_three_sources(self, client, feature_dicts):
        client.predict(feature_dicts[0], model="point")
        text = client.metrics_text()
        assert "repro_engine_solves_total" in text   # simulation source
        assert "repro_fit_fits_total" in text        # fitting source
        samples = client.metrics()
        assert (
            samples['repro_serve_requests_total{endpoint="/v1/predict",status="200"}']
            >= 1.0
        )

    def test_servers_keep_private_registries(self, populated_registry):
        with ServerThread(populated_registry) as a, ServerThread(
            populated_registry
        ) as b:
            assert a.server.obs_registry is not b.server.obs_registry


class TestRequestSpans:
    def test_request_span_carries_id_and_children(self, client, feature_dicts):
        tracer = enable(service="test-serve")
        try:
            client.predict(
                feature_dicts[0], model="point", request_id="traced-req-7"
            )
            spans = tracer.spans()
        finally:
            disable()
        (request,) = [
            s for s in spans
            if s.name == "serve.request"
            and s.attributes.get("request_id") == "traced-req-7"
        ]
        assert request.attributes["endpoint"] == "/v1/predict"
        assert request.attributes["status"] == 200
        children = [s for s in spans if s.parent_id == request.span_id]
        assert "serve.batch_wait" in {s.name for s in children}
        predicts = [
            s for s in spans
            if s.name == "serve.predict" and s.trace_id == request.trace_id
        ]
        assert predicts and predicts[0].attributes["batch_size"] >= 1
