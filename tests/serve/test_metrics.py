"""Tests for serving metrics and the Prometheus exposition."""

import math

import pytest

from repro.serve.metrics import LatencyHistogram, ServingMetrics


class TestLatencyHistogram:
    def test_counts_and_mean(self):
        hist = LatencyHistogram()
        for v in (0.001, 0.002, 0.003):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(0.006)
        assert hist.mean == pytest.approx(0.002)

    def test_empty_percentile_is_nan(self):
        assert math.isnan(LatencyHistogram().percentile(50))

    def test_percentile_bounds(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            LatencyHistogram().percentile(101)

    def test_nearest_rank_percentiles(self):
        hist = LatencyHistogram()
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(100) == 100.0

    def test_bucketing(self):
        hist = LatencyHistogram(buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            hist.observe(v)
        assert hist.bucket_counts == [2, 1, 1]  # <=1, <=10, overflow

    def test_merge_requires_same_buckets(self):
        with pytest.raises(ValueError, match="different buckets"):
            LatencyHistogram(buckets=(1.0,)).merge(LatencyHistogram(buckets=(2.0,)))

    def test_merge_accumulates(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.001)
        b.observe(0.002)
        a.merge(b)
        assert a.count == 2
        assert a.percentile(100) == 0.002

    def test_reset(self):
        hist = LatencyHistogram()
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0
        assert math.isnan(hist.percentile(50))

    def test_sample_window_caps_memory(self):
        hist = LatencyHistogram(max_samples=10)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100          # counters stay exact
        assert len(hist._samples) == 10   # window capped
        assert hist.percentile(100) == 99.0  # recent values retained


class TestServingMetrics:
    def test_request_accounting(self):
        metrics = ServingMetrics()
        metrics.record_request("/v1/predict", 200, 0.001)
        metrics.record_request("/v1/predict", 200, 0.002)
        metrics.record_request("/healthz", 200, 0.0005)
        metrics.record_request("/v1/predict", 400, 0.0001)
        assert metrics.requests_total[("/v1/predict", 200)] == 2
        assert metrics.request_count == 4
        assert metrics.latency.count == 4

    def test_error_and_prediction_counters(self):
        metrics = ServingMetrics()
        metrics.record_error("bad_request")
        metrics.record_error("bad_request")
        metrics.record_predictions(5)
        assert metrics.errors_total == {"bad_request": 2}
        assert metrics.predictions_total == 5

    def test_model_cache_hit_rate(self):
        metrics = ServingMetrics()
        assert metrics.model_cache_hit_rate == 0.0
        metrics.record_model_cache(hit=False)
        metrics.record_model_cache(hit=True)
        metrics.record_model_cache(hit=True)
        assert metrics.model_cache_hit_rate == pytest.approx(2 / 3)

    def test_merge(self):
        a, b = ServingMetrics(), ServingMetrics()
        a.record_request("/v1/predict", 200, 0.001)
        b.record_request("/v1/predict", 200, 0.002)
        b.record_error("internal")
        b.record_batch(4)
        a.merge(b)
        assert a.requests_total[("/v1/predict", 200)] == 2
        assert a.errors_total == {"internal": 1}
        assert a.batch_sizes.count == 1

    def test_reset(self):
        metrics = ServingMetrics()
        metrics.record_request("/v1/predict", 200, 0.001)
        metrics.record_batch(2)
        metrics.reset()
        assert metrics.request_count == 0
        assert metrics.batch_sizes.count == 0


class TestPrometheusRendering:
    @pytest.fixture
    def rendered(self):
        metrics = ServingMetrics()
        for _ in range(3):
            metrics.record_request("/v1/predict", 200, 0.002)
        metrics.record_request("/v1/predict", 404, 0.0001)
        metrics.record_error("unknown_model")
        metrics.record_predictions(3)
        metrics.record_model_cache(hit=False)
        metrics.record_model_cache(hit=True)
        metrics.record_batch(1)
        metrics.record_batch(3)
        return metrics.render_prometheus()

    def test_counter_lines(self, rendered):
        assert (
            'repro_serve_requests_total{endpoint="/v1/predict",status="200"} 3'
            in rendered
        )
        assert (
            'repro_serve_requests_total{endpoint="/v1/predict",status="404"} 1'
            in rendered
        )
        assert 'repro_serve_errors_total{reason="unknown_model"} 1' in rendered
        assert "repro_serve_predictions_total 3" in rendered
        assert "repro_serve_model_cache_hits_total 1" in rendered
        assert "repro_serve_model_cache_misses_total 1" in rendered

    def test_help_and_type_comments(self, rendered):
        assert "# TYPE repro_serve_requests_total counter" in rendered
        assert "# TYPE repro_serve_request_latency_seconds histogram" in rendered

    def test_histogram_buckets_cumulative(self, rendered):
        assert 'repro_serve_request_latency_seconds_bucket{le="+Inf"} 4' in rendered
        assert "repro_serve_request_latency_seconds_count 4" in rendered
        # Batch-size histogram: both flushes land at or below the le=4 bound.
        assert 'repro_serve_batch_size_bucket{le="4.0"} 2' in rendered
        assert "repro_serve_batch_size_count 2" in rendered

    def test_quantile_gauges_present(self, rendered):
        for line in rendered.splitlines():
            if line.startswith("repro_serve_request_latency_seconds_p50"):
                assert float(line.split()[-1]) == pytest.approx(0.002)
                break
        else:
            raise AssertionError("no p50 gauge rendered")
        assert "repro_serve_request_latency_seconds_p95" in rendered
        assert "repro_serve_request_latency_seconds_p99" in rendered

    def test_every_sample_line_parses(self, rendered):
        for line in rendered.splitlines():
            if not line or line.startswith("#"):
                continue
            name_and_labels, _sep, value = line.rpartition(" ")
            assert name_and_labels
            float(value)  # must parse

    def test_summary_mentions_key_figures(self):
        metrics = ServingMetrics()
        metrics.record_request("/v1/predict", 200, 0.001)
        metrics.record_predictions(1)
        metrics.record_batch(1)
        text = metrics.summary()
        assert "1 requests" in text
        assert "1 predictions" in text
        assert "p95" in text
