"""Consistent sharding: determinism, coverage, and minimal remapping.

The router relies on three properties of the rendezvous assignment: any
process computes the identical map from ``(name, n_workers)`` alone,
every worker actually receives a share of a realistic name population,
and growing the tier moves only the names won by the new worker.
"""

import pytest

from repro.serve.shard import ShardMap, shard_for

NAMES = [f"model-{i}" for i in range(200)]


class TestShardFor:
    def test_deterministic(self):
        for name in ("point", "band", "canneal-e5649"):
            assert shard_for(name, 4) == shard_for(name, 4)

    def test_single_worker_owns_everything(self):
        assert all(shard_for(name, 1) == 0 for name in NAMES)

    def test_in_range(self):
        for n_workers in (2, 3, 4, 7):
            for name in NAMES:
                assert 0 <= shard_for(name, n_workers) < n_workers

    def test_rejects_empty_tier(self):
        with pytest.raises(ValueError, match="at least 1 worker"):
            shard_for("point", 0)

    def test_every_worker_gets_a_share(self):
        # 200 names over 4 workers: rendezvous hashing spreads close to
        # uniformly; no worker should be starved or dominant.
        counts = [0, 0, 0, 0]
        for name in NAMES:
            counts[shard_for(name, 4)] += 1
        assert min(counts) >= len(NAMES) // 10
        assert max(counts) <= len(NAMES) // 2

    def test_growth_only_moves_names_to_the_new_worker(self):
        # n -> n+1: a name either keeps its worker or moves to the new
        # one (the defining rendezvous property); roughly 1/(n+1) move.
        moved = 0
        for name in NAMES:
            before, after = shard_for(name, 4), shard_for(name, 5)
            if before != after:
                assert after == 4
                moved += 1
        assert 0 < moved < len(NAMES) // 2


class TestShardMap:
    def test_matches_the_function(self):
        shard_map = ShardMap(4)
        for name in NAMES:
            assert shard_map.worker_for(name) == shard_for(name, 4)

    def test_memo_is_stable(self):
        shard_map = ShardMap(4)
        first = shard_map.assignment(NAMES)
        assert shard_map.assignment(NAMES) == first

    def test_names_on_partitions_the_namespace(self):
        shard_map = ShardMap(3)
        shards = [shard_map.names_on(w, NAMES) for w in range(3)]
        assert sorted(n for shard in shards for n in shard) == sorted(NAMES)

    def test_rejects_empty_tier(self):
        with pytest.raises(ValueError, match="at least 1 worker"):
            ShardMap(0)
