"""Regression tests for the client's label-aware Prometheus parser.

The historical parser split each sample on the last space and kept the
raw label block as part of the key, so label values containing commas,
``=``, or escaped quotes were mis-keyed (or collided).  These tests pin
the label-aware replacement: values round-trip through exposition
escaping, and keys are canonical (labels sorted, values re-escaped) no
matter how the server ordered them.
"""

import pytest

from repro.serve.client import parse_prometheus


class TestPlainSamples:
    def test_unlabelled_sample(self):
        assert parse_prometheus("up 1\n") == {"up": 1.0}

    def test_comments_and_blanks_skipped(self):
        text = "# HELP up Up.\n# TYPE up gauge\n\nup 1\n"
        assert parse_prometheus(text) == {"up": 1.0}

    def test_timestamped_sample_uses_value(self):
        # Exposition lines may carry a trailing timestamp field.
        assert parse_prometheus("up 0.5 1395066363000") == {"up": 0.5}

    def test_special_values(self):
        samples = parse_prometheus("a NaN\nb +Inf\nc -Inf\n")
        assert samples["a"] != samples["a"]  # NaN
        assert samples["b"] == float("inf")
        assert samples["c"] == float("-inf")

    def test_malformed_lines_skipped(self):
        text = "ok 1\nnot-a-number x\n{orphan=\"v\"} 2\nbroken{open=\"v\" 3\n"
        assert parse_prometheus(text) == {"ok": 1.0}


class TestLabelledSamples:
    def test_simple_labels(self):
        samples = parse_prometheus('requests{endpoint="/v1/predict",status="200"} 7')
        assert samples == {'requests{endpoint="/v1/predict",status="200"}': 7.0}

    def test_label_value_with_commas(self):
        samples = parse_prometheus('m{apps="cg,lu,mg"} 3')
        assert samples == {'m{apps="cg,lu,mg"}': 3.0}

    def test_label_value_with_equals(self):
        samples = parse_prometheus('m{expr="a=b=c"} 1')
        assert samples == {'m{expr="a=b=c"}': 1.0}

    def test_label_value_with_escaped_quotes(self):
        samples = parse_prometheus('m{q="say \\"hi\\""} 2')
        assert samples == {'m{q="say \\"hi\\""}': 2.0}

    def test_label_value_with_escaped_backslash_and_newline(self):
        samples = parse_prometheus('m{path="C:\\\\tmp",text="a\\nb"} 4')
        assert samples == {'m{path="C:\\\\tmp",text="a\\nb"}': 4.0}

    def test_label_value_containing_closing_brace(self):
        samples = parse_prometheus('m{v="x} y"} 5')
        assert samples == {'m{v="x} y"}': 5.0}

    def test_keys_are_canonical_sorted(self):
        # However the server orders labels, lookups use one canonical key.
        out_of_order = parse_prometheus('m{zeta="1",alpha="2"} 9')
        in_order = parse_prometheus('m{alpha="2",zeta="1"} 9')
        assert out_of_order == in_order == {'m{alpha="2",zeta="1"}': 9.0}

    def test_histogram_le_labels(self):
        text = (
            'lat_bucket{phase="queue",le="0.001"} 3\n'
            'lat_bucket{phase="queue",le="+Inf"} 5\n'
            'lat_count{phase="queue"} 5\n'
        )
        samples = parse_prometheus(text)
        assert samples['lat_bucket{le="0.001",phase="queue"}'] == 3.0
        assert samples['lat_bucket{le="+Inf",phase="queue"}'] == 5.0
        assert samples['lat_count{phase="queue"}'] == 5.0

    def test_spaces_around_label_parts(self):
        samples = parse_prometheus('m{ a = "1" , b = "2" } 6')
        assert samples == {'m{a="1",b="2"}': 6.0}


class TestAgainstRealExposition:
    def test_round_trip_with_serving_metrics(self):
        from repro.serve.metrics import ServingMetrics

        metrics = ServingMetrics()
        metrics.record_request("/v1/predict", 200, 0.004)
        metrics.record_phase("batch_wait", 0.001)
        samples = parse_prometheus(metrics.render_prometheus())
        assert (
            samples['repro_serve_requests_total{endpoint="/v1/predict",status="200"}']
            == 1.0
        )
        assert (
            samples['repro_serve_phase_latency_seconds_count{phase="batch_wait"}']
            == 1.0
        )
