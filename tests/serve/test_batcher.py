"""Tests for the micro-batching queue.

The load-bearing property is the last test class: coalescing must change
throughput, never results — batched predictions are compared to serial
ones with exact float equality, like PR 1's serial==parallel test.
"""

import asyncio

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher


def _echo_sum(X: np.ndarray) -> np.ndarray:
    """A deterministic stand-in predict function."""
    return X.sum(axis=1)


class TestValidation:
    def test_max_batch_floor(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(_echo_sum, max_batch=0)

    def test_negative_wait(self):
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(_echo_sum, max_wait_ms=-1.0)

    def test_rejects_matrix_submit(self):
        async def run():
            batcher = MicroBatcher(_echo_sum, max_batch=4)
            with pytest.raises(ValueError, match="1-D feature row"):
                await batcher.submit(np.ones((2, 3)))

        asyncio.run(run())


class TestCoalescing:
    def test_concurrent_submits_share_one_flush(self):
        sizes = []

        async def run():
            batcher = MicroBatcher(
                lambda X: (sizes.append(X.shape[0]) or _echo_sum(X)),
                max_batch=64,
                max_wait_ms=5.0,
            )
            rows = [np.array([float(i), 1.0]) for i in range(10)]
            return await asyncio.gather(*(batcher.submit(r) for r in rows))

        results = asyncio.run(run())
        assert sizes == [10]  # one deadline flush carried all ten rows
        assert results == [float(i) + 1.0 for i in range(10)]

    def test_max_batch_triggers_size_flush(self):
        async def run():
            batcher = MicroBatcher(_echo_sum, max_batch=4, max_wait_ms=60_000.0)
            rows = [np.array([float(i)]) for i in range(8)]
            await asyncio.gather(*(batcher.submit(r) for r in rows))
            return batcher.stats

        stats = asyncio.run(run())
        # A 1-minute deadline can't have fired: both flushes were size-driven.
        assert stats.size_flushes == 2
        assert stats.deadline_flushes == 0
        assert stats.rows == 8
        assert stats.mean_batch_size == 4.0

    def test_deadline_flushes_partial_batch(self):
        async def run():
            batcher = MicroBatcher(_echo_sum, max_batch=64, max_wait_ms=1.0)
            result = await batcher.submit(np.array([2.0, 3.0]))
            return result, batcher.stats

        result, stats = asyncio.run(run())
        assert result == 5.0
        assert stats.deadline_flushes == 1
        assert stats.flush_reasons == {"deadline": 1}

    def test_max_batch_one_disables_coalescing(self):
        sizes = []

        async def run():
            batcher = MicroBatcher(
                lambda X: (sizes.append(X.shape[0]) or _echo_sum(X)),
                max_batch=1,
            )
            rows = [np.array([float(i)]) for i in range(5)]
            return await asyncio.gather(*(batcher.submit(r) for r in rows))

        asyncio.run(run())
        assert sizes == [1, 1, 1, 1, 1]

    def test_tuple_results_fan_out_per_row(self):
        async def run():
            batcher = MicroBatcher(
                lambda X: (X.sum(axis=1), X.prod(axis=1)),
                max_batch=4,
                max_wait_ms=1.0,
            )
            rows = [np.array([2.0, float(i)]) for i in range(4)]
            return await asyncio.gather(*(batcher.submit(r) for r in rows))

        results = asyncio.run(run())
        assert results == [(2.0 + i, 2.0 * i) for i in range(4)]

    def test_drain_flushes_pending(self):
        async def run():
            batcher = MicroBatcher(_echo_sum, max_batch=64, max_wait_ms=60_000.0)
            task = asyncio.ensure_future(batcher.submit(np.array([1.0, 2.0])))
            await asyncio.sleep(0)  # let the submit queue itself
            assert batcher.pending == 1
            await batcher.drain()
            assert batcher.pending == 0
            return await task, batcher.stats

        result, stats = asyncio.run(run())
        assert result == 3.0
        assert stats.drain_flushes == 1


class TestErrorPropagation:
    def test_predict_failure_reaches_every_awaiter(self):
        def explode(_X):
            raise RuntimeError("model melted")

        async def run():
            batcher = MicroBatcher(explode, max_batch=3, max_wait_ms=1.0)
            rows = [np.array([1.0]) for _ in range(3)]
            return await asyncio.gather(
                *(batcher.submit(r) for r in rows), return_exceptions=True
            )

        results = asyncio.run(run())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_failure_does_not_poison_next_batch(self):
        calls = []

        def flaky(X):
            calls.append(X.shape[0])
            if len(calls) == 1:
                raise RuntimeError("transient")
            return _echo_sum(X)

        async def run():
            batcher = MicroBatcher(flaky, max_batch=1)
            with pytest.raises(RuntimeError):
                await batcher.submit(np.array([1.0]))
            return await batcher.submit(np.array([4.0, 5.0]))

        assert asyncio.run(run()) == 9.0


class TestBatchedEqualsSerial:
    """Micro-batching must never change a prediction's bits."""

    def _serve(self, predictor, rows, max_batch):
        async def run():
            batcher = MicroBatcher(
                predictor.predict_rows, max_batch=max_batch, max_wait_ms=1.0
            )
            return await asyncio.gather(*(batcher.submit(r) for r in rows))

        return asyncio.run(run())

    @pytest.mark.parametrize("fixture", ["point_predictor", "neural_predictor"])
    def test_point_predictor_exact(self, request, fixture, feature_rows, observations):
        predictor = request.getfixturevalue(fixture)
        if fixture == "neural_predictor":
            from repro.core.feature_sets import FeatureSet

            rows = np.array(
                [
                    [obs.feature_value(f) for f in FeatureSet.B.features]
                    for obs in observations[:12]
                ]
            )
        else:
            rows = feature_rows
        serial = self._serve(predictor, list(rows), max_batch=1)
        batched = self._serve(predictor, list(rows), max_batch=len(rows))
        assert serial == batched  # exact float equality, not approx
        # And both equal the direct one-row calls.
        direct = [float(predictor.predict_rows(r[None, :])[0]) for r in rows]
        assert serial == direct

    def test_ensemble_exact(self, ensemble, feature_rows):
        serial = self._serve(ensemble, list(feature_rows), max_batch=1)
        batched = self._serve(ensemble, list(feature_rows), max_batch=len(feature_rows))
        assert serial == batched
        means, stds = ensemble.predict_rows(feature_rows)
        assert serial == [(float(m), float(s)) for m, s in zip(means, stds)]

    def test_mixed_batch_sizes_exact(self, point_predictor, feature_rows):
        """Odd flush boundaries (size 5 over 12 rows) change nothing."""
        chunked = self._serve(point_predictor, list(feature_rows), max_batch=5)
        serial = self._serve(point_predictor, list(feature_rows), max_batch=1)
        assert chunked == serial
