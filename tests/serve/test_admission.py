"""Admission control: bounded backlog, 429 + Retry-After, shed metrics.

An overloaded server must refuse quickly instead of queueing without
bound.  ``MicroBatcher(max_backlog=...)`` rejects rows once the pending
queue is full; the server maps the rejection to ``429 Too Many
Requests`` with a ``Retry-After`` hint and counts every shed row into
``repro_serve_shed_total``.
"""

import asyncio
import http.client
import json

import numpy as np
import pytest

from repro.serve.batcher import BacklogFullError, MicroBatcher
from repro.serve.client import ClientError, PredictionClient
from repro.serve.server import ServerThread


def _echo_sum(X: np.ndarray) -> np.ndarray:
    return X.sum(axis=1)


class TestBatcherBackpressure:
    def test_backlog_floor(self):
        with pytest.raises(ValueError, match="max_backlog"):
            MicroBatcher(_echo_sum, max_backlog=0)

    def test_unbounded_by_default(self):
        batcher = MicroBatcher(_echo_sum)
        assert batcher.max_backlog is None

    def test_overflow_rows_are_shed(self):
        async def run():
            # A one-minute deadline and a huge max_batch mean nothing
            # flushes while the submits pile up, so the fourth and fifth
            # rows deterministically find a full backlog.
            batcher = MicroBatcher(
                _echo_sum, max_batch=64, max_wait_ms=60_000.0, max_backlog=3
            )
            rows = [np.array([float(i)]) for i in range(5)]
            gathered = asyncio.gather(
                *(batcher.submit(r) for r in rows), return_exceptions=True
            )
            await asyncio.sleep(0)  # every submit queues or is rejected
            await batcher.drain()   # resolve the queued rows now
            return await gathered, batcher.stats

        results, stats = asyncio.run(run())
        rejected = [r for r in results if isinstance(r, BacklogFullError)]
        accepted = [r for r in results if isinstance(r, float)]
        assert len(rejected) == 2
        assert len(accepted) == 3
        assert stats.shed == 2
        assert stats.rows == 3  # shed rows never reach a flush

    def test_rejection_names_the_limit_and_retry(self):
        async def run():
            batcher = MicroBatcher(
                _echo_sum, max_batch=64, max_wait_ms=60_000.0, max_backlog=1
            )
            queued = asyncio.ensure_future(batcher.submit(np.array([1.0])))
            await asyncio.sleep(0)
            with pytest.raises(BacklogFullError) as excinfo:
                await batcher.submit(np.array([2.0]))
            await batcher.drain()
            await queued
            return excinfo.value

        exc = asyncio.run(run())
        assert "max_backlog=1" in str(exc)
        # retry hint is the drain horizon: the oldest queued row flushes
        # within max_wait_ms, so ceil(max_wait_ms / 1000) — exactly 60
        # for a one-minute deadline, not 61 (the old formula over-backed
        # clients off by a second per retry).
        assert exc.retry_after_s == 60

    @pytest.mark.parametrize(
        ("max_wait_ms", "expected_s"),
        [
            (0.0, 1),        # immediate flushes still need a whole second
            (100.0, 1),      # sub-second horizons round up to the floor
            (1000.0, 1),     # exactly one second stays one second
            (1500.0, 2),     # fractional seconds round up, never down
            (60_000.0, 60),  # whole minutes don't gain a spurious +1
        ],
    )
    def test_retry_after_is_the_ceil_of_the_drain_horizon(
        self, max_wait_ms, expected_s
    ):
        async def run():
            batcher = MicroBatcher(
                _echo_sum,
                max_batch=64,
                max_wait_ms=max_wait_ms,
                max_backlog=1,
            )
            queued = asyncio.ensure_future(batcher.submit(np.array([1.0])))
            await asyncio.sleep(0)
            with pytest.raises(BacklogFullError) as excinfo:
                await batcher.submit(np.array([2.0]))
            await batcher.drain()
            await queued
            return excinfo.value

        assert asyncio.run(run()).retry_after_s == expected_s


@pytest.fixture
def tight_server(populated_registry):
    """A server whose per-model backlog holds only two pending rows."""
    with ServerThread(
        populated_registry,
        max_batch=64,
        max_wait_ms=100.0,
        max_backlog=2,
    ) as handle:
        yield handle


class TestServer429:
    def test_oversized_batch_is_shed(self, tight_server, feature_dicts):
        # Five rows hit a two-row backlog; max_batch is far away, so the
        # overflow rows are rejected the moment they arrive.
        with PredictionClient("127.0.0.1", tight_server.port) as client:
            with pytest.raises(ClientError) as excinfo:
                client.predict_batch(feature_dicts[:5], model="point")
            assert excinfo.value.status == 429
            assert "backlog full" in str(excinfo.value)
            assert "max_backlog=2" in str(excinfo.value)

    def test_retry_after_header(self, tight_server, feature_dicts):
        conn = http.client.HTTPConnection(
            "127.0.0.1", tight_server.port, timeout=30.0
        )
        try:
            conn.request(
                "POST",
                "/v1/predict",
                body=json.dumps(
                    {"model": "point", "instances": feature_dicts[:5]}
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 429
            # max_wait_ms=100 -> the backlog drains within a second.
            assert response.getheader("Retry-After") == "1"
            response.read()
        finally:
            conn.close()

    def test_shed_rows_reach_the_metrics(self, tight_server, feature_dicts):
        with PredictionClient("127.0.0.1", tight_server.port) as client:
            with pytest.raises(ClientError):
                client.predict_batch(feature_dicts[:6], model="point")
            samples = client.metrics()
            assert samples["repro_serve_shed_total"] >= 1.0
            assert (
                samples['repro_serve_errors_total{reason="backlog_full"}']
                >= 1.0
            )
            assert (
                samples['repro_serve_requests_total{endpoint="/v1/predict",status="429"}']
                >= 1.0
            )

    def test_within_budget_requests_still_served(
        self, tight_server, feature_dicts, point_predictor, feature_rows
    ):
        with PredictionClient("127.0.0.1", tight_server.port) as client:
            body = client.predict(feature_dicts[0], model="point")
            expected = float(point_predictor.predict_rows(feature_rows[0:1])[0])
            assert body["prediction"] == expected
