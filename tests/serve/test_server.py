"""End-to-end tests: HTTP server + blocking client against a registry.

A real server runs on a background event loop (:class:`ServerThread`);
the blocking client talks to it over loopback TCP exactly as a resource
manager sidecar would.
"""

import concurrent.futures
import threading

import numpy as np
import pytest

from repro.serve.client import ClientError, PredictionClient
from repro.serve.server import PredictionServer, ServerThread


@pytest.fixture
def server(populated_registry):
    with ServerThread(populated_registry, max_batch=8, max_wait_ms=1.0) as handle:
        yield handle


@pytest.fixture
def client(server):
    with PredictionClient("127.0.0.1", server.port) as c:
        yield c


class TestBasicEndpoints:
    def test_healthz(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["models"] == 2

    def test_models_lists_manifests(self, client):
        models = client.models()
        refs = [f"{m['name']}@{m['version']}" for m in models]
        assert refs == ["band@1", "point@1"]
        assert {m["artifact"] for m in models} == {"ensemble", "predictor"}
        assert all(len(m["content_hash"]) == 64 for m in models)

    def test_unknown_path_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client._json("GET", "/v2/everything")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ClientError) as excinfo:
            client._json("POST", "/healthz", {})
        assert excinfo.value.status == 405

    def test_keep_alive_reuses_connection(self, client):
        client.healthz()
        conn = client._conn
        client.healthz()
        assert client._conn is conn


class TestPredict:
    def test_single_matches_in_memory_exactly(
        self, client, point_predictor, feature_dicts, feature_rows
    ):
        body = client.predict(feature_dicts[0], model="point")
        assert body["model"] == "point@1"
        expected = float(point_predictor.predict_rows(feature_rows[0:1])[0])
        assert body["prediction"] == expected  # bit-identical via JSON floats

    def test_batch_matches_in_memory_exactly(
        self, client, point_predictor, feature_dicts, feature_rows
    ):
        body = client.predict_batch(feature_dicts, model="point@1")
        expected = point_predictor.predict_rows(feature_rows)
        assert body["predictions"] == [float(v) for v in expected]

    def test_interval_from_ensemble(
        self, client, ensemble, feature_dicts, feature_rows
    ):
        body = client.predict(feature_dicts[0], model="band", interval=True)
        means, stds = ensemble.predict_rows(feature_rows[0:1])
        assert body["prediction"] == float(means[0])
        assert body["std"] == float(stds[0])
        lo, hi = body["interval"]
        assert lo == pytest.approx(float(means[0]) - 2.0 * float(stds[0]))
        assert hi == pytest.approx(float(means[0]) + 2.0 * float(stds[0]))

    def test_batch_interval(self, client, ensemble, feature_dicts, feature_rows):
        body = client.predict_batch(
            feature_dicts[:4], model="band@1", interval=True
        )
        means, stds = ensemble.predict_rows(feature_rows[:4])
        assert body["predictions"] == [float(v) for v in means]
        assert body["stds"] == [float(v) for v in stds]
        assert len(body["intervals"]) == 4

    def test_ensemble_without_interval_returns_means(
        self, client, ensemble, feature_dicts, feature_rows
    ):
        body = client.predict(feature_dicts[0], model="band")
        means, _stds = ensemble.predict_rows(feature_rows[0:1])
        assert body["prediction"] == float(means[0])
        assert "std" not in body

    def test_interval_on_point_predictor_400(self, client, feature_dicts):
        with pytest.raises(ClientError) as excinfo:
            client.predict(feature_dicts[0], model="point", interval=True)
        assert excinfo.value.status == 400
        assert "ensemble" in excinfo.value.message


class TestPredictValidation:
    def test_unknown_model_404(self, client, feature_dicts):
        with pytest.raises(ClientError) as excinfo:
            client.predict(feature_dicts[0], model="ghost")
        assert excinfo.value.status == 404
        assert "unknown model" in excinfo.value.message

    def test_unknown_version_404(self, client, feature_dicts):
        with pytest.raises(ClientError) as excinfo:
            client.predict(feature_dicts[0], model="point@9")
        assert excinfo.value.status == 404

    def test_missing_feature_400(self, client, feature_dicts):
        incomplete = dict(feature_dicts[0])
        incomplete.pop("baseExTime")
        with pytest.raises(ClientError) as excinfo:
            client.predict(incomplete, model="point")
        assert excinfo.value.status == 400
        assert "baseExTime" in excinfo.value.message

    def test_unknown_feature_400(self, client, feature_dicts):
        extra = dict(feature_dicts[0], bogusFeature=1.0)
        with pytest.raises(ClientError) as excinfo:
            client.predict(extra, model="point")
        assert excinfo.value.status == 400
        assert "bogusFeature" in excinfo.value.message

    def test_non_numeric_feature_400(self, client, feature_dicts):
        bad = dict(feature_dicts[0], baseExTime="fast")
        with pytest.raises(ClientError) as excinfo:
            client.predict(bad, model="point")
        assert excinfo.value.status == 400

    def test_missing_model_400(self, client, feature_dicts):
        with pytest.raises(ClientError) as excinfo:
            client._json(
                "POST", "/v1/predict", {"features": feature_dicts[0]}
            )
        assert excinfo.value.status == 400

    def test_both_shapes_400(self, client, feature_dicts):
        with pytest.raises(ClientError) as excinfo:
            client._json(
                "POST",
                "/v1/predict",
                {
                    "model": "point",
                    "features": feature_dicts[0],
                    "instances": feature_dicts,
                },
            )
        assert excinfo.value.status == 400

    def test_invalid_json_400(self, client, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        conn.request(
            "POST", "/v1/predict", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        conn.close()


class TestMetricsEndpoint:
    def test_request_counts_are_consistent(
        self, populated_registry, feature_dicts
    ):
        with ServerThread(populated_registry, max_batch=8, max_wait_ms=1.0) as h:
            with PredictionClient("127.0.0.1", h.port) as client:
                n = 7
                for i in range(n):
                    client.predict(feature_dicts[i % len(feature_dicts)], model="point")
                client.predict_batch(feature_dicts[:3], model="point")
                samples = client.metrics()
        key = 'repro_serve_requests_total{endpoint="/v1/predict",status="200"}'
        assert samples[key] == n + 1
        assert samples["repro_serve_predictions_total"] == n + 3
        # Latency histogram covers every HTTP request seen so far
        # (prediction requests plus this scrape's predecessors).
        assert samples["repro_serve_request_latency_seconds_count"] == n + 1
        assert samples["repro_serve_request_latency_seconds_sum"] > 0.0
        # Quantile gauges are rendered and ordered.
        p50 = samples["repro_serve_request_latency_seconds_p50"]
        p99 = samples["repro_serve_request_latency_seconds_p99"]
        assert 0.0 < p50 <= p99

    def test_model_cache_hits_accumulate(self, populated_registry, feature_dicts):
        with ServerThread(populated_registry, max_batch=4, max_wait_ms=1.0) as h:
            with PredictionClient("127.0.0.1", h.port) as client:
                client.predict(feature_dicts[0], model="point")
                client.predict(feature_dicts[0], model="point")
                client.predict(feature_dicts[0], model="point@1")
                samples = client.metrics()
        assert samples["repro_serve_model_cache_misses_total"] == 1
        assert samples["repro_serve_model_cache_hits_total"] == 2

    def test_batch_size_histogram_counts_flushes(
        self, populated_registry, feature_dicts
    ):
        with ServerThread(populated_registry, max_batch=4, max_wait_ms=1.0) as h:
            with PredictionClient("127.0.0.1", h.port) as client:
                client.predict_batch(feature_dicts[:8], model="point")
                samples = client.metrics()
        assert samples["repro_serve_batch_size_count"] == 2  # 8 rows / max 4
        assert samples["repro_serve_batch_size_sum"] == 8.0

    def test_errors_total_exposed(self, populated_registry, feature_dicts):
        with ServerThread(populated_registry, max_batch=4, max_wait_ms=1.0) as h:
            with PredictionClient("127.0.0.1", h.port) as client:
                with pytest.raises(ClientError):
                    client.predict(feature_dicts[0], model="ghost")
                samples = client.metrics()
        assert samples['repro_serve_errors_total{reason="unknown_model"}'] == 1


class TestSerialVsBatchedEquality:
    """The acceptance property: coalescing never changes served floats."""

    def _served_predictions(self, registry, feature_dicts, *, max_batch):
        with ServerThread(
            registry, max_batch=max_batch, max_wait_ms=2.0
        ) as handle:
            barrier = threading.Barrier(len(feature_dicts))
            results = [None] * len(feature_dicts)

            def worker(i):
                with PredictionClient("127.0.0.1", handle.port) as c:
                    barrier.wait(timeout=10)
                    results[i] = c.predict(feature_dicts[i], model="point")[
                        "prediction"
                    ]

            with concurrent.futures.ThreadPoolExecutor(
                max_workers=len(feature_dicts)
            ) as pool:
                list(pool.map(worker, range(len(feature_dicts))))
        return results

    def test_concurrent_serial_equals_batched(
        self, populated_registry, feature_dicts
    ):
        serial = self._served_predictions(
            populated_registry, feature_dicts, max_batch=1
        )
        batched = self._served_predictions(
            populated_registry, feature_dicts, max_batch=len(feature_dicts)
        )
        assert serial == batched  # exact float equality

    def test_batched_run_actually_batched(self, populated_registry, feature_dicts):
        with ServerThread(
            populated_registry, max_batch=len(feature_dicts), max_wait_ms=20.0
        ) as handle:
            barrier = threading.Barrier(len(feature_dicts))

            def worker(i):
                with PredictionClient("127.0.0.1", handle.port) as c:
                    barrier.wait(timeout=10)
                    return c.predict(feature_dicts[i], model="point")["prediction"]

            with concurrent.futures.ThreadPoolExecutor(
                max_workers=len(feature_dicts)
            ) as pool:
                list(pool.map(worker, range(len(feature_dicts))))
            with PredictionClient("127.0.0.1", handle.port) as c:
                samples = c.metrics()
        # Coalescing happened: fewer flushes than rows.
        assert samples["repro_serve_batch_size_sum"] == len(feature_dicts)
        assert samples["repro_serve_batch_size_count"] < len(feature_dicts)


class TestLifecycle:
    def test_ephemeral_port_resolves(self, populated_registry):
        with ServerThread(populated_registry) as handle:
            assert handle.port > 0

    def test_stop_is_idempotent(self, populated_registry):
        handle = ServerThread(populated_registry).start()
        handle.stop()
        handle.stop()  # no-op

    def test_connection_closed_after_stop(self, populated_registry):
        handle = ServerThread(populated_registry).start()
        client = PredictionClient("127.0.0.1", handle.port)
        assert client.healthz()["status"] == "ok"
        handle.stop()
        with pytest.raises((ClientError, OSError)):
            client.healthz()
        client.close()

    def test_double_start_rejected(self, populated_registry):
        with ServerThread(populated_registry) as handle:
            with pytest.raises(RuntimeError, match="already"):
                handle.start()

    def test_server_without_thread_helper(self, populated_registry):
        """PredictionServer drives start/stop cleanly on a caller's loop."""
        import asyncio

        async def run():
            server = PredictionServer(populated_registry, max_batch=2)
            await server.start()
            port = server.port
            await server.stop()
            return port

        assert asyncio.run(run()) > 0

    def test_model_cache_eviction(self, populated_registry, feature_dicts):
        with ServerThread(
            populated_registry, max_batch=2, max_wait_ms=1.0,
            model_cache_size=1,
        ) as handle:
            with PredictionClient("127.0.0.1", handle.port) as client:
                client.predict(feature_dicts[0], model="point")
                client.predict(feature_dicts[0], model="band")  # evicts point
                client.predict(feature_dicts[0], model="point")  # reloads
                samples = client.metrics()
        assert samples["repro_serve_model_cache_misses_total"] == 3
