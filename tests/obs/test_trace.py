"""Tracing core: span lifecycle, context propagation, Chrome export."""

import asyncio
import json
import threading
import time

import pytest

from repro.obs.trace import (
    NullTracer,
    Tracer,
    current_span,
    current_trace_id,
    disable,
    enable,
    get_tracer,
    set_tracer,
)


class TestNullTracer:
    def test_default_tracer_is_disabled(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled
        assert len(tracer) == 0
        assert tracer.spans() == []

    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        a = tracer.span("anything", key="value")
        b = tracer.span("else")
        assert a is b  # one shared instance: zero allocation per call
        with a as span:
            assert span.set(more=1) is span
        assert a.attributes == {}

    def test_record_span_discards(self):
        tracer = NullTracer()
        assert tracer.record_span("late", start=0.0, end=1.0) is None


class TestRecordingTracer:
    def test_nesting_links_parent_and_trace(self, tracer):
        with tracer.span("outer") as outer:
            assert current_span() is outer
            assert current_trace_id() == outer.trace_id
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert current_span() is None
        assert current_trace_id() is None
        assert [s.name for s in tracer.spans()] == ["inner", "sibling", "outer"]

    def test_sequential_roots_get_fresh_traces(self, tracer):
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.parent_id is None and second.parent_id is None
        assert first.trace_id != second.trace_id

    def test_attributes_and_duration(self, tracer):
        with tracer.span("timed", preset=1) as span:
            span.set(during="yes")
            time.sleep(0.002)
        assert span.attributes == {"preset": 1, "during": "yes"}
        assert span.duration_s >= 0.002
        assert span.thread_id == threading.get_ident()

    def test_exception_stamps_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "ValueError"

    def test_async_task_inherits_active_span(self, tracer):
        async def scenario():
            with tracer.span("request") as parent:
                async def worker():
                    with tracer.span("work") as child:
                        return child

                child = await asyncio.ensure_future(worker())
            return parent, child

        parent, child = asyncio.run(scenario())
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id

    def test_record_span_retroactive(self, tracer):
        with tracer.span("request") as parent:
            pass
        late = tracer.record_span(
            "queue_wait", start=10.0, end=10.25, parent=parent, reason="deadline"
        )
        assert late.parent_id == parent.span_id
        assert late.trace_id == parent.trace_id
        assert late.duration_s == pytest.approx(0.25)
        assert late.attributes == {"reason": "deadline"}
        orphan = tracer.record_span("rootless", start=0.0, end=1.0)
        assert orphan.parent_id is None

    def test_ring_buffer_keeps_most_recent(self):
        tracer = Tracer(max_spans=3)
        for i in range(7):
            tracer.record_span(f"s{i}", start=float(i), end=float(i) + 0.5)
        assert len(tracer) == 3
        assert [s.name for s in tracer.spans()] == ["s4", "s5", "s6"]
        tracer.reset()
        assert len(tracer) == 0

    def test_max_spans_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestChromeExport:
    def test_export_roundtrip(self, tracer, tmp_path):
        with tracer.span("outer", machine="e5649"):
            with tracer.span("inner", payload=[1, 2]):  # non-primitive attr
                pass
        path = tmp_path / "trace.json"
        exported = tracer.export_chrome(path)
        assert exported == len(tracer) == 2

        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        meta, *spans = events
        assert meta["ph"] == "M" and meta["args"]["name"] == "test"
        assert [e["name"] for e in spans] == ["inner", "outer"]
        for event in spans:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert event["args"]["span_id"]
        inner, outer = spans
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert inner["args"]["trace_id"] == outer["args"]["trace_id"]
        assert inner["args"]["payload"] == "[1, 2]"  # repr()d, not dropped
        assert inner["cat"] == "inner"
        assert outer["args"]["machine"] == "e5649"


class TestInstallation:
    def test_enable_installs_and_disable_removes(self):
        tracer = enable(service="install-test")
        try:
            assert get_tracer() is tracer
            assert tracer.enabled
        finally:
            disable()
        assert isinstance(get_tracer(), NullTracer)

    def test_set_tracer_returns_previous(self):
        original = get_tracer()
        replacement = NullTracer()
        assert set_tracer(replacement) is original
        assert set_tracer(original) is replacement
