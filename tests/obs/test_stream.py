"""Span streaming: the sender's shed-don't-block contract, end to end."""

from __future__ import annotations

import socket
import time

import pytest

from repro.obs.collector import CollectorThread
from repro.obs.stream import (
    SpanSender,
    StreamingTracer,
    parse_endpoint,
    stream_records,
)


@pytest.fixture
def collector():
    thread = CollectorThread().start()
    yield thread
    thread.stop()


def _wait_for(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestParseEndpoint:
    @pytest.mark.parametrize(
        "endpoint",
        ["127.0.0.1:8600", "http://127.0.0.1:8600", "http://127.0.0.1:8600/",
         "https://obs.example:443/v1/spans"],
    )
    def test_accepted_forms(self, endpoint):
        host, port = parse_endpoint(endpoint)
        assert host and isinstance(port, int)

    @pytest.mark.parametrize("endpoint", ["", "nohost", "http://nop:port"])
    def test_rejected_forms(self, endpoint):
        with pytest.raises(ValueError, match="host:port"):
            parse_endpoint(endpoint)


class TestSpanSender:
    def test_batches_reach_collector_with_resource(self, collector):
        with SpanSender(
            collector.endpoint, resource={"service": "unit", "worker": 3}
        ) as sender:
            assert sender.resource["pid"]  # filled in automatically
            for i in range(5):
                assert sender.enqueue(
                    {"name": f"s{i}", "trace_id": "t", "span_id": f"s{i}",
                     "start_unix_s": 1.0, "end_unix_s": 2.0}
                )
            sender.flush()
            assert sender.sent == 5
            assert sender.send_errors == 0
        records = collector.records()
        assert len(records) == 5
        assert all(r["resource"]["service"] == "unit" for r in records)
        assert collector.server.batches.get("unit", 0) >= 1

    def test_enqueue_after_close_sheds_and_counts(self, collector):
        sender = SpanSender(collector.endpoint)
        sender.close()
        assert sender.enqueue({"name": "late"}) is False
        assert sender.dropped == 1

    def test_shed_counts_reported_to_collector(self, collector):
        with SpanSender(
            collector.endpoint, resource={"service": "sheddy"}
        ) as sender:
            sender.dropped += 3  # as if the queue had been full three times
            sender.enqueue({"name": "survivor"})
            sender.flush()
        assert collector.server.client_dropped == 3

    def test_dead_collector_costs_spans_not_blocking(self):
        # A bound-then-closed socket yields a port that refuses connections.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with SpanSender(f"127.0.0.1:{port}", flush_interval_s=0.01) as sender:
            started = time.perf_counter()
            assert sender.enqueue({"name": "doomed"})  # hot path never blocks
            assert time.perf_counter() - started < 1.0
            assert _wait_for(lambda: sender.send_errors >= 1)
        assert sender.sent == 0

    def test_stream_records_helper(self, collector):
        with SpanSender(collector.endpoint) as sender:
            queued = stream_records(
                sender, [{"name": "a"}, {"name": "b"}]
            )
            sender.flush()
        assert queued == 2
        assert len(collector.records()) == 2


class TestStreamingTracer:
    def test_finished_spans_stream_and_stay_local(self, collector):
        tracer = StreamingTracer(
            SpanSender(collector.endpoint, resource={"service": "svc"})
        )
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        tracer.flush()
        # Local ring retained both, collector received both.
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]
        records = {r["name"]: r for r in collector.records()}
        assert set(records) == {"inner", "outer"}
        # Parent linkage survives the wire.
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["inner"]["trace_id"] == records["outer"]["trace_id"]
        tracer.close()

    def test_service_defaults_from_sender_resource(self, collector):
        tracer = StreamingTracer(
            SpanSender(collector.endpoint, resource={"service": "router"})
        )
        assert tracer.service == "router"
        tracer.close()

    def test_ingested_spans_are_not_restreamed(self, collector):
        tracer = StreamingTracer(SpanSender(collector.endpoint))
        ingested = tracer.ingest(
            [{"name": "remote", "trace_id": "t", "span_id": "s",
              "start_unix_s": 1.0, "end_unix_s": 2.0,
              "resource": {"service": "worker", "pid": 123}}]
        )
        tracer.flush()
        tracer.close()
        assert ingested == 1
        assert [s.name for s in tracer.spans()] == ["remote"]
        # The origin process already streamed it; re-sending would
        # duplicate every span a parent both ingests and streams.
        assert collector.records() == []
