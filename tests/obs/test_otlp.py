"""OTLP/JSON export and re-import of serialized span records."""

from __future__ import annotations

import json

import pytest

from repro.obs.otlp import (
    hex_id,
    load_otlp,
    otlp_to_events,
    records_to_otlp,
    write_otlp,
)
from repro.obs.summary import load_trace, span_forest


def _record(
    name,
    span_id,
    *,
    trace_id="tr1",
    parent_id=None,
    start=100.0,
    end=100.5,
    resource=None,
    **attributes,
):
    record = {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_unix_s": start,
        "end_unix_s": end,
        "thread_id": 7,
        "attributes": attributes,
    }
    if resource is not None:
        record["resource"] = resource
    return record


class TestHexId:
    def test_fixed_widths(self):
        assert len(hex_id("anything", 16)) == 32
        assert len(hex_id("anything", 8)) == 16

    def test_deterministic_and_distinct(self):
        assert hex_id("a1", 8) == hex_id("a1", 8)
        assert hex_id("a1", 8) != hex_id("a2", 8)

    def test_empty_id_stays_empty(self):
        assert hex_id("", 16) == ""


class TestRecordsToOtlp:
    def test_parent_linkage_survives_id_translation(self):
        payload = records_to_otlp(
            [
                _record("parent", "s1"),
                _record("child", "s2", parent_id="s1"),
            ]
        )
        (group,) = payload["resourceSpans"]
        spans = {s["name"]: s for s in group["scopeSpans"][0]["spans"]}
        assert spans["child"]["parentSpanId"] == spans["parent"]["spanId"]
        assert spans["child"]["traceId"] == spans["parent"]["traceId"]
        assert "parentSpanId" not in spans["parent"]

    def test_groups_by_resource_with_attributes(self):
        payload = records_to_otlp(
            [
                _record(
                    "a", "s1",
                    resource={"service": "serve-worker-0", "worker": 0,
                              "pid": 41, "shard": "even"},
                ),
                _record("b", "s2", resource={"service": "router", "pid": 40}),
                _record("c", "s3"),  # no resource: default applies
            ],
            default_resource={"service": "parent", "pid": 39},
        )
        groups = {}
        for group in payload["resourceSpans"]:
            attrs = {
                item["key"]: item["value"]
                for item in group["resource"]["attributes"]
            }
            names = [s["name"] for s in group["scopeSpans"][0]["spans"]]
            groups[attrs["service.name"]["stringValue"]] = (attrs, names)
        assert set(groups) == {"serve-worker-0", "router", "parent"}
        worker_attrs, worker_names = groups["serve-worker-0"]
        assert worker_attrs["process.pid"] == {"intValue": "41"}
        assert worker_attrs["repro.worker_id"] == {"intValue": "0"}
        assert worker_attrs["repro.shard"] == {"stringValue": "even"}
        assert worker_names == ["a"]
        assert groups["parent"][1] == ["c"]

    def test_anyvalue_encoding(self):
        payload = records_to_otlp(
            [_record("a", "s1", flag=True, n=3, x=1.5, label="hi", nil=None)]
        )
        (span,) = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        attrs = {item["key"]: item["value"] for item in span["attributes"]}
        assert attrs["flag"] == {"boolValue": True}
        assert attrs["n"] == {"intValue": "3"}
        assert attrs["x"] == {"doubleValue": 1.5}
        assert attrs["label"] == {"stringValue": "hi"}
        assert attrs["nil"] == {"stringValue": ""}

    def test_unix_nano_timestamps_are_strings(self):
        payload = records_to_otlp([_record("a", "s1", start=2.0, end=2.25)])
        (span,) = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert span["startTimeUnixNano"] == str(int(2.0e9))
        assert span["endTimeUnixNano"] == str(int(2.25e9))


class TestFileRoundTrip:
    def test_write_returns_span_count(self, tmp_path):
        path = tmp_path / "trace.otlp.json"
        count = write_otlp(
            path, [_record("a", "s1"), _record("b", "s2", parent_id="s1")]
        )
        assert count == 2
        payload = json.loads(path.read_text())
        assert "resourceSpans" in payload

    def test_load_trace_dispatches_on_otlp_payload(self, tmp_path):
        path = tmp_path / "trace.otlp.json"
        write_otlp(
            path,
            [
                _record("root", "s1", start=10.0, end=10.4),
                _record("leaf", "s2", parent_id="s1", start=10.1, end=10.2),
            ],
        )
        events = load_trace(path)
        roots = span_forest(events)
        (root,) = roots
        assert root.name == "root"
        assert [child.name for child in root.children] == ["leaf"]

    def test_load_otlp_rejects_non_otlp_json(self, tmp_path):
        path = tmp_path / "not_otlp.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError, match="OTLP"):
            load_otlp(path)


class TestOtlpToEvents:
    def test_timestamps_rebased_to_earliest_span(self):
        payload = records_to_otlp(
            [
                _record("late", "s2", start=50.001, end=50.002),
                _record("early", "s1", start=50.0, end=50.003),
            ]
        )
        events = {e["name"]: e for e in otlp_to_events(payload)}
        assert events["early"]["ts"] == 0.0
        assert events["late"]["ts"] == pytest.approx(1000.0, abs=1.0)
        assert events["early"]["dur"] == pytest.approx(3000.0, abs=1.0)

    def test_service_and_pid_carried_onto_events(self):
        payload = records_to_otlp(
            [_record("a", "s1", resource={"service": "sched", "pid": 99})]
        )
        (event,) = otlp_to_events(payload)
        assert event["pid"] == 99
        assert event["args"]["service"] == "sched"

    def test_empty_payload(self):
        assert otlp_to_events({"resourceSpans": []}) == []
