"""Exposition-format conformance for the whole merged scrape.

These tests hold the merged registry output — native families plus the
engine/fit/serving adapter sources — to the Prometheus text format 0.0.4
contract: every sample belongs to a family with ``# HELP`` and ``# TYPE``
lines, histogram buckets are cumulative and monotone with ``+Inf`` equal
to ``_count``, and label escaping round-trips through the client's
label-aware parser.
"""

import math

import pytest

from repro.core.fitstats import GLOBAL_FIT_STATS
from repro.obs.adapters import install_default_sources
from repro.obs.registry import MetricsRegistry, escape_label_value
from repro.serve.client import _parse_sample, parse_prometheus
from repro.serve.metrics import REQUEST_PHASES, ServingMetrics
from repro.sim.solve_cache import GLOBAL_ENGINE_STATS

NASTY = 'sp{ec"ial, v=1\\end\nline'


@pytest.fixture(scope="module")
def scrape() -> str:
    """One merged scrape with every family populated."""
    # The globals are process-wide and monotone; bumping them here only
    # adds to whatever earlier tests recorded.
    GLOBAL_ENGINE_STATS.record_solve(iterations=42)
    GLOBAL_ENGINE_STATS.record_hit()
    GLOBAL_FIT_STATS.record_fit(restarts=3, scg_iterations=120, wall_time_s=0.5)

    serving = ServingMetrics()
    serving.record_request("/v1/predict", 200, 0.004)
    serving.record_request("/v1/predict", 400, 0.001)
    serving.record_error("bad_request")
    serving.record_predictions(3)
    serving.record_batch(3)
    serving.record_model_cache(True)
    for phase in REQUEST_PHASES:
        serving.record_phase(phase, 0.002)

    registry = install_default_sources(
        MetricsRegistry(), serving=serving.render_prometheus
    )
    registry.counter("repro_test_jobs_total", "Native counter.").inc(2)
    gauge = registry.gauge("repro_test_info", "Nasty labels.", ("detail",))
    gauge.set(1.5, detail=NASTY)
    hist = registry.histogram(
        "repro_test_seconds", "Native histogram.", ("kind",), buckets=(0.01, 0.1)
    )
    hist.observe(0.005, kind="a")
    hist.observe(0.05, kind="a")
    hist.observe(5.0, kind="a")
    return registry.render()


def _comment_indexes(text: str) -> tuple[dict[str, str], dict[str, str]]:
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name, _, rest = line[len("# HELP "):].partition(" ")
            helps[name] = rest
        elif line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            types[name] = kind.strip()
    return helps, types


def _family_of(name: str, types: dict[str, str]) -> str | None:
    """The family a sample name belongs to, honouring histogram suffixes."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            return base
    return None


def _samples(text: str):
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        parsed = _parse_sample(line)
        assert parsed is not None, f"unparseable sample line: {line!r}"
        yield parsed


def test_scrape_ends_with_newline(scrape):
    assert scrape.endswith("\n")


def test_every_sample_has_help_and_type(scrape):
    helps, types = _comment_indexes(scrape)
    assert set(helps) == set(types), "HELP/TYPE lines must pair up"
    for name, _labels, _value in _samples(scrape):
        family = _family_of(name, types)
        assert family is not None, f"sample {name} has no # TYPE"
        assert family in helps, f"sample {name} has no # HELP"


def test_all_three_sources_present(scrape):
    for name in (
        "repro_engine_solves_total",      # simulation
        "repro_fit_fits_total",           # fitting
        "repro_serve_requests_total",     # serving
    ):
        assert name in parse_prometheus(scrape) or any(
            sample_name == name for sample_name, _l, _v in _samples(scrape)
        ), f"{name} missing from merged scrape"


def test_histograms_cumulative_with_inf_equal_to_count(scrape):
    _helps, types = _comment_indexes(scrape)
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}
    for name, labels, value in _samples(scrape):
        family = _family_of(name, types)
        if types.get(family) != "histogram":
            continue
        series = tuple(sorted(
            (k, v) for k, v in labels.items() if k != "le"
        ))
        if name.endswith("_bucket"):
            le = labels["le"]
            bound = math.inf if le == "+Inf" else float(le)
            buckets.setdefault((family, series), []).append((bound, value))
        elif name.endswith("_count"):
            counts[(family, series)] = value

    assert buckets, "scrape contains no histograms"
    for key, series_buckets in buckets.items():
        ordered = sorted(series_buckets)
        bounds = [b for b, _v in ordered]
        values = [v for _b, v in ordered]
        assert bounds[-1] == math.inf, f"{key} lacks a +Inf bucket"
        assert values == sorted(values), f"{key} buckets are not cumulative"
        assert key in counts, f"{key} lacks a _count sample"
        assert values[-1] == counts[key], f"{key} +Inf bucket != _count"


def test_label_escaping_round_trips_through_client_parser(scrape):
    escaped = escape_label_value(NASTY)
    assert "\\n" in escaped and '\\"' in escaped and "\\\\" in escaped
    key = 'repro_test_info{detail="' + escaped + '"}'
    samples = parse_prometheus(scrape)
    assert samples[key] == 1.5
    # And the parser recovered the original (unescaped) value.
    (parsed,) = [
        labels for name, labels, _v in _samples(scrape)
        if name == "repro_test_info"
    ]
    assert parsed["detail"] == NASTY


def test_serving_quantile_gauges_have_headers(scrape):
    _helps, types = _comment_indexes(scrape)
    for family in (
        "repro_serve_request_latency_seconds",
        "repro_serve_phase_latency_seconds",
    ):
        for quantile in ("p50", "p95", "p99"):
            assert types.get(f"{family}_{quantile}") == "gauge"


def test_phase_family_covers_every_phase(scrape):
    samples = parse_prometheus(scrape)
    for phase in REQUEST_PHASES:
        key = f'repro_serve_phase_latency_seconds_count{{phase="{phase}"}}'
        assert samples[key] == 1.0
