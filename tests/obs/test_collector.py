"""The span collector service: ingest protocol, bounds, metrics, export."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.obs.collector import CollectorServer, CollectorThread
from repro.serve.client import parse_prometheus


@pytest.fixture
def collector():
    thread = CollectorThread(max_spans=100).start()
    yield thread
    thread.stop()


def _post(collector, body: bytes, path="/v1/spans"):
    conn = http.client.HTTPConnection(collector.host, collector.port, timeout=5)
    try:
        conn.request("POST", path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"null")
    finally:
        conn.close()


def _get(collector, path):
    conn = http.client.HTTPConnection(collector.host, collector.port, timeout=5)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _span(name, span_id, **extra):
    return {"name": name, "trace_id": "t1", "span_id": span_id,
            "start_unix_s": 1.0, "end_unix_s": 2.0, **extra}


class TestIngestProtocol:
    def test_batch_object(self, collector):
        status, body = _post(collector, json.dumps({
            "resource": {"service": "w0", "pid": 42},
            "spans": [_span("a", "s1"), _span("b", "s2")],
            "dropped": 1,
        }).encode())
        assert status == 200
        assert body == {"accepted": 2}
        records = collector.records()
        assert [r["name"] for r in records] == ["a", "b"]
        # The batch resource is stamped onto spans that lack their own.
        assert records[0]["resource"] == {"service": "w0", "pid": 42}
        assert collector.server.client_dropped == 1

    def test_json_lines_of_bare_records(self, collector):
        lines = b"\n".join(
            json.dumps(_span(name, f"s{i}")).encode()
            for i, name in enumerate(["x", "y", "z"])
        )
        status, body = _post(collector, lines)
        assert status == 200
        assert body == {"accepted": 3}
        assert len(collector.records()) == 3

    def test_json_lines_of_batch_objects(self, collector):
        lines = b"\n".join(
            json.dumps({"resource": {"service": s}, "spans": [_span(s, s)]})
            .encode()
            for s in ("w0", "w1")
        )
        status, body = _post(collector, lines)
        assert status == 200 and body == {"accepted": 2}
        assert collector.server.batches == {"w0": 1, "w1": 1}

    @pytest.mark.parametrize(
        "payload", [b"", b"not json", b"[1,2]", b'{"spans": 4}']
    )
    def test_malformed_payloads_rejected(self, collector, payload):
        status, _body = _post(collector, payload)
        assert status == 400
        assert collector.records() == []

    def test_get_spans_and_healthz(self, collector):
        _post(collector, json.dumps(_span("a", "s1")).encode())
        status, raw = _get(collector, "/v1/spans")
        assert status == 200
        assert [s["name"] for s in json.loads(raw)["spans"]] == ["a"]
        status, raw = _get(collector, "/healthz")
        assert status == 200
        assert json.loads(raw) == {"status": "ok", "spans": 1}


class TestBoundedStorage:
    def test_ring_wrap_evicts_oldest_and_counts(self):
        server = CollectorServer(max_spans=2)
        server.ingest([_span(f"s{i}", f"s{i}") for i in range(5)],
                      resource={"service": "w"})
        assert [r["name"] for r in server.records()] == ["s3", "s4"]
        assert server.received == 5
        assert server.dropped == 3

    def test_max_spans_validated(self):
        with pytest.raises(ValueError, match="max_spans"):
            CollectorServer(max_spans=0)


class TestCollectorMetrics:
    def test_scrape_shows_fleet_drop_accounting(self, collector):
        _post(collector, json.dumps({
            "resource": {"service": "w0"},
            "spans": [_span("a", "s1")],
            "dropped": 4,
        }).encode())
        status, raw = _get(collector, "/metrics")
        assert status == 200
        samples = parse_prometheus(raw.decode())
        assert samples["repro_obs_collector_spans_received_total"] == 1
        assert samples["repro_obs_collector_spans_stored"] == 1
        assert samples['repro_obs_collector_batches_total{service="w0"}'] == 1
        assert samples[
            'repro_obs_collector_spans_dropped_total{reason="sender_shed"}'
        ] == 4
        assert samples[
            'repro_obs_collector_spans_dropped_total{reason="ring_wrap"}'
        ] == 0

    def test_no_family_repeats_in_one_exposition(self, collector):
        # Prometheus forbids a metric family appearing twice in a scrape;
        # the collector's own families must not collide with the default
        # obs source's repro_obs_spans_dropped_total.
        _status, raw = _get(collector, "/metrics")
        types = [line.split()[2] for line in raw.decode().splitlines()
                 if line.startswith("# TYPE ")]
        assert len(types) == len(set(types))


class TestExports:
    def _fill(self, server):
        server.ingest(
            [_span("route.request", "r1"),
             _span("serve.request", "w1", parent_id="r1")],
            resource={"service": "router", "pid": 10},
        )

    def test_chrome_export_names_process_rows(self, tmp_path):
        server = CollectorServer()
        self._fill(server)
        path = tmp_path / "trace.json"
        assert server.export_chrome(path) == 2
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {"router"}
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        assert spans["serve.request"]["args"]["parent_id"] == "r1"

    def test_otlp_export(self, tmp_path):
        server = CollectorServer()
        self._fill(server)
        path = tmp_path / "trace.otlp.json"
        assert server.export_otlp(path) == 2
        payload = json.loads(path.read_text())
        assert "resourceSpans" in payload


class TestSelfFeedingGuard:
    def test_collector_does_not_trace_its_own_requests(self, collector):
        # trace_requests=False: ingest POSTs must not create spans even
        # with a recording tracer installed in the collector's process.
        from repro.obs.trace import disable, enable

        tracer = enable(service="host")
        try:
            _post(collector, json.dumps(_span("a", "s1")).encode())
            assert tracer.spans() == []
        finally:
            disable()
