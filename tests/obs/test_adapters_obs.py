"""Adapter coverage: engine batch counters and tracer-health exposition.

The batched-solver counters (``repro_engine_batches_total`` and
friends) ride the engine adapter onto every server's ``/metrics``; these
tests pin their rendering and that the tier's merged multi-worker scrape
sums them correctly.  The ``obs`` source is the drop accounting this PR
adds: ring-buffer wraps and streaming-queue sheds become
``repro_obs_spans_dropped_total``.
"""

from __future__ import annotations

import pytest

from repro.obs.adapters import (
    install_default_sources,
    obs_stats_exposition,
    render_engine_stats,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.stream import SpanSender
from repro.obs.trace import Tracer, disable, set_tracer
from repro.serve.client import parse_prometheus
from repro.serve.metrics import merge_prometheus_texts
from repro.sim.solve_cache import EngineStats


def _stats(batches, scenarios, dedupe, frozen):
    stats = EngineStats()
    for _ in range(batches):
        stats.record_batch(
            scenarios=scenarios, dedupe_hits=dedupe, iterations_saved=frozen
        )
    return stats


class TestEngineBatchCounters:
    def test_rendered_with_values(self):
        stats = _stats(batches=3, scenarios=64, dedupe=5, frozen=120)
        samples = parse_prometheus(render_engine_stats(stats))
        assert samples["repro_engine_batches_total"] == 3
        assert samples["repro_engine_batched_scenarios_total"] == 192
        assert samples["repro_engine_batch_dedupe_hits_total"] == 15
        assert samples["repro_engine_frozen_iterations_saved_total"] == 360

    def test_families_have_help_and_type(self):
        text = render_engine_stats(EngineStats())
        for family in (
            "repro_engine_batches_total",
            "repro_engine_batched_scenarios_total",
            "repro_engine_batch_dedupe_hits_total",
            "repro_engine_frozen_iterations_saved_total",
        ):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} counter" in text

    def test_multi_worker_merged_scrape_sums_counters(self):
        # The router merges per-worker expositions; the batch counters
        # must sum across workers like any other counter family.
        worker_texts = [
            render_engine_stats(_stats(2, 32, 1, 50)),
            render_engine_stats(_stats(1, 16, 0, 10)),
        ]
        merged = parse_prometheus(merge_prometheus_texts(worker_texts))
        assert merged["repro_engine_batches_total"] == 3
        assert merged["repro_engine_batched_scenarios_total"] == 80
        assert merged["repro_engine_batch_dedupe_hits_total"] == 2
        assert merged["repro_engine_frozen_iterations_saved_total"] == 110
        # The iteration histogram stays structurally intact after merging.
        assert merged['repro_engine_solve_iterations_bucket{le="+Inf"}'] == 0


class TestObsSource:
    def test_ring_wrap_drops_exposed(self):
        tracer = Tracer(max_spans=2)
        previous = set_tracer(tracer)
        try:
            for i in range(5):
                with tracer.span(f"s{i}"):
                    pass
            samples = parse_prometheus(obs_stats_exposition())
        finally:
            set_tracer(previous)
        assert samples[
            'repro_obs_spans_dropped_total{reason="ring_wrap"}'
        ] == 3
        assert samples[
            'repro_obs_spans_dropped_total{reason="stream_shed"}'
        ] == 0

    def test_streaming_tracer_exposes_sender_counters(self):
        class _FakeSenderTracer(Tracer):
            pass

        tracer = _FakeSenderTracer()
        tracer.sender = type(
            "S", (), {"dropped": 7, "sent": 40, "send_errors": 2}
        )()
        previous = set_tracer(tracer)
        try:
            samples = parse_prometheus(obs_stats_exposition())
        finally:
            set_tracer(previous)
        assert samples[
            'repro_obs_spans_dropped_total{reason="stream_shed"}'
        ] == 7
        assert samples["repro_obs_spans_streamed_total"] == 40
        assert samples["repro_obs_span_send_errors_total"] == 2

    def test_null_tracer_renders_zeros(self):
        disable()
        samples = parse_prometheus(obs_stats_exposition())
        assert samples[
            'repro_obs_spans_dropped_total{reason="ring_wrap"}'
        ] == 0

    def test_registered_as_default_source(self):
        registry = install_default_sources(MetricsRegistry())
        assert "repro_obs_spans_dropped_total" in registry.render()


class TestStreamShedEndToEnd:
    def test_real_sender_shed_appears_in_exposition(self):
        # Unroutable but well-formed endpoint; the sender never connects,
        # and a closed sender sheds synchronously.
        sender = SpanSender("127.0.0.1:9")
        sender.close()
        from repro.obs.stream import StreamingTracer

        tracer = StreamingTracer(sender)
        previous = set_tracer(tracer)
        try:
            with tracer.span("shed-me"):
                pass
            samples = parse_prometheus(obs_stats_exposition())
        finally:
            set_tracer(previous)
        assert samples[
            'repro_obs_spans_dropped_total{reason="stream_shed"}'
        ] == 1
