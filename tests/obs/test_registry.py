"""Metric families and the merged registry: semantics and rendering."""

import math

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_value,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("jobs_total", "Jobs.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_cannot_decrease(self):
        counter = Counter("jobs_total", "Jobs.")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        counter = Counter("hits_total", "Hits.", ("kind",))
        counter.inc(kind="a")
        counter.inc(3, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 3

    def test_label_mismatch_raises(self):
        counter = Counter("hits_total", "Hits.", ("kind",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(other="x")
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc()

    def test_render_has_header_and_zero_default(self):
        lines = Counter("jobs_total", "Jobs  seen.").render()
        assert lines[0] == "# HELP jobs_total Jobs seen."  # whitespace folded
        assert lines[1] == "# TYPE jobs_total counter"
        assert lines[2] == "jobs_total 0"  # unlabelled family always samples

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("0bad", "x")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok_total", "x", ("bad-label",))


class TestGauge:
    def test_set_inc_and_value(self):
        gauge = Gauge("depth", "Depth.")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3

    def test_scrape_function(self):
        gauge = Gauge("backlog", "Backlog.", ("queue",))
        state = {"n": 7}
        gauge.set_function(lambda: state["n"], queue="q1")
        assert gauge.value(queue="q1") == 7
        state["n"] = 9
        assert 'backlog{queue="q1"} 9' in gauge.render()

    def test_broken_probe_renders_nan_not_raise(self):
        gauge = Gauge("flaky", "Flaky probe.")

        def probe():
            raise RuntimeError("probe died")

        gauge.set_function(probe)
        (sample,) = [
            line for line in gauge.render() if not line.startswith("#")
        ]
        assert sample == "flaky NaN"


class TestHistogram:
    def test_cumulative_buckets_and_inf(self):
        hist = Histogram("lat", "Latency.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.7, 5.0, 50.0):
            hist.observe(value)
        lines = hist.render()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 3' in lines
        assert 'lat_bucket{le="10"} 4' in lines
        assert 'lat_bucket{le="+Inf"} 5' in lines
        assert "lat_count 5" in lines
        assert hist.count() == 5

    def test_bucket_validation(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", "x", buckets=())
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", "x", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", "x", buckets=(2.0, 1.0))

    def test_labelled_series(self):
        hist = Histogram("lat", "Latency.", ("phase",), buckets=(1.0,))
        hist.observe(0.5, phase="queue")
        hist.observe(2.0, phase="queue")
        assert hist.count(phase="queue") == 2
        assert hist.count(phase="predict") == 0
        lines = hist.render()
        assert 'lat_bucket{phase="queue",le="1"} 1' in lines
        assert 'lat_bucket{phase="queue",le="+Inf"} 2' in lines


class TestFormatting:
    def test_escape_label_value(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        assert escape_label_value("plain") == "plain"

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(math.nan) == "NaN"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"


class TestMetricsRegistry:
    def test_families_are_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("jobs_total", "Jobs.")
        again = registry.counter("jobs_total", "Jobs.")
        assert first is again

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs.")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("jobs_total", "Jobs.")

    def test_render_merges_families_and_sources(self):
        registry = MetricsRegistry()
        registry.counter("native_total", "Native.").inc(4)
        registry.register_source(
            "extern", lambda: "# HELP ext_total X.\n# TYPE ext_total counter\next_total 7\n"
        )
        text = registry.render()
        assert "native_total 4" in text
        assert "ext_total 7" in text
        assert text.endswith("\n")
        assert registry.source_names == ["extern"]

    def test_failing_source_counted_not_fatal(self):
        registry = MetricsRegistry()

        def broken() -> str:
            raise RuntimeError("source died")

        registry.register_source("sim", broken)
        text = registry.render()
        assert 'repro_obs_source_errors_total{source="sim"} 1' in text

    def test_source_replacement_and_removal(self):
        registry = MetricsRegistry()
        registry.register_source("s", lambda: "a 1")
        registry.register_source("s", lambda: "b 2")
        assert "b 2" in registry.render() and "a 1" not in registry.render()
        registry.unregister_source("s")
        registry.unregister_source("s")  # no-op twice
        assert registry.source_names == []

    def test_default_registry_has_builtin_sources(self):
        registry = get_registry()
        assert get_registry() is registry  # cached
        assert {"engine", "fit"} <= set(registry.source_names)
        text = registry.render()
        assert "repro_engine_solves_total" in text
        assert "repro_fit_fits_total" in text

    def test_set_registry_swaps_default(self):
        original = get_registry()  # materialize before swapping
        replacement = MetricsRegistry()
        assert set_registry(replacement) is original
        try:
            assert get_registry() is replacement
        finally:
            set_registry(original)
        assert get_registry() is original
