"""Fixtures for the observability tests.

The tracer and log sink are process globals, so every fixture that
installs one restores the previous state afterwards — tests stay isolated
no matter their order.
"""

from __future__ import annotations

import io

import pytest

from repro.obs.log import configure
from repro.obs.trace import disable, enable


@pytest.fixture
def tracer():
    """A fresh recording tracer installed for the test, removed after."""
    installed = enable(service="test")
    yield installed
    disable()


@pytest.fixture
def log_sink():
    """Capture structured log output in a StringIO for the test."""
    sink = io.StringIO()
    configure(sink, level="debug")
    yield sink
    configure(None, level="info")
