"""Structured JSON logging: one object per line, trace-correlated."""

import json

import pytest

from repro.obs.log import configure, get_logger


def _records(sink):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestEmission:
    def test_record_shape(self, log_sink):
        get_logger("collect").info("scenario_done", scenario=3, apps="cg,lu")
        (record,) = _records(log_sink)
        assert record["level"] == "info"
        assert record["logger"] == "collect"
        assert record["event"] == "scenario_done"
        assert record["scenario"] == 3
        assert record["apps"] == "cg,lu"
        assert isinstance(record["ts"], float)

    def test_non_primitive_fields_reprd(self, log_sink):
        get_logger("t").info("payload", data={"a": [1]})
        (record,) = _records(log_sink)
        assert record["data"] == repr({"a": [1]})

    def test_logger_handles_are_cached(self):
        assert get_logger("same") is get_logger("same")

    def test_all_levels_emit(self, log_sink):
        logger = get_logger("levels")
        logger.debug("d")
        logger.info("i")
        logger.warning("w")
        logger.error("e")
        assert [r["level"] for r in _records(log_sink)] == [
            "debug", "info", "warning", "error",
        ]


class TestFiltering:
    def test_below_threshold_dropped(self, log_sink):
        configure(log_sink, level="warning")
        logger = get_logger("filtered")
        logger.debug("quiet")
        logger.info("quiet")
        logger.warning("loud")
        assert [r["event"] for r in _records(log_sink)] == ["loud"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure(None, level="loudest")


class TestTraceCorrelation:
    def test_records_stamped_inside_span(self, log_sink, tracer):
        logger = get_logger("serve")
        logger.info("outside")
        with tracer.span("serve.request") as span:
            logger.info("inside")
        outside, inside = _records(log_sink)
        assert "trace_id" not in outside
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id
