"""Offline trace analysis: loading, tree reconstruction, rendering."""

import json

import pytest

from repro.obs.summary import load_trace, render_summary, span_forest
from repro.obs.trace import Tracer


def _capture(tmp_path):
    """A small real trace: request -> (solve, solve), plus a lone root."""
    tracer = Tracer(service="summary-test")
    with tracer.span("serve.request", request_id="req-42"):
        with tracer.span("engine.solve", iterations=17):
            pass
        with tracer.span("engine.solve", iterations=23):
            pass
    with tracer.span("fit.neural"):
        pass
    path = tmp_path / "trace.json"
    tracer.export_chrome(path)
    return path


class TestLoadTrace:
    def test_loads_envelope_and_filters_metadata(self, tmp_path):
        events = load_trace(_capture(tmp_path))
        assert [e["name"] for e in events] == [
            "engine.solve", "engine.solve", "serve.request", "fit.neural",
        ]
        assert all(e["ph"] == "X" for e in events)

    def test_accepts_bare_event_array(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([
            {"name": "a", "ph": "X", "ts": 0, "dur": 5, "args": {}},
        ]))
        assert len(load_trace(path)) == 1

    def test_rejects_non_trace_payloads(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('"just a string"')
        with pytest.raises(ValueError, match="not a trace file"):
            load_trace(path)
        path.write_text('{"traceEvents": []}')
        with pytest.raises(ValueError, match="no complete-span"):
            load_trace(path)


class TestSpanForest:
    def test_reconstructs_nesting(self, tmp_path):
        roots = span_forest(load_trace(_capture(tmp_path)))
        assert [r.name for r in roots] == ["serve.request", "fit.neural"]
        request = roots[0]
        assert [c.name for c in request.children] == [
            "engine.solve", "engine.solve",
        ]
        assert request.attributes == {"request_id": "req-42"}
        assert request.children[0].attributes["iterations"] == 17
        assert request.children[0].start_us <= request.children[1].start_us
        assert request.duration_ms >= 0.0

    def test_orphans_become_roots(self):
        events = [
            {"name": "child", "ph": "X", "ts": 1.0, "dur": 2.0,
             "args": {"span_id": "b", "parent_id": "missing", "trace_id": "t"}},
        ]
        (root,) = span_forest(events)
        assert root.name == "child"


class TestRenderSummary:
    def test_aggregate_and_tree(self, tmp_path):
        events = load_trace(_capture(tmp_path))
        text = render_summary(events)
        assert "trace summary: 4 spans across 2 trace(s)" in text
        assert "engine.solve" in text
        assert "request_id=req-42" in text  # attrs shown on the tree
        # engine.solve aggregates both children into one row.
        (solve_row,) = [
            line for line in text.splitlines()
            if line.startswith("engine.solve")
        ]
        assert solve_row.split()[1] == "2"

    def test_top_caps_aggregate_rows(self, tmp_path):
        events = load_trace(_capture(tmp_path))
        text = render_summary(events, top=1)
        assert "more span name(s)" in text

    def test_tree_budget_caps_output(self, tmp_path):
        events = load_trace(_capture(tmp_path))
        text = render_summary(events, tree_spans=2)
        assert "2 more span(s) not shown" in text

    def test_bad_limits_rejected(self, tmp_path):
        events = load_trace(_capture(tmp_path))
        with pytest.raises(ValueError):
            render_summary(events, top=0)
        with pytest.raises(ValueError):
            render_summary(events, tree_spans=0)
