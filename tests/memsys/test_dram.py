"""Tests for the DRAM contention model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.processor import DRAMConfig
from repro.memsys.dram import MAX_UTILIZATION, DRAMModel


@pytest.fixture
def model():
    return DRAMModel(DRAMConfig(idle_latency_ns=80.0, peak_bandwidth_gbs=10.0, queue_shape=0.5))


class TestUtilization:
    def test_zero_demand(self, model):
        assert model.utilization(0.0) == 0.0

    def test_linear_below_ceiling(self, model):
        assert model.utilization(5e9) == pytest.approx(0.5)

    def test_clamped_at_ceiling(self, model):
        assert model.utilization(1e12) == pytest.approx(MAX_UTILIZATION)

    def test_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.utilization(-1.0)

    def test_vectorized(self, model):
        demands = np.array([0.0, 5e9, 1e12])
        out = np.asarray(model.utilization(demands))
        np.testing.assert_allclose(out, [0.0, 0.5, MAX_UTILIZATION])


class TestEffectiveLatency:
    def test_idle_at_zero_load(self, model):
        assert model.effective_latency_ns(0.0) == pytest.approx(80.0)

    def test_monotone_nondecreasing(self, model):
        demands = np.linspace(0.0, 2e10, 100)
        lat = np.asarray(model.effective_latency_ns(demands))
        assert np.all(np.diff(lat) >= -1e-9)

    def test_convex_in_load(self, model):
        demands = np.linspace(0.0, 9e9, 50)
        lat = np.asarray(model.effective_latency_ns(demands))
        second_diff = np.diff(lat, 2)
        assert np.all(second_diff >= -1e-9)

    def test_bounded_at_saturation(self, model):
        # The utilization clamp keeps latency finite at any demand.
        assert np.isfinite(model.effective_latency_ns(1e15))

    def test_latency_at_utilization_matches(self, model):
        rho = 0.5
        demand = rho * 10e9
        assert model.latency_at_utilization(rho) == pytest.approx(
            float(model.effective_latency_ns(demand))
        )

    def test_latency_at_utilization_validation(self, model):
        with pytest.raises(ValueError):
            model.latency_at_utilization(-0.1)
        with pytest.raises(ValueError):
            model.latency_at_utilization(0.99)

    def test_zero_queue_shape_flat_latency(self):
        flat = DRAMModel(DRAMConfig(idle_latency_ns=50.0, peak_bandwidth_gbs=1.0, queue_shape=0.0))
        assert flat.effective_latency_ns(9e8) == pytest.approx(50.0)

    def test_saturation_demand(self, model):
        d = model.saturation_demand_bytes_per_s()
        assert model.utilization(d) == pytest.approx(MAX_UTILIZATION)

    @given(
        demand=st.floats(min_value=0.0, max_value=1e13),
        shape=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=60)
    def test_property_latency_at_least_idle(self, demand, shape):
        m = DRAMModel(DRAMConfig(idle_latency_ns=60.0, peak_bandwidth_gbs=20.0, queue_shape=shape))
        assert m.effective_latency_ns(demand) >= 60.0 - 1e-9
