"""Tests for the composed memory hierarchy."""

import numpy as np
import pytest

from repro.cache.reuse import ReuseProfile
from repro.cache.sharing import CacheCompetitor
from repro.machine import XEON_E5649
from repro.memsys.hierarchy import MemoryHierarchy

MB = 1024.0 * 1024.0


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(XEON_E5649)


class TestSolve:
    def test_single_quiet_app(self, hierarchy):
        p = ReuseProfile.single(1 * MB, compulsory=0.01)
        state = hierarchy.solve([CacheCompetitor(p, access_rate=1e5)])
        assert state.dram_utilization < 0.01
        assert state.dram_latency_ns == pytest.approx(
            XEON_E5649.dram.idle_latency_ns, rel=0.05
        )

    def test_heavy_traffic_loads_dram(self, hierarchy):
        p = ReuseProfile.single(500 * MB, compulsory=0.02)
        quiet = hierarchy.solve([CacheCompetitor(p, 1e6)])
        loud = hierarchy.solve([CacheCompetitor(p, 1e9)] * 3)
        assert loud.dram_utilization > quiet.dram_utilization
        assert loud.dram_latency_ns > quiet.dram_latency_ns

    def test_bandwidth_accounting(self, hierarchy):
        p = ReuseProfile.single(500 * MB)
        rate = 1e7
        state = hierarchy.solve([CacheCompetitor(p, rate)])
        mr = state.sharing.miss_ratios[0]
        expected = rate * mr * XEON_E5649.llc.line_bytes
        assert state.miss_bandwidth_bytes_per_s == pytest.approx(expected)


class TestStallPerAccess:
    def test_zero_miss_ratio_pays_hit_exposure_only(self, hierarchy):
        stall = hierarchy.stall_ns_per_access(0.0, 100.0)
        expected = XEON_E5649.llc.hit_latency_ns * 0.3
        assert stall == pytest.approx(expected)

    def test_full_miss_ratio_pays_dram(self, hierarchy):
        stall = hierarchy.stall_ns_per_access(1.0, 100.0, mlp=1.0)
        assert stall == pytest.approx(100.0)

    def test_mlp_divides_miss_cost(self, hierarchy):
        s1 = hierarchy.stall_ns_per_access(1.0, 100.0, mlp=1.0)
        s2 = hierarchy.stall_ns_per_access(1.0, 100.0, mlp=2.0)
        assert s2 == pytest.approx(s1 / 2.0)

    def test_monotone_in_miss_ratio(self, hierarchy):
        ms = np.linspace(0, 1, 11)
        stalls = np.asarray(hierarchy.stall_ns_per_access(ms, 100.0))
        assert np.all(np.diff(stalls) > 0)

    def test_validation(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.stall_ns_per_access(1.5, 100.0)
        with pytest.raises(ValueError):
            hierarchy.stall_ns_per_access(0.5, 100.0, mlp=0.5)
